"""Property-based tests of the power/cover layer beyond the unit suite."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.power import (
    SetConsensusPower,
    cover_agreement,
    family_agreement,
    family_profile,
    n_consensus_profile,
    set_consensus_profile,
)
from repro.core.theorem import is_implementable, max_agreement

nk = st.tuples(st.integers(1, 4), st.integers(1, 4))


class TestCoverLaws:
    @given(params=nk, a=st.integers(0, 30), b=st.integers(0, 30))
    @settings(max_examples=150)
    def test_subadditivity(self, params, a, b):
        """K(a + b) <= K(a) + K(b): covers compose."""
        n, k = params
        assert family_agreement(n, k, a + b) <= family_agreement(
            n, k, a
        ) + family_agreement(n, k, b)

    @given(params=nk, total=st.integers(0, 50))
    @settings(max_examples=150)
    def test_monotone_in_n_processes(self, params, total):
        n, k = params
        assert family_agreement(n, k, total) <= family_agreement(n, k, total + 1)

    @given(params=nk, total=st.integers(1, 50))
    @settings(max_examples=150)
    def test_bounded_by_trivial_and_positive(self, params, total):
        n, k = params
        value = family_agreement(n, k, total)
        assert 1 <= value <= total

    @given(total=st.integers(0, 40), m=st.integers(2, 6), j=st.integers(1, 5))
    @settings(max_examples=100)
    def test_cover_never_beats_the_theorem(self, total, m, j):
        """The DP can't outperform max_agreement — they are the same
        function for pure set-consensus profiles."""
        if j >= m:
            return
        assert cover_agreement(total, [set_consensus_profile(m, j)]) == max_agreement(
            total, m, j
        )

    @given(params=nk, total=st.integers(0, 40))
    @settings(max_examples=100)
    def test_family_dominates_its_consensus_component(self, params, total):
        """Adding the ring can only help: K_family <= K_{n-consensus}."""
        n, k = params
        family = family_agreement(n, k, total)
        consensus_only = cover_agreement(total, [n_consensus_profile(n)])
        assert family <= consensus_only


class TestPartialOrderLaws:
    points = st.tuples(st.integers(2, 12), st.integers(1, 11)).filter(
        lambda t: t[1] < t[0]
    ).map(lambda t: SetConsensusPower(t[0], t[1]))

    @given(p=points)
    def test_reflexive(self, p):
        assert p.implements(p)

    @given(a=points, b=points, c=points)
    @settings(max_examples=200)
    def test_transitive(self, a, b, c):
        if a.implements(b) and b.implements(c):
            assert a.implements(c)

    @given(a=points, b=points)
    @settings(max_examples=200)
    def test_stronger_than_is_asymmetric(self, a, b):
        if a.stronger_than(b):
            assert not b.stronger_than(a)

    @given(p=points, q=points)
    @settings(max_examples=200)
    def test_ratio_necessary_for_strength(self, p, q):
        """Implementing a strictly smaller task requires work: if p
        implements q then scaling arithmetic must hold at q.m."""
        if p.implements(q):
            assert max_agreement(q.m, p.m, p.j) <= q.j or q.j >= q.m


class TestConsensusAnchors:
    @given(n=st.integers(1, 10), total=st.integers(1, 60))
    @settings(max_examples=150)
    def test_n_consensus_profile_is_ceiling(self, n, total):
        assert cover_agreement(total, [n_consensus_profile(n)]) == -(-total // n)

    @given(n=st.integers(2, 8))
    def test_family_strictly_between_anchors(self, n):
        """Every level sits strictly between n-consensus and registers in
        the implements-order at its witness size."""
        for k in (1, 2):
            ports = n * (k + 2)
            family = family_agreement(n, k, ports)
            consensus = -(-ports // n)
            registers = ports
            assert family < consensus < registers
