"""Property-based tests of the runtime: determinism, replay, explorer
counting laws."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.helpers import build_spec
from repro.objects.counter import CounterSpec
from repro.objects.register import RegisterSpec
from repro.runtime.explorer import Explorer
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RandomScheduler, ScriptedScheduler
from repro.runtime.system import SystemSpec


def steps_spec(n_processes: int, steps_each: int) -> SystemSpec:
    def program(pid, _value):
        for _ in range(steps_each):
            yield invoke("c", "inc")
        total = yield invoke("c", "read")
        return total

    return build_spec({"c": CounterSpec()}, program, [None] * n_processes)


class TestDeterminismAndReplay:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 4))
    @settings(max_examples=100)
    def test_same_seed_identical_execution(self, seed, n):
        first = steps_spec(n, 2).run(RandomScheduler(seed))
        second = steps_spec(n, 2).run(RandomScheduler(seed))
        assert first.schedule == second.schedule
        assert first.outputs == second.outputs

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 4))
    @settings(max_examples=100)
    def test_replay_from_decisions(self, seed, n):
        spec = steps_spec(n, 2)
        original = spec.run(RandomScheduler(seed))
        replayed = spec.run(ScriptedScheduler(original.decisions))
        assert replayed.outputs == original.outputs
        assert replayed.schedule == original.schedule

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_counter_conservation(self, seed):
        """Whatever the schedule, the final count equals total incs —
        atomicity of steps."""
        spec = steps_spec(3, 3)
        execution = spec.run(RandomScheduler(seed))
        # The last process to read sees all 9 increments... not
        # necessarily; but the maximum output must equal 9.
        assert max(execution.outputs.values()) == 9


class TestExplorerCountingLaws:
    @given(n=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_one_step_processes_count_factorial(self, n):
        def program(pid, _value):
            yield invoke("r", "write", pid)
            return pid

        spec = build_spec({"r": RegisterSpec()}, program, [None] * n)
        explorer = Explorer(spec, max_depth=n + 1)
        assert sum(1 for _ in explorer.executions()) == math.factorial(n)

    @given(a=st.integers(1, 3), b=st.integers(1, 3))
    @settings(max_examples=12, deadline=None)
    def test_two_process_interleaving_count(self, a, b):
        """Two processes with a and b steps: C(a+b, a) interleavings."""

        def program(pid, steps):
            for _ in range(steps):
                yield invoke("c", "inc")
            return pid

        spec = build_spec({"c": CounterSpec()}, program, [a, b])
        explorer = Explorer(spec, max_depth=a + b + 1)
        count = sum(1 for _ in explorer.executions())
        assert count == math.comb(a + b, a)

    @given(n=st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_all_leaves_have_same_step_total(self, n):
        def program(pid, _value):
            yield invoke("c", "inc")
            yield invoke("c", "inc")
            return pid

        spec = build_spec({"c": CounterSpec()}, program, [None] * n)
        for execution in Explorer(spec, max_depth=2 * n + 1).executions():
            assert len(execution) == 2 * n
