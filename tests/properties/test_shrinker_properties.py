"""Property tests for the ddmin witness shrinker (hypothesis).

The shrinker's contract (docs/EXPLAIN.md): the output still satisfies
the predicate, it is 1-minimal, and the whole search is deterministic —
including across a live execution and its archived-then-replayed twin.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.consensus_from_n_consensus import (
    partition_set_consensus_spec,
)
from repro.obs.explain import ddmin, shrink_execution
from repro.obs.witness import (
    capture_witnesses,
    read_witness,
    replay_witness,
    resolve_predicate,
    resolve_spec,
    witness_context,
)
from repro.runtime.explorer import Explorer
from repro.runtime.scheduler import RandomScheduler

# ----------------------------------------------------------------------
# ddmin over plain sequences
# ----------------------------------------------------------------------
#: A monotone predicate: candidate must contain every element of the
#: target subset.  ddmin's minimum for a monotone predicate is exactly
#: the target (in original order), which pins the algorithm's behaviour
#: far tighter than the generic guarantees.
subset_cases = st.integers(min_value=1, max_value=14).flatmap(
    lambda n: st.tuples(
        st.just(list(range(n))),
        st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1),
    )
)


@given(subset_cases)
def test_ddmin_monotone_predicate_returns_exact_target(case):
    items, target = case
    minimal, _tests = ddmin(items, lambda c: target.issubset(c))
    assert minimal == sorted(target)


@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=16),
    st.integers(min_value=0, max_value=40),
)
def test_ddmin_output_passes_and_is_one_minimal(items, threshold):
    test = lambda c: sum(c) >= threshold  # noqa: E731
    if not test(items):
        return  # ddmin (rightly) rejects inputs that fail their own test
    minimal, _tests = ddmin(items, test)
    assert test(minimal)
    for index in range(len(minimal)):
        reduced = minimal[:index] + minimal[index + 1:]
        assert not reduced or not test(reduced)


@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=16),
    st.integers(min_value=1, max_value=40),
)
def test_ddmin_is_deterministic(items, threshold):
    test = lambda c: sum(c) >= threshold  # noqa: E731
    if not test(items):
        return
    assert ddmin(items, test) == ddmin(items, test)


# ----------------------------------------------------------------------
# shrink_execution over real witnesses
# ----------------------------------------------------------------------
INPUTS = ["a", "b", "c", "d", "e", "f"]
SPEC_META = {"builder": "n-consensus-partition", "n": 2, "inputs": INPUTS}
PRED_META = {"name": "distinct-outputs-at-least", "count": 3}


def predicate(execution):
    return len(execution.distinct_outputs()) >= 3


def witness_for_seed(seed):
    """A schedule-diverse witness: run the partition protocol under a
    seeded random scheduler until the 3-way split shows up."""
    spec = partition_set_consensus_spec(2, INPUTS)
    for attempt in range(25):
        execution = spec.run(RandomScheduler(seed * 31 + attempt))
        if predicate(execution):
            return execution
    # Deterministic fallback: the DFS witness always exists.
    return Explorer(spec, max_depth=10).find(predicate)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_shrunk_witness_still_satisfies_predicate(seed):
    spec = partition_set_consensus_spec(2, INPUTS)
    result = shrink_execution(spec, witness_for_seed(seed), predicate)
    assert predicate(result.execution)
    assert result.min_length <= result.original_length


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_shrunk_witness_is_one_minimal(seed):
    spec = partition_set_consensus_spec(2, INPUTS)
    result = shrink_execution(spec, witness_for_seed(seed), predicate)
    for index in range(len(result.decisions)):
        candidate = result.decisions[:index] + result.decisions[index + 1:]
        try:
            replayed = spec.replay(candidate).finalize()
        except Exception:
            continue  # replay breaks without this decision — minimal
        assert not predicate(replayed)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_shrink_identical_live_and_replayed(tmp_path_factory, seed):
    """Archiving a witness and shrinking its replay must land on the
    same minimal schedule as shrinking the live execution."""
    directory = tmp_path_factory.mktemp("witnesses")
    live = witness_for_seed(seed)
    from repro.obs.witness import capture

    with capture_witnesses(str(directory)) as store:
        with witness_context(spec=SPEC_META, predicate=PRED_META):
            capture(live, kind="existence", source="property-test")
    (record,) = read_witness(store.captured[0])[0]
    spec = resolve_spec(record)
    replayed = replay_witness(record, spec)
    archived_predicate = resolve_predicate(record)

    from_live = shrink_execution(
        partition_set_consensus_spec(2, INPUTS), live, predicate
    )
    from_replay = shrink_execution(spec, replayed, archived_predicate)
    assert from_live.decisions == from_replay.decisions
