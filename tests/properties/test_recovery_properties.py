"""Property-based tests of crash-recovery semantics (hypothesis).

Two contracts from the crash-recovery model:

* **replay fidelity** — any ``full_decisions`` sequence containing
  recovery decisions replays to an identical outcome: same configuration
  fingerprint, same fault records, same outputs;
* **shrinker soundness** — ddmin over decision sequences that include
  recovery decisions preserves predicate truth and stays 1-minimal (a
  recovery whose crash was dropped replays as a no-op, so holes cannot
  corrupt a candidate).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.helpers import build_spec
from repro.faults.chaos import ChaosScheduler
from repro.obs.explain import shrink_execution
from repro.obs.fingerprint import configuration_fingerprint
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.trace_io import load_trace_json, trace_to_json

N_PROCESSES = 3


def busy_spec():
    def program(pid, _value):
        for _ in range(3):
            yield invoke("r", "write", pid)
            yield invoke("r", "read")
        return pid

    return build_spec({"r": RegisterSpec()}, program, [None] * N_PROCESSES)


def chaotic_run(seed):
    scheduler = ChaosScheduler(
        seed=seed,
        crash_probability=0.15,
        stall_probability=0.05,
        recover_probability=0.6,
        max_crashes=2,
        max_recoveries=2,
    )
    return busy_spec().run(scheduler)


class TestReplayFidelity:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_full_decisions_replay_matches_fingerprint(self, seed):
        original = chaotic_run(seed)
        replays = [
            busy_spec().replay(original.full_decisions) for _ in range(2)
        ]
        fingerprints = {configuration_fingerprint(s) for s in replays}
        assert len(fingerprints) == 1
        replayed = replays[0].finalize()
        assert replayed.crashes == original.crashes
        assert replayed.recoveries == original.recoveries
        assert replayed.statuses == original.statuses
        assert replayed.outputs == original.outputs

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_recoveries_survive_json_round_trip(self, seed):
        original = chaotic_run(seed)
        payload = trace_to_json(original)
        replayed = load_trace_json(busy_spec(), payload)
        assert replayed.recoveries == original.recoveries
        assert replayed.crashes == original.crashes
        assert replayed.outputs == original.outputs


class TestShrinkerWithRecoveries:
    def predicate(self, execution):
        return bool(execution.recoveries) and execution.all_done()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_shrink_preserves_truth_and_one_minimality(self, seed):
        original = chaotic_run(seed)
        if not self.predicate(original):
            return  # this seed produced no recovery — nothing to shrink
        result = shrink_execution(busy_spec(), original, self.predicate)
        assert self.predicate(result.execution)
        assert result.min_length <= len(original.full_decisions)
        # Independent 1-minimality check over replay, recovery decisions
        # included: dropping any single decision must break the predicate
        # (or the replay itself).
        for index in range(len(result.decisions)):
            candidate = (
                result.decisions[:index] + result.decisions[index + 1:]
            )
            if not candidate:
                continue
            try:
                reduced = busy_spec().replay(candidate).finalize()
            except Exception:
                continue
            assert not self.predicate(reduced)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_shrink_is_deterministic(self, seed):
        original = chaotic_run(seed)
        if not self.predicate(original):
            return
        first = shrink_execution(busy_spec(), original, self.predicate)
        second = shrink_execution(busy_spec(), original, self.predicate)
        assert first.decisions == second.decisions
