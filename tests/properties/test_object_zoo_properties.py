"""Sweeping invariants over the whole object zoo.

Every object spec in the library must satisfy the state-machine contract
the runtime, explorer, and checkers rely on: hashable immutable states,
pure ``apply``, truthful determinism flags, and sane outcome shapes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statespace import verify_determinism
from repro.core.family import HierarchyObjectSpec
from repro.errors import IllegalOperationError
from repro.objects.consensus_object import NConsensusSpec
from repro.objects.counter import CounterSpec, DoorwaySpec
from repro.objects.generic_rmw import commuting_family, overwriting_family
from repro.objects.queue_stack import QueueSpec, StackSpec
from repro.objects.register import ArraySpec, RegisterSpec
from repro.objects.rmw import (
    CompareAndSwapSpec,
    FetchAndAddSpec,
    SwapSpec,
    TestAndSetSpec,
)
from repro.objects.set_consensus import SetConsensusSpec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.objects.sticky import StickyBitSpec, StickyRegisterSpec

#: (spec, representative op universe) for every zoo member.
ZOO = [
    (RegisterSpec(), [("write", ("a",)), ("write", ("b",)), ("read", ())]),
    (ArraySpec(2), [("write", (0, "x")), ("write", (1, "y")), ("read", (0,))]),
    (CounterSpec(), [("inc", ()), ("read", ())]),
    (DoorwaySpec(), [("read", ()), ("close", ())]),
    (AtomicSnapshotSpec(2), [("update", (0, "u")), ("update", (1, "v")), ("scan", ())]),
    (TestAndSetSpec(), [("test_and_set", ()), ("read", ()), ("reset", ())]),
    (SwapSpec(), [("swap", ("s",)), ("read", ())]),
    (FetchAndAddSpec(), [("fetch_and_add", (1,)), ("read", ())]),
    (CompareAndSwapSpec(), [("compare_and_swap", (None, "c")), ("read", ())]),
    (QueueSpec(), [("enqueue", ("q",)), ("dequeue", ()), ("peek", ())]),
    (StackSpec(), [("push", ("p",)), ("pop", ()), ("top", ())]),
    (StickyBitSpec(), [("set", (0,)), ("set", (1,)), ("read", ())]),
    (StickyRegisterSpec(), [("propose", ("v",)), ("read", ())]),
    (NConsensusSpec(2), [("propose", ("v",)), ("propose", ("w",))]),
    (SetConsensusSpec(3, 2), [("propose", ("v",)), ("propose", ("w",))]),
    (HierarchyObjectSpec(2, 1), [("invoke", (0, 0, "a")), ("invoke", (1, 1, "b"))]),
    (commuting_family(1, 2), [("rmw", ("add_1",)), ("rmw", ("add_2",)), ("read", ())]),
    (overwriting_family(3), [("rmw", ("set_3",)), ("read", ())]),
]

IDS = [type(spec).__name__ + "." + str(i) for i, (spec, _ops) in enumerate(ZOO)]


def random_walk(spec, ops, choices):
    """Apply a pseudo-random legal op sequence; returns visited states."""
    state = spec.initial_state()
    visited = [state]
    for pick in choices:
        method, args = ops[pick % len(ops)]
        try:
            outcomes = spec.apply(state, method, args)
        except IllegalOperationError:
            continue
        _response, state = outcomes[pick % len(outcomes)]
        visited.append(state)
    return visited


class TestZooContract:
    @pytest.mark.parametrize("spec,ops", ZOO, ids=IDS)
    def test_initial_state_hashable(self, spec, ops):
        hash(spec.initial_state())

    @pytest.mark.parametrize("spec,ops", ZOO, ids=IDS)
    def test_methods_cover_universe(self, spec, ops):
        supported = set(spec.methods())
        assert {method for method, _args in ops} <= supported

    @pytest.mark.parametrize("spec,ops", ZOO, ids=IDS)
    @given(choices=st.lists(st.integers(0, 10 ** 6), max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_states_stay_hashable_and_apply_is_pure(self, spec, ops, choices):
        visited = random_walk(spec, ops, choices)
        for state in visited:
            hash(state)
        # Purity: re-applying from a recorded state gives identical results.
        state = visited[-1]
        for method, args in ops:
            try:
                first = spec.apply(state, method, args)
                second = spec.apply(state, method, args)
            except IllegalOperationError:
                continue
            assert first == second

    @pytest.mark.parametrize("spec,ops", ZOO, ids=IDS)
    @given(choices=st.lists(st.integers(0, 10 ** 6), max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_outcome_shape(self, spec, ops, choices):
        visited = random_walk(spec, ops, choices)
        for state in visited:
            for method, args in ops:
                try:
                    outcomes = spec.apply(state, method, args)
                except IllegalOperationError:
                    continue
                assert outcomes, "empty outcome list is forbidden"
                if spec.deterministic:
                    assert len(outcomes) == 1

    @pytest.mark.parametrize("spec,ops", ZOO, ids=IDS)
    def test_determinism_flag_truthful(self, spec, ops):
        report = verify_determinism(spec, ops, max_states=400, truncate=True)
        if spec.deterministic:
            assert report.deterministic
        # (A nondeterministic flag with no branching in this universe is
        # allowed — the universe may just not exercise the branching.)
