"""Property-based tests of execution-set digests: order independence,
shard-merge laws, and live-vs-replayed id invariance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.obs.execset import (
    ZERO_DIGEST,
    execution_id,
    fold_digest,
    merge_digests,
    set_digest,
)
from repro.runtime.explorer import Explorer

ids = st.text(
    alphabet="0123456789abcdef", min_size=1, max_size=24
)
id_lists = st.lists(ids, max_size=30)


def spec_11():
    """O(1, 1) full occupancy: 3 processes, 6 maximal executions."""
    return set_consensus_spec(1, 1, ["v0", "v1", "v2"])


#: All maximal executions of the tiny spec, computed once per import.
EXECUTIONS = list(Explorer(spec_11(), max_depth=20).executions())


class TestDigestLaws:
    @given(id_lists, st.randoms())
    @settings(max_examples=100)
    def test_order_independence(self, values, rng):
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert set_digest(shuffled) == set_digest(values)

    @given(id_lists)
    @settings(max_examples=100)
    def test_multiplicity_independence(self, values):
        """The digest names the set, not the multiset."""
        assert set_digest(values + values) == set_digest(values)
        assert set_digest(values) == set_digest(set(values))

    @given(id_lists, st.integers(0, 30))
    @settings(max_examples=100)
    def test_disjoint_shard_merge_is_union(self, values, cut):
        distinct = sorted(set(values))
        cut = min(cut, len(distinct))
        a, b = distinct[:cut], distinct[cut:]
        assert merge_digests(set_digest(a), set_digest(b)) == \
            set_digest(distinct)

    @given(id_lists)
    @settings(max_examples=100)
    def test_incremental_fold_matches_batch(self, values):
        rolling = ZERO_DIGEST
        for value in sorted(set(values)):
            rolling = fold_digest(rolling, value)
        assert rolling == set_digest(values)

    @given(id_lists, ids)
    @settings(max_examples=100)
    def test_fold_out_equals_set_without(self, values, extra):
        """Folding an id out of a digest (XOR again) yields the digest
        of the set without it — the algebra resumed runs rely on."""
        base = set(values) - {extra}
        with_extra = fold_digest(set_digest(base), extra)
        assert fold_digest(with_extra, extra) == set_digest(base)

    @given(id_lists)
    @settings(max_examples=50)
    def test_distinct_sets_rarely_collide(self, values):
        """Dropping any one element changes the digest (XOR of sha256s
        collides only if sha256 does)."""
        distinct = sorted(set(values))
        whole = set_digest(distinct)
        for index in range(len(distinct)):
            assert set_digest(
                distinct[:index] + distinct[index + 1:]
            ) != whole


class TestExecutionIdInvariance:
    @given(st.integers(0, len(EXECUTIONS) - 1))
    @settings(max_examples=len(EXECUTIONS), deadline=None)
    def test_live_equals_replayed(self, index):
        """An execution's id is the same whether captured live by the
        explorer or rebuilt via SystemSpec.replay from its decisions —
        the invariant that makes cross-run diffs meaningful."""
        execution = EXECUTIONS[index]
        replayed = spec_11().replay(execution.full_decisions).finalize()
        assert execution_id(replayed) == execution_id(execution)

    def test_whole_set_digest_invariant_under_replay(self):
        live = set_digest(execution_id(e) for e in EXECUTIONS)
        spec = spec_11()
        replayed = set_digest(
            execution_id(spec.replay(e.full_decisions).finalize())
            for e in EXECUTIONS
        )
        assert live == replayed

    @given(st.randoms())
    @settings(max_examples=20, deadline=None)
    def test_exploration_digest_independent_of_shard_split(self, rng):
        """Partition the frontier arbitrarily (with overlap): merged
        shard digests equal the whole exploration's digest."""
        all_ids = [execution_id(e) for e in EXECUTIONS]
        cut = rng.randint(0, len(all_ids))
        overlap = rng.randint(0, len(all_ids) - cut) if cut else 0
        shard_a = all_ids[: cut + overlap]
        shard_b = all_ids[cut:]
        combined = dict.fromkeys(shard_a + shard_b)
        assert set_digest(combined) == set_digest(all_ids)
