"""Property-based tests of crash-stop semantics: dead processes stay
dead, their in-flight operations stay pending, and crash timing survives
trace serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.helpers import build_spec
from repro.runtime.history import history_from_execution
from repro.objects.register import RegisterSpec
from repro.runtime.ops import call_marker, invoke, return_marker
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import CrashingScheduler, RandomScheduler
from repro.runtime.trace_io import load_trace_json, trace_to_json

N_PROCESSES = 3

crash_maps = st.dictionaries(
    keys=st.integers(0, N_PROCESSES - 1),
    values=st.integers(0, 14),
    max_size=2,
)


def annotated_spec():
    """Each process performs two logical writes, each spanning two atomic
    steps between call/return markers — a crash mid-operation leaves the
    operation pending."""

    def program(pid, _value):
        for round_index in range(2):
            yield call_marker("r", "write", pid, round_index)
            yield invoke("r", "write", (pid, round_index))
            yield invoke("r", "read")
            yield return_marker(None)
        return pid

    return build_spec({"r": RegisterSpec()}, program, [None] * N_PROCESSES)


def crashed_run(seed, crash_at):
    scheduler = CrashingScheduler(RandomScheduler(seed), crash_at)
    return annotated_spec().run(scheduler)


class TestCrashedProcessesStayDead:
    @given(seed=st.integers(0, 10_000), crash_at=crash_maps)
    @settings(max_examples=100, deadline=None)
    def test_no_steps_after_crash(self, seed, crash_at):
        execution = crashed_run(seed, crash_at)
        for at, pid in execution.crashes:
            assert execution.statuses[pid] is ProcessStatus.CRASHED
            assert pid not in execution.outputs
            assert all(step.pid != pid for step in execution.steps if step.index >= at)

    @given(seed=st.integers(0, 10_000), crash_at=crash_maps)
    @settings(max_examples=100, deadline=None)
    def test_survivors_unaffected(self, seed, crash_at):
        execution = crashed_run(seed, crash_at)
        dead = set(execution.crashed_pids())
        for pid, status in execution.statuses.items():
            if pid not in dead:
                assert status is ProcessStatus.DONE
                assert execution.outputs[pid] == pid


class TestPendingOperations:
    @given(seed=st.integers(0, 10_000), crash_at=crash_maps)
    @settings(max_examples=100, deadline=None)
    def test_pending_ops_belong_to_crashed_pids(self, seed, crash_at):
        execution = crashed_run(seed, crash_at)
        history = history_from_execution(execution)
        dead = set(execution.crashed_pids())
        for event in history.pending:
            assert event.responded_at is None
            assert event.pid in dead
        # Survivors complete both logical operations.
        for pid in set(execution.statuses) - dead:
            completed = [e for e in history.complete if e.pid == pid]
            assert len(completed) == 2

    @given(seed=st.integers(0, 10_000), crash_at=crash_maps)
    @settings(max_examples=100, deadline=None)
    def test_at_most_one_pending_op_per_process(self, seed, crash_at):
        history = history_from_execution(crashed_run(seed, crash_at))
        pending_pids = [event.pid for event in history.pending]
        assert len(pending_pids) == len(set(pending_pids))


class TestTraceRoundTrip:
    @given(seed=st.integers(0, 10_000), crash_at=crash_maps)
    @settings(max_examples=100, deadline=None)
    def test_crashes_survive_json_round_trip(self, seed, crash_at):
        original = crashed_run(seed, crash_at)
        payload = trace_to_json(original)
        replayed = load_trace_json(annotated_spec(), payload)
        assert replayed.crashes == original.crashes
        assert replayed.statuses == original.statuses
        assert replayed.outputs == original.outputs
        assert replayed.schedule == original.schedule
