"""Property-based validation of the Wing–Gong checker.

Two directions:

* **soundness fuel** — histories generated *from* a legal sequential
  execution (then laid out with arbitrary overlapping intervals
  consistent with that order) must check linearizable;
* **cross-check** — on tiny histories, the memoized checker agrees with
  a brute-force permutation search.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.linearizability import is_linearizable
from repro.objects.queue_stack import QueueSpec
from repro.objects.register import RegisterSpec
from repro.runtime.history import History, HistoryEvent


def brute_force_linearizable(history, spec):
    """Reference implementation: try every permutation of the events."""
    events = history.events
    for order in itertools.permutations(range(len(events))):
        position = {idx: pos for pos, idx in enumerate(order)}
        if any(
            events[i].precedes(events[j]) and position[i] > position[j]
            for i in range(len(events))
            for j in range(len(events))
            if i != j
        ):
            continue
        state = spec.initial_state()
        good = True
        for idx in order:
            event = events[idx]
            outcomes = spec.apply(state, event.method, event.args)
            for response, new_state in outcomes:
                if response == event.response:
                    state = new_state
                    break
            else:
                good = False
                break
        if good:
            return True
    return False


@st.composite
def register_histories(draw):
    """Small register histories with arbitrary interval layouts."""
    count = draw(st.integers(1, 4))
    events = []
    for i in range(count):
        is_write = draw(st.booleans())
        start = draw(st.integers(0, 6))
        end = start + draw(st.integers(1, 6))
        if is_write:
            events.append(
                HistoryEvent(
                    pid=i, obj="r", method="write",
                    args=(f"w{draw(st.integers(0, 2))}",),
                    response=None, invoked_at=start, responded_at=end,
                )
            )
        else:
            candidates = [None, "w0", "w1", "w2"]
            events.append(
                HistoryEvent(
                    pid=i, obj="r", method="read", args=(),
                    response=candidates[draw(st.integers(0, 3))],
                    invoked_at=start, responded_at=end,
                )
            )
    return History(events)


class TestCrossCheck:
    @given(history=register_histories())
    @settings(max_examples=300, deadline=None)
    def test_agrees_with_brute_force(self, history):
        fast = is_linearizable(history, RegisterSpec())
        slow = brute_force_linearizable(history, RegisterSpec())
        assert fast == slow


@st.composite
def sequentially_generated_queue_history(draw):
    """Run random ops through the sequential queue, then assign each
    completed op an interval that respects the sequential order — by
    construction linearizable."""
    spec = QueueSpec()
    state = spec.initial_state()
    count = draw(st.integers(1, 6))
    events = []
    clock = 0
    for i in range(count):
        if draw(st.booleans()):
            method, args = "enqueue", (f"v{i}",)
        else:
            method, args = "dequeue", ()
        response, state = spec.apply_one(state, method, args)
        # Interval: starts anywhere at-or-before its order position,
        # ends at its position (order-respecting layout).
        start = draw(st.integers(0, clock))
        events.append(
            HistoryEvent(
                pid=i, obj="q", method=method, args=args,
                response=response, invoked_at=start, responded_at=clock + 1,
            )
        )
        clock += 1
    return History(events)


class TestSoundness:
    @given(history=sequentially_generated_queue_history())
    @settings(max_examples=200, deadline=None)
    def test_generated_histories_always_pass(self, history):
        assert is_linearizable(history, QueueSpec())

    def test_widening_intervals_preserves_linearizability(self):
        """Removing precedence constraints can only help."""
        tight = History([
            HistoryEvent(0, "q", "enqueue", ("a",), None, 0, 1),
            HistoryEvent(1, "q", "dequeue", (), "a", 2, 3),
        ])
        wide = History([
            HistoryEvent(0, "q", "enqueue", ("a",), None, 0, 10),
            HistoryEvent(1, "q", "dequeue", (), "a", 0, 10),
        ])
        assert is_linearizable(tight, QueueSpec())
        assert is_linearizable(wide, QueueSpec())
