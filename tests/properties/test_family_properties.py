"""Property-based tests of the O(n, k) sequential specification.

Hypothesis drives random legal operation sequences through the spec and
checks the invariants every claim in :mod:`repro.core` leans on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.family import HierarchyObjectSpec
from repro.errors import IllegalOperationError

params = st.tuples(st.integers(1, 3), st.integers(1, 3))


@st.composite
def spec_and_ops(draw):
    """A spec plus a random sequence of distinct legal ports with values."""
    n, k = draw(params)
    spec = HierarchyObjectSpec(n, k)
    ports = [(g, s) for g in range(spec.groups) for s in range(spec.n)]
    chosen = draw(st.permutations(ports))
    count = draw(st.integers(0, len(ports)))
    ops = [
        (g, s, f"val-{i}") for i, (g, s) in enumerate(chosen[:count])
    ]
    return spec, ops


def run_ops(spec, ops):
    state = spec.initial_state()
    responses = []
    for g, s, v in ops:
        response, state = spec.apply_one(state, "invoke", (g, s, v))
        responses.append(response)
    return responses, state


class TestSpecInvariants:
    @given(data=spec_and_ops())
    @settings(max_examples=200)
    def test_winner_is_first_group_value(self, data):
        spec, ops = data
        responses, state = run_ops(spec, ops)
        first_by_group = {}
        for (g, _s, v) in ops:
            first_by_group.setdefault(g, v)
        for (g, _s, _v), (winner, _snapshot) in zip(ops, responses):
            assert winner == first_by_group[g]

    @given(data=spec_and_ops())
    @settings(max_examples=200)
    def test_group_members_get_identical_responses(self, data):
        spec, ops = data
        responses, _state = run_ops(spec, ops)
        by_group = {}
        for (g, _s, _v), response in zip(ops, responses):
            by_group.setdefault(g, set()).add(response)
        for g, seen in by_group.items():
            assert len(seen) == 1, f"group {g} leaked distinct responses"

    @given(data=spec_and_ops())
    @settings(max_examples=200)
    def test_snapshot_frozen_at_install(self, data):
        """The snapshot equals the successor winner iff the successor was
        installed before this group, else None — for every prefix."""
        spec, ops = data
        install_order = []
        seen_groups = set()
        for g, _s, v in ops:
            if g not in seen_groups:
                seen_groups.add(g)
                install_order.append((g, v))
        installed_at = {g: i for i, (g, _v) in enumerate(install_order)}
        winner_of = dict((g, v) for g, v in install_order)
        responses, _state = run_ops(spec, ops)
        for (g, _s, _v), (_winner, snapshot) in zip(ops, responses):
            successor = (g + 1) % spec.groups
            if (
                successor in installed_at
                and installed_at[successor] < installed_at[g]
            ):
                assert snapshot == winner_of[successor]
            else:
                assert snapshot is None

    @given(data=spec_and_ops())
    @settings(max_examples=100)
    def test_determinism_replays_identically(self, data):
        spec, ops = data
        assert run_ops(spec, ops) == run_ops(spec, ops)

    @given(data=spec_and_ops())
    @settings(max_examples=100)
    def test_ring_adoption_bound(self, data):
        """The decision rule never yields more than min(groups used, k+1,
        ...) distinct values — the object-level heart of E2."""
        spec, ops = data
        responses, _state = run_ops(spec, ops)
        decisions = {
            snapshot if snapshot is not None else winner
            for winner, snapshot in responses
        }
        groups_used = len({g for g, _s, _v in ops})
        assert len(decisions) <= groups_used
        if groups_used == spec.groups:
            assert len(decisions) <= spec.k + 1

    @given(data=spec_and_ops(), extra=st.integers(0, 5))
    @settings(max_examples=100)
    def test_port_reuse_always_rejected(self, data, extra):
        spec, ops = data
        if not ops:
            return
        state = spec.initial_state()
        for g, s, v in ops:
            _r, state = spec.apply_one(state, "invoke", (g, s, v))
        g, s, _v = ops[extra % len(ops)]
        try:
            spec.apply_one(state, "invoke", (g, s, "again"))
            raised = False
        except IllegalOperationError:
            raised = True
        assert raised
