"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime import RandomScheduler, RoundRobinScheduler


@pytest.fixture
def round_robin():
    return RoundRobinScheduler()


@pytest.fixture
def seeds():
    """Default seed range for randomized-schedule checks."""
    return range(50)


def make_random(seed: int) -> RandomScheduler:
    return RandomScheduler(seed)
