"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime import RandomScheduler, RoundRobinScheduler


@pytest.fixture(autouse=True)
def _ledger_in_tmp(tmp_path, monkeypatch):
    """Point the run ledger at a per-test file.

    The CLI records every invocation in ``.repro/runs.jsonl`` by default;
    without this, every ``main([...])`` call in the suite would append to
    a ledger inside the working tree.  Tests that care about the ledger
    override the path explicitly (``--ledger``) or read this one.  The
    explore command's default-on execution-set stream gets the same
    treatment via ``REPRO_EXECSET_DIR``.
    """
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "test-runs.jsonl"))
    monkeypatch.setenv("REPRO_EXECSET_DIR", str(tmp_path / "execsets"))


@pytest.fixture
def round_robin():
    return RoundRobinScheduler()


@pytest.fixture
def seeds():
    """Default seed range for randomized-schedule checks."""
    return range(50)


def make_random(seed: int) -> RandomScheduler:
    return RandomScheduler(seed)
