"""Tests for Herlihy's universal construction (experiment E9)."""

import pytest

from repro.algorithms.universal import universal_spec
from repro.analysis.linearizability import is_linearizable
from repro.objects.queue_stack import EMPTY, QueueSpec, StackSpec
from repro.objects.rmw import FetchAndAddSpec
from repro.runtime.explorer import explore_executions
from repro.runtime.history import history_from_execution
from repro.runtime.scheduler import RandomScheduler, RoundRobinScheduler, SoloScheduler


class TestFunctional:
    def test_single_process_queue(self):
        scripts = [[("enqueue", ("a",)), ("enqueue", ("b",)), ("dequeue", ())]]
        spec = universal_spec(QueueSpec(), scripts)
        execution = spec.run(RoundRobinScheduler())
        assert execution.outputs[0] == [None, None, "a"]

    def test_sequential_two_processes(self):
        scripts = [
            [("enqueue", ("a",))],
            [("dequeue", ())],
        ]
        spec = universal_spec(QueueSpec(), scripts)
        execution = spec.run(SoloScheduler([0, 1]))
        assert execution.outputs[0] == [None]
        assert execution.outputs[1] == ["a"]

    def test_dequeue_before_enqueue_sees_empty(self):
        scripts = [[("dequeue", ())], [("enqueue", ("a",))]]
        spec = universal_spec(QueueSpec(), scripts)
        execution = spec.run(SoloScheduler([0, 1]))
        assert execution.outputs[0] == [EMPTY]

    def test_fetch_and_add_tickets_are_distinct(self):
        scripts = [[("fetch_and_add", (1,))] for _ in range(3)]
        spec = universal_spec(FetchAndAddSpec(), scripts)
        for seed in range(40):
            execution = spec.run(RandomScheduler(seed))
            tickets = sorted(execution.outputs[p][0] for p in range(3))
            assert tickets == [0, 1, 2]

    def test_wait_freedom_step_bound(self):
        """Helping bounds each operation's steps even under adversarial
        random schedules."""
        scripts = [
            [("push", ("a",)), ("pop", ())],
            [("push", ("b",)), ("pop", ())],
            [("push", ("c",)), ("pop", ())],
        ]
        spec = universal_spec(StackSpec(), scripts)
        for seed in range(30):
            execution = spec.run(RandomScheduler(seed))
            assert execution.all_done()
            assert execution.max_steps_per_process() <= 80


class TestLinearizability:
    def test_exhaustive_queue_two_processes(self):
        """Model-check: the universally-constructed queue is linearizable
        against QueueSpec in every schedule of a small workload."""
        scripts = [
            [("enqueue", ("a",)), ("dequeue", ())],
            [("enqueue", ("b",))],
        ]
        spec = universal_spec(QueueSpec(), scripts)
        checked = 0
        for execution in explore_executions(spec, max_depth=120):
            history = history_from_execution(execution)
            assert is_linearizable(history, QueueSpec()), execution.render()
            checked += 1
        assert checked > 50

    @pytest.mark.parametrize("seed", range(25))
    def test_randomized_stack_three_processes(self, seed):
        scripts = [
            [("push", ("a",)), ("pop", ())],
            [("push", ("b",)), ("top", ())],
            [("pop", ()), ("push", ("c",))],
        ]
        spec = universal_spec(StackSpec(), scripts)
        execution = spec.run(RandomScheduler(seed))
        assert execution.all_done()
        history = history_from_execution(execution)
        assert is_linearizable(history, StackSpec())
