"""Tests for ε-approximate agreement from registers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.approximate_agreement import (
    approximate_agreement_spec,
    rounds_needed,
)
from repro.algorithms.helpers import inputs_dict
from repro.runtime.explorer import explore_executions
from repro.runtime.scheduler import RandomScheduler, SoloScheduler
from repro.tasks.approximate_agreement import ApproximateAgreementTask
from repro.tasks import check_task_random_schedules


class TestRoundsNeeded:
    def test_already_close(self):
        assert rounds_needed(0.5, 1.0) == 1

    def test_halving_count(self):
        assert rounds_needed(8.0, 1.0) == 3
        assert rounds_needed(8.0, 0.5) == 4

    def test_at_least_one_round(self):
        assert rounds_needed(0.0, 0.1) == 1


class TestTaskValidator:
    def test_accepts_close_outputs(self):
        ApproximateAgreementTask(0.5).validate(
            {0: 0.0, 1: 1.0}, {0: 0.5, 1: 0.75}
        )

    def test_rejects_spread(self):
        with pytest.raises(Exception, match="spread"):
            ApproximateAgreementTask(0.5).validate(
                {0: 0.0, 1: 1.0}, {0: 0.0, 1: 1.0}
            )

    def test_rejects_out_of_range(self):
        with pytest.raises(Exception, match="range"):
            ApproximateAgreementTask(5.0).validate(
                {0: 0.0, 1: 1.0}, {0: 2.0}
            )

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            ApproximateAgreementTask(0)


class TestAlgorithm:
    def test_exhaustive_two_processes(self):
        inputs = [0.0, 1.0]
        epsilon = 0.3
        spec = approximate_agreement_spec(inputs, epsilon)
        task = ApproximateAgreementTask(epsilon)
        checked = 0
        for execution in explore_executions(spec, max_depth=40):
            task.validate(inputs_dict(inputs), execution.outputs)
            checked += 1
        assert checked > 10

    @pytest.mark.parametrize(
        "inputs,epsilon",
        [
            ([0.0, 1.0, 0.5], 0.25),
            ([0.0, 4.0, 2.0, 3.0], 0.5),
            ([10.0, 10.0, 10.0], 0.1),
            ([-1.0, 1.0], 0.5),
        ],
    )
    def test_randomized_sweeps(self, inputs, epsilon):
        spec = approximate_agreement_spec(inputs, epsilon)
        report = check_task_random_schedules(
            spec,
            ApproximateAgreementTask(epsilon),
            inputs_dict(inputs),
            seeds=range(200),
        )
        assert report.ok, report.reason

    @given(
        seed=st.integers(0, 5000),
        values=st.lists(
            st.integers(-8, 8).map(float), min_size=2, max_size=5
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_sweep(self, seed, values):
        epsilon = 0.5
        spec = approximate_agreement_spec(values, epsilon)
        execution = spec.run(RandomScheduler(seed))
        assert execution.all_done()
        ApproximateAgreementTask(epsilon).validate(
            inputs_dict(values), execution.outputs
        )

    def test_solo_runner_keeps_own_value(self):
        inputs = [3.0, 7.0]
        spec = approximate_agreement_spec(inputs, 1.0)
        execution = spec.run(SoloScheduler([0, 1]))
        # p0 ran alone first: every round it saw only itself.
        assert execution.outputs[0] == 3.0

    def test_contrast_with_exact_consensus(self):
        """ε-agreement is register-solvable; exact agreement is not —
        the outputs here genuinely differ (no hidden consensus)."""
        inputs = [0.0, 1.0]
        spec = approximate_agreement_spec(inputs, 0.25)
        distinct_pairs = set()
        for seed in range(100):
            execution = approximate_agreement_spec(inputs, 0.25).run(
                RandomScheduler(seed)
            )
            distinct_pairs.add(tuple(execution.outputs[p] for p in range(2)))
        assert any(a != b for a, b in distinct_pairs)
