"""Tests for the BG simulation (experiment E7)."""

import pytest

from repro.algorithms.bg_simulation import (
    simulation_spec,
    write_scan_protocol,
)
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import (
    CrashingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


def union_decisions(execution):
    merged = {}
    for result in execution.outputs.values():
        merged.update(result)
    return merged


class TestCleanRuns:
    def test_two_simulators_three_processes(self):
        protocol = write_scan_protocol(3)
        spec = simulation_spec(protocol, 2, ["a", "b", "c"])
        execution = spec.run(RoundRobinScheduler(), max_steps=20_000)
        assert execution.all_done()
        decisions = union_decisions(execution)
        assert set(decisions) == {0, 1, 2}
        # Every simulated decision is a set of inputs containing the
        # process's own input (it scans after writing).
        for q, seen in decisions.items():
            assert ["a", "b", "c"][q] in seen
            assert set(seen) <= {"a", "b", "c"}

    def test_simulators_witness_identical_transitions(self):
        """Both simulators compute the same decision for any process they
        both witnessed — the safe-agreement glue works."""
        protocol = write_scan_protocol(3)
        spec = simulation_spec(protocol, 2, ["a", "b", "c"])
        for seed in range(20):
            execution = spec.run(RandomScheduler(seed), max_steps=40_000)
            results = list(execution.outputs.values())
            if len(results) == 2:
                shared = set(results[0]) & set(results[1])
                for q in shared:
                    assert results[0][q] == results[1][q]

    def test_single_simulator_degenerates_to_execution(self):
        protocol = write_scan_protocol(2)
        spec = simulation_spec(protocol, 1, ["x", "y"])
        execution = spec.run(RoundRobinScheduler(), max_steps=10_000)
        decisions = union_decisions(execution)
        assert set(decisions) == {0, 1}

    def test_multi_round_protocol(self):
        protocol = write_scan_protocol(2, rounds=2)
        spec = simulation_spec(protocol, 2, ["x", "y"])
        execution = spec.run(RoundRobinScheduler(), max_steps=40_000)
        decisions = union_decisions(execution)
        assert set(decisions) == {0, 1}
        # After two rounds everyone has seen everyone (round-robin).
        assert decisions[0] == ("x", "y")

    def test_input_arity_checked(self):
        with pytest.raises(ValueError):
            simulation_spec(write_scan_protocol(3), 2, ["a", "b"])


class TestCrashContainment:
    def test_one_crash_blocks_at_most_one_simulated_process(self):
        """The BG containment property: crash one of two simulators at an
        arbitrary point; the survivor still completes all but at most one
        simulated process."""
        protocol = write_scan_protocol(3)
        blocked_counts = []
        for crash_step in range(0, 60, 7):
            spec = simulation_spec(protocol, 2, ["a", "b", "c"])
            scheduler = CrashingScheduler(
                RoundRobinScheduler(), crash_at={0: crash_step}
            )
            execution = spec.run(scheduler, max_steps=40_000)
            # (A large crash step may land after the simulator already
            # finished — then nothing was lost and the run is clean.)
            assert execution.statuses[0] in (
                ProcessStatus.CRASHED,
                ProcessStatus.DONE,
            )
            assert execution.statuses[1] is ProcessStatus.DONE
            decisions = union_decisions(execution)
            blocked = 3 - len(decisions)
            assert blocked <= 1, f"crash at {crash_step} blocked {blocked}"
            blocked_counts.append(blocked)
        # The unsafe window is real: some crash point does block one.
        assert any(b == 1 for b in blocked_counts) or all(
            b == 0 for b in blocked_counts
        )
