"""Tests for adopt-commit (consensus number 1 graded agreement)."""

import pytest

from repro.algorithms.adopt_commit import ADOPT, COMMIT, adopt_commit_spec
from repro.runtime.explorer import explore_executions
from repro.runtime.scheduler import RandomScheduler


def outcomes_of(execution):
    return dict(execution.outputs)


class TestUnanimous:
    def test_everyone_commits_all_schedules(self):
        spec = adopt_commit_spec(2, ["v", "v"])
        for execution in explore_executions(spec, max_depth=20):
            for grade, value in execution.outputs.values():
                assert grade == COMMIT
                assert value == "v"

    def test_solo_proposal_commits(self):
        spec = adopt_commit_spec(3, ["only"])
        execution = spec.run(RandomScheduler(0))
        assert execution.outputs[0] == (COMMIT, "only")


class TestContended:
    def test_commit_forces_agreement_all_schedules(self):
        """If anyone commits w, every returned value is w — exhaustively
        for two processes with distinct proposals."""
        spec = adopt_commit_spec(2, ["a", "b"])
        saw_commit = saw_split = False
        for execution in explore_executions(spec, max_depth=20):
            grades = execution.outputs
            committed = {v for g, v in grades.values() if g == COMMIT}
            assert len(committed) <= 1
            if committed:
                saw_commit = True
                winner = committed.pop()
                assert all(v == winner for _g, v in grades.values())
            values = {v for _g, v in grades.values()}
            if len(values) == 2:
                saw_split = True
                # A split must be all-adopt.
                assert all(g == ADOPT for g, _v in grades.values())
        assert saw_commit  # some schedule lets a proposer commit
        assert saw_split   # and some schedule leaves both adopting own

    def test_validity_all_schedules(self):
        spec = adopt_commit_spec(2, ["a", "b"])
        for execution in explore_executions(spec, max_depth=20):
            for _grade, value in execution.outputs.values():
                assert value in ("a", "b")

    def test_three_processes_randomized(self):
        spec = adopt_commit_spec(3, ["a", "b", "c"])
        for seed in range(100):
            execution = spec.run(RandomScheduler(seed))
            grades = execution.outputs
            committed = {v for g, v in grades.values() if g == COMMIT}
            assert len(committed) <= 1
            if committed:
                winner = committed.pop()
                assert all(v == winner for _g, v in grades.values())

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            adopt_commit_spec(2, ["a", "b", "c"])
