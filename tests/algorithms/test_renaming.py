"""Tests for splitter-grid renaming, including hypothesis sweeps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.renaming import (
    DOWN,
    RIGHT,
    STOP,
    grid_name,
    renaming_spec,
    splitter,
    splitter_objects,
    target_namespace,
)
from repro.runtime.explorer import explore_executions
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.system import SystemSpec
from repro.tasks import RenamingTask, check_task_random_schedules


class TestSplitter:
    def _spec(self, n_processes):
        def program(pid):
            def run():
                outcome = yield from splitter("spl", pid)
                return outcome

            return run

        return SystemSpec(
            splitter_objects("spl"), [program(p) for p in range(n_processes)]
        )

    def test_solo_process_stops(self):
        execution = self._spec(1).run(RandomScheduler(0))
        assert execution.outputs[0] == STOP

    @pytest.mark.parametrize("n", [2, 3])
    def test_splitter_invariants_all_schedules(self, n):
        """At most one STOP; not all RIGHT; not all DOWN — exhaustively."""
        for execution in explore_executions(self._spec(n), max_depth=20):
            outcomes = list(execution.outputs.values())
            assert outcomes.count(STOP) <= 1
            assert outcomes.count(RIGHT) <= n - 1
            assert outcomes.count(DOWN) <= n - 1


class TestGridNaming:
    def test_diagonal_enumeration_is_injective(self):
        names = {
            grid_name(r, c)
            for r in range(6)
            for c in range(6)
        }
        assert len(names) == 36

    def test_names_within_namespace(self):
        k = 5
        names = [grid_name(r, c) for r in range(k) for c in range(k - r)]
        assert max(names) < target_namespace(k)

    def test_target_namespace_formula(self):
        assert target_namespace(4) == 10


class TestRenaming:
    def test_exhaustive_two_processes(self):
        spec = renaming_spec(2, ["alice", "bob"])
        task = RenamingTask(target_namespace(2))
        for execution in explore_executions(spec, max_depth=30):
            task.validate({0: "alice", 1: "bob"}, execution.outputs)
            assert execution.all_done()

    @pytest.mark.parametrize("participants", [1, 2, 3, 4])
    def test_randomized(self, participants):
        ids = [f"id{i * 17}" for i in range(participants)]
        spec = renaming_spec(participants, ids)
        task = RenamingTask(target_namespace(participants))
        report = check_task_random_schedules(
            spec, task, inputs_dict(ids), seeds=range(80)
        )
        assert report.ok, report.reason

    @given(
        subset=st.sets(st.integers(0, 9), min_size=1, max_size=4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_participant_subset(self, subset, seed):
        """Uniqueness and range hold for any set of original ids under any
        sampled schedule — the adaptive guarantee."""
        ids = [f"name-{i}" for i in sorted(subset)]
        spec = renaming_spec(4, ids)
        execution = spec.run(RandomScheduler(seed))
        assert execution.all_done()
        RenamingTask(target_namespace(4)).validate(
            inputs_dict(ids), execution.outputs
        )

    def test_distinct_ids_required(self):
        with pytest.raises(ValueError):
            renaming_spec(3, ["same", "same"])

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            renaming_spec(2, ["a", "b", "c"])
