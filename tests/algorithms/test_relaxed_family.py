"""Tests for flag-principle port guards."""

import pytest

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.relaxed_family import (
    contended_spec,
    guarded_set_consensus_spec,
)
from repro.runtime.explorer import explore_executions
from repro.runtime.scheduler import RandomScheduler
from repro.tasks import KSetConsensusTask, check_task_random_schedules


def letters(count):
    return [chr(ord("a") + i) for i in range(count)]


class TestGuardedProtocol:
    def test_same_guarantee_as_unguarded(self):
        inputs = letters(6)
        spec = guarded_set_consensus_spec(2, 1, inputs)
        report = check_task_random_schedules(
            spec, KSetConsensusTask(2), inputs_dict(inputs), seeds=range(150)
        )
        assert report.ok, report.reason

    def test_exhaustive_small_instance(self):
        """O(1,1) guarded, 3 processes: all schedules still 2-agree."""
        inputs = letters(3)
        spec = guarded_set_consensus_spec(1, 1, inputs)
        report_values = set()
        for execution in explore_executions(spec, max_depth=20):
            decisions = set(execution.outputs.values())
            assert decisions <= set(inputs)
            assert len(decisions) <= 2
            report_values.add(len(decisions))
        assert 2 in report_values  # bound met somewhere

    def test_size_validation(self):
        with pytest.raises(ValueError):
            guarded_set_consensus_spec(2, 1, letters(2))


class TestFlagPrincipleUnderContention:
    def test_colliding_ports_never_misuse(self):
        """All three processes target the SAME port: the guard must let at
        most one through, the others fall back to their own values, and
        the one-shot object never raises — over every schedule."""
        inputs = letters(3)
        spec = contended_spec(2, 1, inputs, [(0, 0), (0, 0), (0, 0)])
        for execution in explore_executions(spec, max_depth=30):
            # No process blocked or errored: everyone decided.
            assert execution.all_done()
            invokes = [
                s for s in execution.steps
                if s.operation.target == "O" and s.operation.method == "invoke"
            ]
            assert len(invokes) <= 1  # the port was used at most once

    def test_denied_processes_keep_own_value(self):
        inputs = letters(3)
        spec = contended_spec(2, 1, inputs, [(0, 0), (0, 0), (0, 0)])
        for execution in explore_executions(spec, max_depth=30):
            decisions = execution.outputs
            own = sum(1 for pid, d in decisions.items() if d == inputs[pid])
            assert own >= 2  # at least the denied ones

    def test_distinct_ports_all_pass(self):
        inputs = letters(3)
        spec = contended_spec(1, 1, inputs, [(0, 0), (1, 0), (2, 0)])
        execution = spec.run(RandomScheduler(5))
        invokes = [
            s for s in execution.steps
            if s.operation.target == "O" and s.operation.method == "invoke"
        ]
        assert len(invokes) == 3  # everyone got through

    def test_port_list_length_checked(self):
        with pytest.raises(ValueError):
            contended_spec(2, 1, letters(2), [(0, 0)])
