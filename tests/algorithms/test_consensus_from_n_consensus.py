"""Tests for the n-consensus baselines."""

import pytest

from repro.algorithms.consensus_from_n_consensus import (
    consensus_spec,
    partition_bound,
    partition_set_consensus_spec,
)
from repro.algorithms.helpers import inputs_dict
from repro.runtime.explorer import explore_executions
from repro.runtime.scheduler import RandomScheduler, SoloScheduler
from repro.tasks import (
    ConsensusTask,
    KSetConsensusTask,
    check_task_all_schedules,
    check_task_random_schedules,
)


def letters(count):
    return [chr(ord("a") + i) for i in range(count)]


class TestConsensus:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_all_schedules(self, n):
        inputs = letters(n)
        report = check_task_all_schedules(
            consensus_spec(n, inputs), ConsensusTask(), inputs_dict(inputs)
        )
        assert report.ok, report.reason

    def test_budget_enforced(self):
        with pytest.raises(ValueError):
            consensus_spec(2, letters(3))


class TestPartition:
    def test_bound_formula(self):
        assert partition_bound(2, 6) == 3
        assert partition_bound(2, 7) == 4
        assert partition_bound(3, 7) == 3

    @pytest.mark.parametrize("n,total", [(2, 5), (2, 6), (3, 7)])
    def test_respects_bound_randomized(self, n, total):
        inputs = letters(total)
        spec = partition_set_consensus_spec(n, inputs)
        task = KSetConsensusTask(partition_bound(n, total))
        report = check_task_random_schedules(
            spec, task, inputs_dict(inputs), seeds=range(100)
        )
        assert report.ok, report.reason

    def test_bound_tight_under_solo_blocks(self):
        """Running each block's first proposer first forces one value per
        block: exactly ceil(N/n) distinct decisions."""
        inputs = letters(6)
        spec = partition_set_consensus_spec(2, inputs)
        execution = spec.run(SoloScheduler([0, 2, 4, 1, 3, 5]))
        assert len(execution.distinct_outputs()) == 3

    def test_exhaustive_small(self):
        inputs = letters(4)
        spec = partition_set_consensus_spec(2, inputs)
        for execution in explore_executions(spec, max_depth=8):
            assert len(execution.distinct_outputs()) <= 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            partition_set_consensus_spec(2, [])
