"""Unit tests for the protocol-construction helpers."""

from repro.algorithms.helpers import build_spec, inputs_dict, programs_from
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RoundRobinScheduler


def echo(pid, value):
    yield invoke("r", "write", (pid, value))
    return (pid, value)


class TestProgramsFrom:
    def test_one_factory_per_input(self):
        factories = programs_from(echo, ["a", "b", "c"])
        assert len(factories) == 3

    def test_closures_capture_distinct_values(self):
        """The classic late-binding bug (every closure seeing the last
        value) must not occur."""
        factories = programs_from(echo, ["a", "b"])
        outputs = []
        for factory in factories:
            generator = factory()
            next(generator)
            try:
                generator.send(None)
            except StopIteration as stop:
                outputs.append(stop.value)
        assert outputs == [(0, "a"), (1, "b")]

    def test_factories_are_restartable(self):
        factory = programs_from(echo, ["x"])[0]
        first, second = factory(), factory()
        assert next(first) == next(second)


class TestBuildSpec:
    def test_end_to_end(self):
        spec = build_spec({"r": RegisterSpec()}, echo, ["a", "b"])
        execution = spec.run(RoundRobinScheduler())
        assert execution.outputs == {0: (0, "a"), 1: (1, "b")}

    def test_n_processes(self):
        spec = build_spec({"r": RegisterSpec()}, echo, ["a", "b", "c"])
        assert spec.n_processes == 3


class TestInputsDict:
    def test_mapping(self):
        assert inputs_dict(["x", "y"]) == {0: "x", 1: "y"}

    def test_empty(self):
        assert inputs_dict([]) == {}
