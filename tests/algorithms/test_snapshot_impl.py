"""Tests for the register-based snapshot implementation (experiment E9).

The gold standard here is *model-checked linearizability*: run the
implementation under every schedule of a small workload, extract the
logical scan/update history, and check it against the atomic snapshot
sequential spec with the Wing–Gong checker.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.snapshot_impl import (
    annotated_scan,
    annotated_update,
    scan,
    snapshot_objects,
    update,
    updater_scanner_program,
)
from repro.analysis.linearizability import is_linearizable
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.runtime.ops import invoke
from repro.runtime.explorer import explore_executions
from repro.runtime.history import history_from_execution
from repro.runtime.scheduler import RandomScheduler, RoundRobinScheduler
from repro.runtime.system import SystemSpec


def two_process_spec(size=2):
    """p0 updates then scans; p1 scans concurrently (kept small so the
    exhaustive interleaving space stays tractable)."""

    def updater():
        yield invoke("snap", "read", 0)  # warm-up: real interval starts
        yield from annotated_update("snap", size, 0, "v0", 1)
        view = yield from annotated_scan("snap", size)
        return view

    def scanner():
        yield invoke("snap", "read", 1)  # warm-up
        view = yield from annotated_scan("snap", size)
        return view

    return SystemSpec(snapshot_objects("snap", size), [updater, scanner])


class TestFunctional:
    def test_solo_update_scan(self):
        def program():
            yield from update("snap", 2, 0, "x", 1)
            view = yield from scan("snap", 2)
            return view

        spec = SystemSpec(snapshot_objects("snap", 2), [program])
        execution = spec.run(RoundRobinScheduler())
        assert execution.outputs[0] == ("x", None)

    def test_sequential_updates_visible(self):
        def writer():
            yield from update("snap", 2, 0, "a", 1)
            yield from update("snap", 2, 0, "b", 2)
            return None

        def reader():
            view = yield from scan("snap", 2)
            return view

        spec = SystemSpec(snapshot_objects("snap", 2), [writer, reader])
        from repro.runtime.scheduler import SoloScheduler

        execution = spec.run(SoloScheduler([0, 1]))
        assert execution.outputs[1] == ("b", None)

    def test_wait_freedom_step_bound(self):
        """Every process finishes within O(size^2) steps per operation
        regardless of schedule (sampled)."""
        spec = two_process_spec()
        for seed in range(50):
            execution = spec.run(RandomScheduler(seed))
            assert execution.all_done()
            assert execution.max_steps_per_process() <= 60


class TestLinearizability:
    def test_exhaustive_two_processes(self):
        """Model-check: every schedule of update+scan by two processes is
        linearizable against the atomic spec."""
        spec = two_process_spec()
        reference = AtomicSnapshotSpec(2)
        checked = 0
        for execution in explore_executions(spec, max_depth=60):
            history = history_from_execution(execution)
            assert is_linearizable(history, reference), execution.render()
            checked += 1
        assert checked > 100  # the schedule space is genuinely explored

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_randomized_three_processes(self, seed):
        size = 3

        def program(pid):
            def run():
                result = yield from updater_scanner_program(
                    "snap", size, pid, [f"v{pid}.1", f"v{pid}.2"], scans=2
                )
                return result

            return run

        spec = SystemSpec(
            snapshot_objects("snap", size), [program(p) for p in range(size)]
        )
        execution = spec.run(RandomScheduler(seed))
        assert execution.all_done()
        history = history_from_execution(execution)
        assert is_linearizable(history, AtomicSnapshotSpec(size))

    def test_borrowed_view_is_exercised(self):
        """Drive a scanner through two observed changes so it must borrow
        an embedded view, and check the result is still linearizable."""
        size = 2

        def busy_writer():
            for seq in range(1, 4):
                yield from annotated_update("snap", size, 0, f"w{seq}", seq)
            return None

        def scanner():
            view = yield from annotated_scan("snap", size)
            return view

        spec = SystemSpec(snapshot_objects("snap", size), [busy_writer, scanner])
        # Alternating schedules make the scanner's collects keep observing
        # changes; across the seed sweep the borrow branch is taken (the
        # scanner returns a mid-stream value rather than the final one).
        borrowed_or_early = 0
        for seed in range(200):
            execution = spec.run(RandomScheduler(seed))
            history = history_from_execution(execution)
            assert is_linearizable(history, AtomicSnapshotSpec(size))
            view = execution.outputs[1]
            if view is not None and view[0] in ("w1", "w2"):
                borrowed_or_early += 1
        assert borrowed_or_early > 0
