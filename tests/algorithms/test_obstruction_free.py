"""Tests for obstruction-free consensus: safe always, live only solo."""

import pytest

from repro.algorithms.obstruction_free import obstruction_free_spec
from repro.runtime.explorer import Explorer, explore_executions, find_execution
from repro.runtime.scheduler import RandomScheduler, SoloScheduler


def decided(execution):
    return {pid: v for pid, v in execution.outputs.items() if v is not None}


class TestSafety:
    def test_agreement_in_every_bounded_execution(self):
        """All executions (2 procs, 2 rounds budget): decided values never
        disagree and are always inputs."""
        spec = obstruction_free_spec(["a", "b"], max_rounds=2)
        checked = 0
        for execution in explore_executions(spec, max_depth=60):
            outputs = decided(execution)
            assert len(set(outputs.values())) <= 1
            assert set(outputs.values()) <= {"a", "b"}
            checked += 1
        assert checked > 100

    def test_agreement_randomized_three_processes(self):
        spec = obstruction_free_spec(["a", "b", "c"], max_rounds=6)
        for seed in range(80):
            execution = obstruction_free_spec(
                ["a", "b", "c"], max_rounds=6
            ).run(RandomScheduler(seed))
            outputs = decided(execution)
            assert len(set(outputs.values())) <= 1

    def test_unanimous_inputs_commit_first_round(self):
        spec = obstruction_free_spec(["v", "v"], max_rounds=1)
        for execution in explore_executions(spec, max_depth=30):
            assert set(execution.outputs.values()) == {"v"}


class TestProgress:
    def test_solo_runner_decides_immediately(self):
        spec = obstruction_free_spec(["a", "b"], max_rounds=3)
        execution = spec.run(SoloScheduler([0, 1]))
        assert execution.outputs[0] == "a"
        assert execution.outputs[1] == "a"  # the late runner adopts/commits a

    def test_everyone_decides_under_most_schedules(self):
        decided_runs = 0
        for seed in range(50):
            execution = obstruction_free_spec(
                ["a", "b"], max_rounds=8
            ).run(RandomScheduler(seed))
            if all(v is not None for v in execution.outputs.values()):
                decided_runs += 1
        assert decided_runs > 25  # contention rarely persists at random

    def test_livelock_schedule_exists(self):
        """The adversary can burn the whole round budget with no decision
        — consensus is NOT wait-free from registers, visible here as an
        execution where someone runs out of rounds undecided."""
        spec = obstruction_free_spec(["a", "b"], max_rounds=2)
        witness = find_execution(
            spec,
            lambda e: any(v is None for v in e.outputs.values()),
            max_depth=60,
        )
        assert witness is not None

    def test_livelock_preserves_safety(self):
        """Even livelocked prefixes never produce disagreement."""
        spec = obstruction_free_spec(["a", "b"], max_rounds=2)
        for execution in explore_executions(spec, max_depth=60):
            if any(v is None for v in execution.outputs.values()):
                values = set(decided(execution).values())
                assert len(values) <= 1


class TestValidation:
    def test_empty_inputs(self):
        with pytest.raises(ValueError):
            obstruction_free_spec([])
