"""Tests for the classical consensus-number witness constructions."""

import pytest

from repro.algorithms.classic_consensus import (
    WITNESSES,
    consensus_from_cas,
    consensus_from_fetch_and_add,
    consensus_from_queue,
    consensus_from_sticky,
    consensus_from_swap,
    consensus_from_test_and_set,
)
from repro.algorithms.helpers import inputs_dict
from repro.tasks import ConsensusTask, check_task_all_schedules

TWO_PROCESS_BUILDERS = [
    consensus_from_test_and_set,
    consensus_from_swap,
    consensus_from_fetch_and_add,
    consensus_from_queue,
]


class TestTwoProcessWitnesses:
    @pytest.mark.parametrize("builder", TWO_PROCESS_BUILDERS)
    def test_consensus_all_schedules(self, builder):
        inputs = ["a", "b"]
        report = check_task_all_schedules(
            builder(inputs), ConsensusTask(), inputs_dict(inputs)
        )
        assert report.ok, f"{builder.__name__}: {report.reason}"

    @pytest.mark.parametrize("builder", TWO_PROCESS_BUILDERS)
    def test_solo_participant(self, builder):
        inputs = ["only"]
        report = check_task_all_schedules(
            builder(inputs), ConsensusTask(), inputs_dict(inputs)
        )
        assert report.ok

    @pytest.mark.parametrize("builder", TWO_PROCESS_BUILDERS)
    def test_three_participants_rejected(self, builder):
        with pytest.raises(ValueError):
            builder(["a", "b", "c"])


class TestUnboundedWitnesses:
    @pytest.mark.parametrize("builder", [consensus_from_cas, consensus_from_sticky])
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_consensus_all_schedules(self, builder, n):
        inputs = [f"v{i}" for i in range(n)]
        report = check_task_all_schedules(
            builder(inputs), ConsensusTask(), inputs_dict(inputs)
        )
        assert report.ok, f"{builder.__name__}: {report.reason}"


class TestWitnessRegistry:
    def test_registry_matches_consensus_numbers(self):
        """Each witness's participant cap matches the recorded consensus
        number of the object it is built on."""
        import math

        from repro.core.consensus_number import consensus_number_of
        from repro.objects.queue_stack import QueueSpec
        from repro.objects.rmw import (
            CompareAndSwapSpec,
            FetchAndAddSpec,
            SwapSpec,
            TestAndSetSpec,
        )
        from repro.objects.sticky import StickyRegisterSpec

        recorded = {
            "test-and-set": consensus_number_of(TestAndSetSpec()),
            "swap": consensus_number_of(SwapSpec()),
            "fetch-and-add": consensus_number_of(FetchAndAddSpec()),
            "queue": consensus_number_of(QueueSpec()),
            "compare-and-swap": consensus_number_of(CompareAndSwapSpec()),
            "sticky-register": consensus_number_of(StickyRegisterSpec()),
        }
        for name, (_builder, cap) in WITNESSES.items():
            if cap is None:
                assert recorded[name] == math.inf
            else:
                assert recorded[name] == cap

    def test_every_witness_runs(self):
        from repro.runtime.scheduler import RandomScheduler

        for name, (builder, cap) in WITNESSES.items():
            n = cap if cap is not None else 3
            inputs = [f"v{i}" for i in range(n)]
            execution = builder(inputs).run(RandomScheduler(1))
            assert len(set(execution.outputs.values())) == 1, name
