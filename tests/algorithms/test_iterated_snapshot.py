"""Tests for iterated immediate snapshot — including the iterated
chromatic subdivision counts."""

import pytest

from repro.algorithms.iterated_snapshot import (
    flatten_view,
    iis_spec,
)
from repro.runtime.explorer import Explorer
from repro.runtime.scheduler import RandomScheduler, SoloScheduler


def profiles_of(n, rounds, max_depth):
    spec = iis_spec([f"x{i}" for i in range(n)], rounds)
    explorer = Explorer(spec, max_depth=max_depth)
    profiles = set()
    for execution in explorer.executions():
        profiles.add(tuple(execution.outputs[p] for p in range(n)))
    return profiles


class TestIteratedSubdivision:
    @pytest.mark.parametrize("rounds,expected", [(1, 3), (2, 9), (3, 27)])
    def test_two_process_counts_are_powers_of_three(self, rounds, expected):
        """Each IIS round subdivides each edge into 3: 3^R edges."""
        profiles = profiles_of(2, rounds, max_depth=10 * rounds + 10)
        assert len(profiles) == expected

    def test_three_process_single_round(self):
        profiles = profiles_of(3, 1, max_depth=40)
        assert len(profiles) == 13


class TestViewStructure:
    def test_round_views_nest(self):
        """In the final view, every visible peer's payload is its
        previous-round view — containment holds level by level."""
        spec = iis_spec(["a", "b", "c"], 2)
        for seed in range(60):
            execution = spec.run(RandomScheduler(seed))
            assert execution.all_done()
            views = list(execution.outputs.values())
            for view in views:
                for _pid, payload in view:
                    assert isinstance(payload, frozenset)
            # Final-round views are comparable (IS containment).
            for a in views:
                for b in views:
                    assert a <= b or b <= a

    def test_flatten_view_collects_pids(self):
        spec = iis_spec(["a", "b"], 2)
        execution = spec.run(SoloScheduler([1, 0]))
        # p0 ran last: it saw p1's round views transitively.
        pids = flatten_view(execution.outputs[0], depth=2)
        assert pids == frozenset({0, 1})
        # p1 ran solo first: saw only itself at every depth.
        assert flatten_view(execution.outputs[1], depth=2) == frozenset({1})

    def test_solo_chain_views_grow(self):
        spec = iis_spec(["a", "b", "c"], 1)
        execution = spec.run(SoloScheduler([0, 1, 2]))
        sizes = [len(execution.outputs[p]) for p in range(3)]
        assert sizes == [1, 2, 3]


class TestValidation:
    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            iis_spec(["a"], 0)

    def test_empty_inputs(self):
        with pytest.raises(ValueError):
            iis_spec([], 1)

    def test_wait_free_step_bound(self):
        spec = iis_spec(["a", "b", "c"], 2)
        for seed in range(40):
            execution = spec.run(RandomScheduler(seed))
            # <= rounds * n * 2 steps per process.
            assert execution.max_steps_per_process() <= 2 * 3 * 2
