"""Tests for the Borowsky–Gafni immediate snapshot."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.immediate_snapshot import immediate_snapshot_spec
from repro.runtime.explorer import explore_executions
from repro.runtime.scheduler import RandomScheduler, SoloScheduler
from repro.tasks.immediate_snapshot import ImmediateSnapshotTask
from repro.tasks import check_task_all_schedules, check_task_random_schedules


def letters(count):
    return [chr(ord("a") + i) for i in range(count)]


class TestSmallExhaustive:
    def test_single_process_sees_itself(self):
        spec = immediate_snapshot_spec(["solo"])
        executions = list(explore_executions(spec, max_depth=10))
        for execution in executions:
            assert execution.outputs[0] == frozenset({(0, "solo")})

    @pytest.mark.parametrize("n", [2, 3])
    def test_all_schedules_satisfy_task(self, n):
        inputs = letters(n)
        spec = immediate_snapshot_spec(inputs)
        report = check_task_all_schedules(
            spec,
            ImmediateSnapshotTask(),
            inputs_dict(inputs),
            max_depth=12 * n,
        )
        assert report.ok, report.reason

    def test_concurrent_block_executions_exist(self):
        """Some schedule yields identical full views for all (the 'all
        together' simplex) and some yields a strict chain."""
        inputs = letters(2)
        spec = immediate_snapshot_spec(inputs)
        full = frozenset({(0, "a"), (1, "b")})
        kinds = set()
        for execution in explore_executions(spec, max_depth=30):
            views = tuple(sorted(len(v) for v in execution.outputs.values()))
            kinds.add(views)
        assert (2, 2) in kinds  # both see both
        assert (1, 2) in kinds  # strict chain


class TestRandomized:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_seeded_sweep(self, n):
        inputs = letters(n)
        spec = immediate_snapshot_spec(inputs)
        report = check_task_random_schedules(
            spec, ImmediateSnapshotTask(), inputs_dict(inputs), seeds=range(120)
        )
        assert report.ok, report.reason

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 6))
    @settings(max_examples=80, deadline=None)
    def test_property_sweep(self, seed, n):
        inputs = letters(n)
        spec = immediate_snapshot_spec(inputs)
        execution = spec.run(RandomScheduler(seed))
        assert execution.all_done()
        ImmediateSnapshotTask().validate(inputs_dict(inputs), execution.outputs)

    def test_solo_order_gives_strict_chain(self):
        """Running processes one after another yields strictly growing
        views — the fully ordered corner of the subdivision."""
        inputs = letters(4)
        spec = immediate_snapshot_spec(inputs)
        execution = spec.run(SoloScheduler([0, 1, 2, 3]))
        sizes = [len(execution.outputs[p]) for p in range(4)]
        assert sizes == [1, 2, 3, 4]

    def test_wait_freedom_step_bound(self):
        """At most n (write + scan) rounds per process."""
        inputs = letters(5)
        spec = immediate_snapshot_spec(inputs)
        for seed in range(50):
            execution = spec.run(RandomScheduler(seed))
            assert execution.max_steps_per_process() <= 2 * 5


class TestTaskValidator:
    def test_rejects_missing_self(self):
        task = ImmediateSnapshotTask()
        with pytest.raises(Exception, match="self-inclusion"):
            task.validate({0: "a", 1: "b"}, {0: frozenset({(1, "b")})})

    def test_rejects_incomparable_views(self):
        task = ImmediateSnapshotTask()
        with pytest.raises(Exception, match="containment"):
            task.validate(
                {0: "a", 1: "b"},
                {
                    0: frozenset({(0, "a")}),
                    1: frozenset({(1, "b")}),
                },
            )

    def test_rejects_immediacy_violation(self):
        task = ImmediateSnapshotTask()
        with pytest.raises(Exception, match="immediacy"):
            task.validate(
                {0: "a", 1: "b", 2: "c"},
                {
                    # p0 sees p1, but p1's view is not inside p0's.
                    0: frozenset({(0, "a"), (1, "b")}),
                    1: frozenset({(0, "a"), (1, "b"), (2, "c")}),
                },
            )

    def test_rejects_fabricated_pairs(self):
        task = ImmediateSnapshotTask()
        with pytest.raises(Exception, match="nobody wrote"):
            task.validate({0: "a"}, {0: frozenset({(0, "a"), (9, "z")})})

    def test_accepts_partial_outputs(self):
        task = ImmediateSnapshotTask()
        task.validate(
            {0: "a", 1: "b"},
            {1: frozenset({(1, "b")})},
        )
