"""Tests for election protocols — including the deliberate negative
result separating set election from *strong* set election."""

import pytest

from repro.algorithms.election import (
    leader_election_spec,
    set_election_spec,
    tas_chain_election_spec,
)
from repro.errors import TaskViolationError
from repro.runtime.explorer import explore_executions, find_execution
from repro.runtime.scheduler import RandomScheduler
from repro.tasks import (
    KSetElectionTask,
    StrongKSetElectionTask,
    check_task_all_schedules,
    check_task_random_schedules,
)


class TestSetElection:
    def test_exhaustive_o21(self):
        spec = set_election_spec(2, 1, 6)
        inputs = {pid: pid for pid in range(6)}
        report = check_task_all_schedules(
            spec, KSetElectionTask(2), inputs, max_depth=10
        )
        assert report.ok, report.reason

    def test_randomized_o22(self):
        spec = set_election_spec(2, 2, 8)
        inputs = {pid: pid for pid in range(8)}
        report = check_task_random_schedules(
            spec, KSetElectionTask(3), inputs, seeds=range(150)
        )
        assert report.ok, report.reason

    def test_participant_bounds(self):
        with pytest.raises(ValueError):
            set_election_spec(2, 1, 7)


class TestStrongElectionGap:
    def test_ring_protocol_violates_self_election_somewhere(self):
        """The ring protocol solves 2-set election but NOT the strong
        variant: the explorer finds a schedule where some process elects
        a leader that elected someone else.  This is the gap the strong
        task's extra property creates."""
        spec = set_election_spec(2, 1, 6)
        inputs = {pid: pid for pid in range(6)}
        task = StrongKSetElectionTask(2)

        def violates(execution):
            return execution.all_done() and not task.check(
                inputs, execution.outputs
            )

        witness = find_execution(spec, violates, max_depth=10)
        assert witness is not None
        # And the violation really is self-election, not k-agreement.
        with pytest.raises(TaskViolationError, match="self-election"):
            task.validate(inputs, witness.outputs)

    def test_single_group_strong_election_holds(self):
        """Within one group the winner is an elector and elects itself:
        strong election, exhaustively."""
        spec = leader_election_spec(3, 1, 3)
        inputs = {pid: pid for pid in range(3)}
        report = check_task_all_schedules(
            spec, StrongKSetElectionTask(1), inputs, max_depth=10
        )
        assert report.ok, report.reason


class TestTasChain:
    def test_exactly_one_leader_all_schedules(self):
        spec = tas_chain_election_spec(3)
        for execution in explore_executions(spec, max_depth=10):
            leaders = [
                pid for pid, (role, _p) in execution.outputs.items()
                if role == "leader"
            ]
            assert len(leaders) == 1

    def test_losers_do_not_learn_the_leader(self):
        """The output of a loser is identical whatever the winner's id —
        the reason TAS-election is weaker than strong election."""
        spec = tas_chain_election_spec(3)
        loser_outputs = set()
        for execution in explore_executions(spec, max_depth=10):
            for pid, (role, reported) in execution.outputs.items():
                if role == "lost":
                    assert reported == pid  # only self-knowledge
                    loser_outputs.add((pid, reported))
        assert loser_outputs  # losers existed

    def test_randomized_uniqueness(self):
        spec = tas_chain_election_spec(6)
        for seed in range(50):
            execution = spec.run(RandomScheduler(seed))
            roles = [role for role, _p in execution.outputs.values()]
            assert roles.count("leader") == 1
