"""Tests for the partition transfer construction (experiment E4)."""

import pytest

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_transfer import (
    checked_transfer_spec,
    transfer_bound,
    transfer_spec,
)
from repro.core.theorem import max_agreement
from repro.errors import ImplementabilityError
from repro.runtime.explorer import explore_executions
from repro.runtime.scheduler import RandomScheduler
from repro.tasks import KSetConsensusTask, check_task_random_schedules


def letters(count):
    return [chr(ord("a") + i) for i in range(count)]


class TestTransferBound:
    @pytest.mark.parametrize(
        "m,j,total", [(2, 1, 6), (3, 2, 7), (3, 1, 5), (4, 2, 9), (5, 2, 11)]
    )
    def test_bound_equals_theorem(self, m, j, total):
        assert transfer_bound(m, j, total) == max_agreement(total, m, j)


class TestProtocolRespectsBound:
    @pytest.mark.parametrize(
        "m,j,total", [(2, 1, 4), (3, 2, 5), (3, 1, 4), (4, 2, 6)]
    )
    def test_randomized(self, m, j, total):
        inputs = letters(total)
        spec = transfer_spec(m, j, inputs)
        task = KSetConsensusTask(transfer_bound(m, j, total))
        report = check_task_random_schedules(
            spec, task, inputs_dict(inputs), seeds=range(150)
        )
        assert report.ok, report.reason

    def test_exhaustive_small(self):
        """(2,1) objects, 3 processes: every schedule and nondet choice
        yields at most 2 = 1*1 + min(1,1) distinct decisions."""
        inputs = letters(3)
        spec = transfer_spec(2, 1, inputs)
        bound = transfer_bound(2, 1, 3)
        for execution in explore_executions(spec, max_depth=10):
            assert len(execution.distinct_outputs()) <= bound

    def test_bound_is_tight(self):
        """The adversary (schedule + object nondeterminism) can reach the
        bound: existence over the exhaustive tree."""
        inputs = letters(3)
        spec = transfer_spec(2, 1, inputs)
        bound = transfer_bound(2, 1, 3)
        worst = max(
            len(e.distinct_outputs()) for e in explore_executions(spec, max_depth=10)
        )
        assert worst == bound


class TestCheckedTransfer:
    def test_permitted_construction(self):
        spec = checked_transfer_spec(6, 3, 2, 1, letters(6))
        execution = spec.run(RandomScheduler(0))
        assert len(execution.distinct_outputs()) <= 3

    def test_forbidden_construction_rejected(self):
        """(6, 2) from (2, 1) contradicts the theorem: refuse to build."""
        with pytest.raises(ImplementabilityError, match="not implementable"):
            checked_transfer_spec(6, 2, 2, 1, letters(6))

    def test_participant_budget(self):
        with pytest.raises(ValueError):
            checked_transfer_spec(3, 2, 2, 1, letters(4))
