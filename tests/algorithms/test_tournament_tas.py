"""Tests for the doorway+tournament one-shot TAS — Common2's positive
half, model-checked linearizable."""

import pytest

from repro.algorithms.tournament_tas import (
    LOSE,
    WIN,
    tournament_spec,
)
from repro.analysis.linearizability import is_linearizable
from repro.objects.rmw import TestAndSetSpec
from repro.runtime.explorer import explore_executions
from repro.runtime.history import history_from_execution
from repro.runtime.scheduler import RandomScheduler, SoloScheduler


class TestWinnerUniqueness:
    @pytest.mark.parametrize("n", [2, 3])
    def test_exactly_one_winner_all_schedules(self, n):
        spec = tournament_spec(n)
        for execution in explore_executions(spec, max_depth=30):
            outcomes = list(execution.outputs.values())
            assert outcomes.count(WIN) == 1
            assert outcomes.count(LOSE) == n - 1

    @pytest.mark.parametrize("n", [4, 5, 8])
    def test_exactly_one_winner_randomized(self, n):
        spec = tournament_spec(n)
        for seed in range(80):
            execution = spec.run(RandomScheduler(seed))
            outcomes = list(execution.outputs.values())
            assert outcomes.count(WIN) == 1

    def test_solo_participant_wins(self):
        spec = tournament_spec(4, participants=[2])
        execution = spec.run(RandomScheduler(0))
        assert execution.outputs[0] == WIN

    def test_sequential_first_wins(self):
        spec = tournament_spec(4)
        execution = spec.run(SoloScheduler([3, 0, 1, 2]))
        assert execution.outputs[3] == WIN
        assert all(execution.outputs[p] == LOSE for p in (0, 1, 2))


class TestLinearizability:
    @pytest.mark.parametrize("n", [2, 3])
    def test_exhaustive(self, n):
        """Every schedule's history embeds into first-wins order — the
        doorway at work (a bare tournament fails this)."""
        spec = tournament_spec(n)
        reference = TestAndSetSpec()
        checked = 0
        for execution in explore_executions(spec, max_depth=30):
            history = history_from_execution(execution)
            assert is_linearizable(history, reference), execution.render()
            checked += 1
        assert checked >= 16  # the whole (n-dependent) schedule space ran

    @pytest.mark.parametrize("seed", range(40))
    def test_randomized_five_leaves(self, seed):
        spec = tournament_spec(5)
        execution = spec.run(RandomScheduler(seed))
        history = history_from_execution(execution)
        assert is_linearizable(history, TestAndSetSpec())

    def test_late_starter_always_loses(self):
        """Whoever begins after any invocation completed returns LOSE —
        the real-time property the doorway buys."""
        spec = tournament_spec(3)
        for execution in explore_executions(spec, max_depth=30):
            history = history_from_execution(execution)
            events = sorted(history.complete, key=lambda e: e.invoked_at)
            for later in events:
                for earlier in events:
                    if earlier.precedes(later):
                        assert later.response == LOSE


class TestValidation:
    def test_minimum_size(self):
        with pytest.raises(ValueError):
            tournament_spec(1)

    def test_bad_leaf(self):
        with pytest.raises(ValueError):
            tournament_spec(2, participants=[5])

    def test_duplicate_leaves(self):
        with pytest.raises(ValueError):
            tournament_spec(4, participants=[1, 1])

    def test_budget_never_exceeded(self):
        """No 2-consensus node ever sees a third proposal, under any
        schedule (the subtree-winners argument, checked)."""
        spec = tournament_spec(4)
        for seed in range(60):
            execution = tournament_spec(4).run(RandomScheduler(seed))
            proposals = {}
            for step in execution.steps:
                if step.operation.method == "propose":
                    target = step.operation.target
                    proposals[target] = proposals.get(target, 0) + 1
            assert all(count <= 2 for count in proposals.values())
