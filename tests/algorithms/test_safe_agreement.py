"""Tests for safe agreement (experiment E7), including the unsafe-section
crash semantics that power the BG simulation."""

import pytest

from repro.algorithms.safe_agreement import consensus_spec
from repro.runtime.explorer import explore_executions
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import (
    CrashingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


class TestAgreementAndValidity:
    def test_exhaustive_two_processes_bounded(self):
        """Safe agreement is *not* wait-free (the adversary can park one
        process at level 1 and make the other spin), so the execution
        tree is infinite; explore it to a depth bound and verify
        agreement/validity on whatever decisions each branch produced —
        agreement is a prefix-closed property."""
        from repro.runtime.explorer import Explorer

        spec = consensus_spec(2, ["a", "b"])
        explorer = Explorer(spec, max_depth=25, strict=False)
        checked = completed = 0
        for execution in explorer.executions():
            decisions = set(execution.outputs.values())
            assert len(decisions) <= 1
            assert decisions <= {"a", "b"}
            checked += 1
            if execution.all_done():
                completed += 1
        assert checked > 100
        assert completed > 10  # plenty of branches do terminate

    @pytest.mark.parametrize("seed", range(40))
    def test_randomized_three_processes(self, seed):
        spec = consensus_spec(3, ["a", "b", "c"])
        execution = spec.run(RandomScheduler(seed), max_steps=5000)
        assert execution.all_done()
        decisions = set(execution.outputs.values())
        assert len(decisions) == 1
        assert decisions <= {"a", "b", "c"}

    def test_solo_run_decides_own_value(self):
        spec = consensus_spec(3, ["only"])
        execution = spec.run(RoundRobinScheduler(), max_steps=1000)
        assert execution.outputs[0] == "only"


class TestCrashSemantics:
    def test_crash_outside_unsafe_section_harmless(self):
        """A participant crashed before its first step does not block the
        others."""
        spec = consensus_spec(3, ["a", "b", "c"])
        scheduler = CrashingScheduler(RoundRobinScheduler(), crash_at={2: 0})
        execution = spec.run(scheduler, max_steps=5000)
        assert execution.statuses[2] is ProcessStatus.CRASHED
        assert execution.statuses[0] is ProcessStatus.DONE
        assert execution.statuses[1] is ProcessStatus.DONE
        assert len({execution.outputs[0], execution.outputs[1]}) == 1

    def test_crash_inside_unsafe_section_blocks(self):
        """A participant crashed between announcing (level 1) and settling
        blocks the instance: survivors spin forever — the documented
        unsafe window."""
        spec = consensus_spec(2, ["a", "b"])
        # p0's first step is the level-1 update; crash immediately after.
        scheduler = CrashingScheduler(RoundRobinScheduler(), crash_at={0: 2})
        execution = spec.run(scheduler, max_steps=500)
        assert execution.statuses[0] is ProcessStatus.CRASHED
        # p1 never terminates: it keeps scanning a level-1 ghost.
        assert execution.statuses[1] is ProcessStatus.POISED
        assert 1 not in execution.outputs

    def test_crash_after_settling_is_harmless(self):
        """Crashing after the level-2 update leaves a decidable instance."""
        spec = consensus_spec(2, ["a", "b"])
        # p0 runs solo through announce (update, scan, update = 3 steps),
        # then crashes; p1 must still decide p0's value or its own
        # consistently.
        scheduler = CrashingScheduler(RoundRobinScheduler(), crash_at={0: 6})
        execution = spec.run(scheduler, max_steps=2000)
        assert execution.statuses[1] is ProcessStatus.DONE
