"""Unit tests for sticky bits and sticky registers."""

import pytest

from repro.errors import IllegalOperationError
from repro.objects.sticky import UNSET, StickyBitSpec, StickyRegisterSpec
from repro.runtime.explorer import explore_executions
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


class TestStickyBit:
    def test_first_set_sticks(self):
        spec = StickyBitSpec()
        response, state = spec.apply_one(UNSET, "set", (1,))
        assert response == 1 and state == 1

    def test_second_set_ignored(self):
        spec = StickyBitSpec()
        response, state = spec.apply_one(0, "set", (1,))
        assert response == 0 and state == 0

    def test_read_unset(self):
        assert StickyBitSpec().apply_one(UNSET, "read", ())[0] == UNSET

    def test_non_bit_rejected(self):
        with pytest.raises(IllegalOperationError):
            StickyBitSpec().apply_one(UNSET, "set", (2,))


class TestStickyRegister:
    def test_first_proposal_sticks(self):
        spec = StickyRegisterSpec()
        response, state = spec.apply_one(UNSET, "propose", ("v",))
        assert response == "v" and state == "v"

    def test_later_proposals_get_first(self):
        spec = StickyRegisterSpec()
        response, state = spec.apply_one("first", "propose", ("other",))
        assert response == "first" and state == "first"

    def test_none_rejected(self):
        with pytest.raises(IllegalOperationError):
            StickyRegisterSpec().apply_one(UNSET, "propose", (None,))

    def test_unbounded_consensus(self):
        """Five processes agree in every schedule — consensus number
        infinity in action (contrast NConsensusSpec's budget)."""

        def program(pid, value):
            def run():
                decision = yield invoke("s", "propose", value)
                return decision

            return run

        def make(pid):
            return program(pid, f"v{pid}")

        spec = SystemSpec(
            {"s": StickyRegisterSpec()}, [make(p) for p in range(5)]
        )
        for execution in explore_executions(spec):
            assert len(set(execution.outputs.values())) == 1
