"""Unit tests for the atomic snapshot object spec."""

import pytest

from repro.errors import IllegalOperationError
from repro.objects.snapshot import AtomicSnapshotSpec


class TestAtomicSnapshot:
    def test_initial_segments(self):
        assert AtomicSnapshotSpec(3).initial_state() == (None, None, None)
        assert AtomicSnapshotSpec(2, initial=0).initial_state() == (0, 0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            AtomicSnapshotSpec(0)

    def test_update_sets_segment(self):
        spec = AtomicSnapshotSpec(3)
        _r, state = spec.apply_one(spec.initial_state(), "update", (1, "v"))
        assert state == (None, "v", None)

    def test_scan_returns_whole_state(self):
        spec = AtomicSnapshotSpec(2)
        response, state = spec.apply_one(("a", "b"), "scan", ())
        assert response == ("a", "b")
        assert state == ("a", "b")

    def test_update_out_of_range(self):
        spec = AtomicSnapshotSpec(2)
        with pytest.raises(IllegalOperationError):
            spec.apply_one(spec.initial_state(), "update", (2, "v"))

    def test_scan_after_updates_is_instantaneous(self):
        spec = AtomicSnapshotSpec(2)
        state = spec.initial_state()
        _r, state = spec.apply_one(state, "update", (0, 1))
        _r, state = spec.apply_one(state, "update", (1, 2))
        assert spec.apply_one(state, "scan", ())[0] == (1, 2)

    def test_consensus_number_is_one(self):
        from repro.core.consensus_number import consensus_number_of

        assert consensus_number_of(AtomicSnapshotSpec(4)) == 1
