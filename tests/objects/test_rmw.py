"""Unit tests for read-modify-write primitives, including their classical
consensus-power demonstrations."""

from repro.objects.rmw import (
    CompareAndSwapSpec,
    FetchAndAddSpec,
    SwapSpec,
    TestAndSetSpec,
)
from repro.runtime.explorer import explore_executions
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


class TestTestAndSet:
    def test_first_caller_wins(self):
        spec = TestAndSetSpec()
        response, state = spec.apply_one(0, "test_and_set", ())
        assert response == 0 and state == 1

    def test_later_callers_lose(self):
        spec = TestAndSetSpec()
        response, state = spec.apply_one(1, "test_and_set", ())
        assert response == 1 and state == 1

    def test_reset(self):
        spec = TestAndSetSpec()
        _r, state = spec.apply_one(1, "reset", ())
        assert state == 0

    def test_exactly_one_winner_all_schedules(self):
        def program(pid):
            def run():
                lost = yield invoke("t", "test_and_set")
                return "win" if lost == 0 else "lose"

            return run

        spec = SystemSpec({"t": TestAndSetSpec()}, [program(p) for p in range(3)])
        for execution in explore_executions(spec):
            wins = [v for v in execution.outputs.values() if v == "win"]
            assert len(wins) == 1

    def test_two_process_consensus_via_tas(self):
        """The classical construction: write own value, TAS, winner's
        value decided — agreement over every schedule."""

        def program(pid, value):
            def run():
                yield invoke(f"v{pid}", "write", value)
                lost = yield invoke("t", "test_and_set")
                if lost == 0:
                    return value
                other = yield invoke(f"v{1 - pid}", "read")
                return other

            return run

        from repro.objects.register import RegisterSpec

        spec = SystemSpec(
            {
                "t": TestAndSetSpec(),
                "v0": RegisterSpec(),
                "v1": RegisterSpec(),
            },
            [program(0, "a"), program(1, "b")],
        )
        for execution in explore_executions(spec):
            decisions = set(execution.outputs.values())
            assert len(decisions) == 1
            assert decisions <= {"a", "b"}


class TestSwap:
    def test_returns_previous_value(self):
        spec = SwapSpec(initial="init")
        response, state = spec.apply_one("init", "swap", ("new",))
        assert response == "init" and state == "new"

    def test_chain_of_swaps(self):
        spec = SwapSpec()
        state = spec.initial_state()
        seen = []
        for value in ("a", "b", "c"):
            response, state = spec.apply_one(state, "swap", (value,))
            seen.append(response)
        assert seen == [None, "a", "b"]

    def test_exactly_one_none_receiver(self):
        """Among concurrent swappers, exactly one gets the initial None —
        the 2-consensus kernel of swap."""

        def program(pid):
            def run():
                prev = yield invoke("s", "swap", pid)
                return prev

            return run

        spec = SystemSpec({"s": SwapSpec()}, [program(p) for p in range(3)])
        for execution in explore_executions(spec):
            nones = [v for v in execution.outputs.values() if v is None]
            assert len(nones) == 1


class TestFetchAndAdd:
    def test_returns_old_value(self):
        spec = FetchAndAddSpec()
        response, state = spec.apply_one(5, "fetch_and_add", (3,))
        assert response == 5 and state == 8

    def test_default_delta(self):
        spec = FetchAndAddSpec()
        response, state = spec.apply_one(0, "fetch_and_add", ())
        assert response == 0 and state == 1

    def test_distinct_tickets_all_schedules(self):
        def program(pid):
            def run():
                ticket = yield invoke("f", "fetch_and_add")
                return ticket

            return run

        spec = SystemSpec({"f": FetchAndAddSpec()}, [program(p) for p in range(3)])
        for execution in explore_executions(spec):
            tickets = list(execution.outputs.values())
            assert sorted(tickets) == [0, 1, 2]


class TestCompareAndSwap:
    def test_success_installs(self):
        spec = CompareAndSwapSpec()
        response, state = spec.apply_one(None, "compare_and_swap", (None, "x"))
        assert response is None and state == "x"

    def test_failure_leaves_state(self):
        spec = CompareAndSwapSpec()
        response, state = spec.apply_one("y", "compare_and_swap", (None, "x"))
        assert response == "y" and state == "y"

    def test_n_process_consensus(self):
        """CAS solves consensus for any number of processes (consensus
        number infinity): everyone CASes from None, decides the winner."""

        def program(pid, value):
            def run():
                seen = yield invoke("c", "compare_and_swap", None, value)
                return value if seen is None else seen

            return run

        def make(pid, value):
            return program(pid, value)

        spec = SystemSpec(
            {"c": CompareAndSwapSpec()},
            [make(p, f"v{p}") for p in range(4)],
        )
        for execution in explore_executions(spec):
            assert len(set(execution.outputs.values())) == 1
