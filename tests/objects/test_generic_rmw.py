"""Tests for generic RMW objects and their classification."""

import pytest

from repro.analysis.commutativity import commute_or_overwrite_certificate
from repro.errors import IllegalOperationError
from repro.objects.generic_rmw import (
    GenericRMWSpec,
    commuting_family,
    mixed_family,
    overwriting_family,
)
from repro.runtime.explorer import explore_executions
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


class TestSpec:
    def test_rmw_returns_old_value(self):
        spec = commuting_family(1)
        response, state = spec.apply_one(5, "rmw", ("add_1",))
        assert response == 5 and state == 6

    def test_unknown_function_rejected(self):
        with pytest.raises(IllegalOperationError, match="unknown RMW"):
            commuting_family(1).apply_one(0, "rmw", ("mul_2",))

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            GenericRMWSpec({})

    def test_read(self):
        assert overwriting_family(3).apply_one("x", "read", ())[0] == "x"

    def test_overwriting_semantics(self):
        spec = overwriting_family(3, 7)
        _r, state = spec.apply_one(None, "rmw", ("set_3",))
        _r, state = spec.apply_one(state, "rmw", ("set_7",))
        assert state == 7


class TestClassification:
    def test_commuting_family_passes_truncated_pair_analysis(self):
        """add_c functions commute pairwise: every witness-free region —
        but note the *responses* still break symmetry, so the certificate
        correctly refuses to certify consensus number 1."""
        spec = commuting_family(1, 2)
        report = commute_or_overwrite_certificate(
            spec,
            [("rmw", ("add_1",)), ("rmw", ("add_2",)), ("read", ())],
            max_states=50,
            truncate=True,
        )
        # Non-trivial RMW has consensus number >= 2: certificate fails.
        assert not report.certified

    def test_overwriting_family_not_certified(self):
        spec = overwriting_family(3, 7)
        report = commute_or_overwrite_certificate(
            spec, [("rmw", ("set_3",)), ("rmw", ("set_7",)), ("read", ())]
        )
        assert not report.certified

    def test_identity_only_family_certified(self):
        """The degenerate family {identity} is just a register read —
        consensus number 1, certified."""
        spec = GenericRMWSpec({"noop": lambda x: x}, initial=0)
        report = commute_or_overwrite_certificate(
            spec, [("rmw", ("noop",)), ("read", ())]
        )
        assert report.certified

    def test_two_process_consensus_from_nontrivial_rmw(self):
        """The constructive side of 'non-trivial RMW has consensus
        number >= 2', over every schedule."""
        from repro.objects.register import RegisterSpec

        def program(pid, value):
            yield invoke(f"v{pid}", "write", value)
            old = yield invoke("rmw", "rmw", "add_1")
            if old == 0:  # first applier
                return value
            other = yield invoke(f"v{1 - pid}", "read")
            return other

        def make(pid, value):
            return lambda: program(pid, value)

        spec = SystemSpec(
            {
                "rmw": commuting_family(1),
                "v0": RegisterSpec(),
                "v1": RegisterSpec(),
            },
            [make(0, "a"), make(1, "b")],
        )
        for execution in explore_executions(spec, max_depth=10):
            decisions = set(execution.outputs.values())
            assert len(decisions) == 1 and decisions <= {"a", "b"}


class TestFactories:
    def test_mixed_family_runs(self):
        spec = mixed_family()
        _r, state = spec.apply_one(1, "rmw", ("double",))
        assert state == 2

    def test_registered_consensus_number(self):
        from repro.core.consensus_number import consensus_number_of

        assert consensus_number_of(commuting_family(1)) == 2
