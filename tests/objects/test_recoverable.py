"""Unit tests for recoverable object variants: caller-keyed TAS and the
persistent register baseline."""

from repro.objects.base import ObjectSpec
from repro.objects.recoverable import (
    PersistentRegisterSpec,
    RecoverableTestAndSetSpec,
)
from repro.objects.register import RegisterSpec
from repro.objects.rmw import TestAndSetSpec
from repro.runtime.execution import CRASH_CHOICE, RECOVER_CHOICE
from repro.runtime.explorer import Explorer
from repro.runtime.ops import invoke
from repro.runtime.scheduler import ScriptedScheduler
from repro.runtime.system import SystemSpec


class TestRecoverableTestAndSet:
    def test_first_caller_wins_and_is_recorded(self):
        spec = RecoverableTestAndSetSpec()
        response, state = spec.apply_one(None, "test_and_set", (3,))
        assert response == 0 and state == 3

    def test_other_callers_lose(self):
        spec = RecoverableTestAndSetSpec()
        response, state = spec.apply_one(3, "test_and_set", (7,))
        assert response == 1 and state == 3

    def test_winner_rewins_idempotently(self):
        """The amnesia contract: the recorded winner sees 0 on every
        retry, so a revenant re-learns its own victory."""
        spec = RecoverableTestAndSetSpec()
        response, state = spec.apply_one(3, "test_and_set", (3,))
        assert response == 0 and state == 3

    def test_read_exposes_plain_bit_and_winner_the_pid(self):
        spec = RecoverableTestAndSetSpec()
        assert spec.apply_one(None, "read", ()) == (0, None)
        assert spec.apply_one(4, "read", ()) == (1, 4)
        assert spec.apply_one(4, "winner", ()) == (4, 4)
        assert spec.apply_one(None, "winner", ()) == (None, None)

    def test_recoverable_flag(self):
        assert RecoverableTestAndSetSpec.recoverable
        assert PersistentRegisterSpec.recoverable
        assert not TestAndSetSpec.recoverable
        assert not RegisterSpec.recoverable
        # Default contract on the base class: crash-stop only.
        assert ObjectSpec.recoverable is False

    def test_exactly_one_perceived_winner_under_crash_recovery(self):
        """Exhaustively: with one crash and one revival allowed, the set
        of processes that ever observed a win has size exactly one —
        the separation that plain TAS fails (E11)."""

        def program(pid):
            def run():
                lost = yield invoke("t", "test_and_set", pid)
                return "W" if lost == 0 else "l"

            return run

        spec = SystemSpec(
            {"t": RecoverableTestAndSetSpec()},
            [program(p) for p in range(2)],
        )
        explorer = Explorer(spec, max_crashes=1, max_recoveries=1)
        for execution in explorer.executions():
            if not execution.all_done():
                continue
            assert list(execution.outputs.values()).count("W") == 1
        assert explorer.stats.recoveries_injected > 0


class TestPersistentRegister:
    def test_read_write(self):
        spec = PersistentRegisterSpec()
        assert spec.initial_state() is None
        response, state = spec.apply_one(None, "write", ("x",))
        assert response is None and state == "x"
        assert spec.apply_one("x", "read", ()) == ("x", "x")

    def test_initial_value(self):
        assert PersistentRegisterSpec(initial=9).initial_state() == 9

    def test_state_survives_writer_crash_recovery(self):
        def program(pid):
            def run():
                yield invoke("r", "write", pid)
                seen = yield invoke("r", "read")
                return seen

            return run

        spec = SystemSpec(
            {"r": PersistentRegisterSpec()}, [program(0), program(1)]
        )
        script = [
            (0, 0),               # p0 writes 0
            (0, CRASH_CHOICE),
            (1, 0),               # p1 overwrites with 1
            (0, RECOVER_CHOICE),
            (0, 0), (0, 0),       # reborn p0: write 0, read 0
            (1, 0),               # p1 reads 0
        ]
        execution = spec.run(ScriptedScheduler(script))
        assert execution.outputs == {0: 0, 1: 0}
        assert execution.recovered_pids() == [0]
