"""Unit tests for counters and doorways, including the flag principle."""

import itertools

from repro.objects.counter import CounterSpec, DoorwaySpec
from repro.objects.register import RegisterSpec
from repro.runtime.explorer import explore_executions
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


class TestCounter:
    def test_initial(self):
        assert CounterSpec().initial_state() == 0
        assert CounterSpec(initial=5).initial_state() == 5

    def test_inc(self):
        spec = CounterSpec()
        response, state = spec.apply_one(0, "inc", ())
        assert response is None and state == 1

    def test_read(self):
        assert CounterSpec().apply_one(3, "read", ())[0] == 3

    def test_inc_read_are_separate_steps(self):
        # No fetch-and-add style combined op: that would be consensus
        # number 2, and the flag principle relies on the split.
        assert "fetch_and_add" not in CounterSpec().methods()


class TestFlagPrinciple:
    def test_at_most_one_process_reads_one(self):
        """Exhaustively: over all schedules of three inc-then-read
        processes, at most one reads exactly 1 — the flag principle."""

        def program(pid):
            def run():
                yield invoke("c", "inc")
                seen = yield invoke("c", "read")
                return seen

            return run

        spec = SystemSpec({"c": CounterSpec()}, [program(p) for p in range(3)])
        for execution in explore_executions(spec):
            winners = [v for v in execution.outputs.values() if v == 1]
            assert len(winners) <= 1

    def test_solo_process_reads_one(self):
        def run():
            yield invoke("c", "inc")
            seen = yield invoke("c", "read")
            return seen

        spec = SystemSpec({"c": CounterSpec()}, [run])
        executions = list(explore_executions(spec))
        assert executions[0].outputs[0] == 1


class TestDoorway:
    def test_initially_open(self):
        spec = DoorwaySpec()
        assert spec.initial_state() == DoorwaySpec.OPEN

    def test_close_is_idempotent(self):
        spec = DoorwaySpec()
        _r, state = spec.apply_one(DoorwaySpec.OPEN, "close", ())
        _r, state = spec.apply_one(state, "close", ())
        assert state == DoorwaySpec.CLOSED

    def test_entrants_after_a_completed_entry_are_excluded(self):
        """Whoever reads after some process finished read+close sees
        closed — for every schedule."""

        def program(pid):
            def run():
                status = yield invoke("d", "read")
                yield invoke("d", "close")
                return status

            return run

        spec = SystemSpec({"d": DoorwaySpec()}, [program(p) for p in range(3)])
        for execution in explore_executions(spec):
            # Identify, per process, when it read and when it closed.
            read_at = {}
            closed_at = {}
            for step in execution.steps:
                if step.operation.method == "read":
                    read_at[step.pid] = step.index
                else:
                    closed_at[step.pid] = step.index
            for late in range(3):
                for early in range(3):
                    if early != late and closed_at[early] < read_at[late]:
                        assert execution.outputs[late] == DoorwaySpec.CLOSED

    def test_someone_enters(self):
        """In every schedule at least one process enters (reads open)."""

        def program(pid):
            def run():
                status = yield invoke("d", "read")
                yield invoke("d", "close")
                return status

            return run

        spec = SystemSpec({"d": DoorwaySpec()}, [program(p) for p in range(2)])
        for execution in explore_executions(spec):
            assert DoorwaySpec.OPEN in execution.outputs.values()
