"""Unit tests for the nondeterministic (m, j)-set-consensus object."""

import pytest

from repro.errors import IllegalOperationError
from repro.objects.set_consensus import SetConsensusSpec
from repro.runtime.explorer import explore_executions
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


class TestSequentialSpec:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SetConsensusSpec(2, 0)
        with pytest.raises(ValueError):
            SetConsensusSpec(2, 3)

    def test_first_proposal_deterministic(self):
        spec = SetConsensusSpec(3, 2)
        outcomes = spec.apply(spec.initial_state(), "propose", ("a",))
        assert outcomes == [("a", (frozenset({"a"}), 1))]

    def test_second_proposal_branches(self):
        spec = SetConsensusSpec(3, 2)
        _r, state = spec.apply(spec.initial_state(), "propose", ("a",))[0]
        outcomes = spec.apply(state, "propose", ("b",))
        responses = {r for r, _s in outcomes}
        adopted_sets = {s[0] for _r, s in outcomes}
        assert responses == {"a", "b"}
        assert frozenset({"a"}) in adopted_sets
        assert frozenset({"a", "b"}) in adopted_sets

    def test_adopted_set_capped_at_j(self):
        spec = SetConsensusSpec(4, 2)
        state = spec.initial_state()
        _r, state = spec.apply(state, "propose", ("a",))[0]
        # Choose the branch that adds "b".
        outcomes = spec.apply(state, "propose", ("b",))
        state = next(s for _r, s in outcomes if len(s[0]) == 2)
        # Third value may not be added: set already has j = 2 elements.
        outcomes = spec.apply(state, "propose", ("c",))
        for _response, (adopted, _count) in outcomes:
            assert len(adopted) == 2
            assert "c" not in adopted

    def test_responses_come_from_adopted_set(self):
        spec = SetConsensusSpec(4, 2)
        state = (frozenset({"a", "b"}), 2)
        outcomes = spec.apply(state, "propose", ("c",))
        assert {r for r, _s in outcomes} <= {"a", "b"}

    def test_budget_enforced(self):
        spec = SetConsensusSpec(2, 1)
        state = (frozenset({"a"}), 2)
        with pytest.raises(IllegalOperationError, match="exhausted"):
            spec.apply(state, "propose", ("b",))

    def test_none_rejected(self):
        spec = SetConsensusSpec(2, 1)
        with pytest.raises(IllegalOperationError):
            spec.apply(spec.initial_state(), "propose", (None,))

    def test_outcome_order_is_deterministic(self):
        spec = SetConsensusSpec(3, 2)
        _r, state = spec.apply(spec.initial_state(), "propose", ("a",))[0]
        first = spec.apply(state, "propose", ("b",))
        second = spec.apply(state, "propose", ("b",))
        assert first == second

    def test_read_count_helper(self):
        spec = SetConsensusSpec(3, 2)
        assert spec.apply((frozenset({"a"}), 2), "read_count", ())[0][0] == 2


class TestTaskPower:
    def test_j_agreement_all_schedules_all_choices(self):
        """(3, 2)-set consensus: over every schedule and every
        nondeterministic resolution, at most 2 distinct decisions."""

        def program(pid, value):
            def run():
                decision = yield invoke("sc", "propose", value)
                return decision

            return run

        def make(pid):
            return program(pid, f"v{pid}")

        spec = SystemSpec({"sc": SetConsensusSpec(3, 2)}, [make(p) for p in range(3)])
        worst = 0
        for execution in explore_executions(spec):
            decisions = set(execution.outputs.values())
            assert decisions <= {"v0", "v1", "v2"}
            worst = max(worst, len(decisions))
        assert worst == 2  # the bound is tight

    def test_j1_is_consensus(self):
        def program(pid, value):
            def run():
                decision = yield invoke("sc", "propose", value)
                return decision

            return run

        def make(pid):
            return program(pid, f"v{pid}")

        spec = SystemSpec({"sc": SetConsensusSpec(3, 1)}, [make(p) for p in range(3)])
        for execution in explore_executions(spec):
            assert len(set(execution.outputs.values())) == 1
