"""Unit tests for registers and register arrays."""

import pytest

from repro.errors import IllegalOperationError
from repro.objects.register import ArraySpec, RegisterSpec


class TestRegister:
    def test_initial_value(self):
        assert RegisterSpec().initial_state() is None
        assert RegisterSpec(initial=7).initial_state() == 7

    def test_read_returns_state(self):
        spec = RegisterSpec(initial="v")
        response, state = spec.apply_one("v", "read", ())
        assert response == "v" and state == "v"

    def test_write_replaces_state(self):
        spec = RegisterSpec()
        response, state = spec.apply_one("old", "write", ("new",))
        assert response is None and state == "new"

    def test_last_write_wins(self):
        spec = RegisterSpec()
        _r, state = spec.apply_one(None, "write", ("a",))
        _r, state = spec.apply_one(state, "write", ("b",))
        assert spec.apply_one(state, "read", ())[0] == "b"

    def test_swmr_owner_may_write(self):
        spec = RegisterSpec(single_writer=3)
        _r, state = spec.apply_one(None, "write_by", (3, "x"))
        assert state == "x"

    def test_swmr_stranger_rejected(self):
        spec = RegisterSpec(single_writer=3)
        with pytest.raises(IllegalOperationError, match="owned by p3"):
            spec.apply_one(None, "write_by", (1, "x"))

    def test_swmr_plain_write_rejected(self):
        spec = RegisterSpec(single_writer=0)
        with pytest.raises(IllegalOperationError, match="write_by"):
            spec.apply_one(None, "write", ("x",))

    def test_mwmr_write_by_unchecked(self):
        spec = RegisterSpec()
        _r, state = spec.apply_one(None, "write_by", (9, "x"))
        assert state == "x"


class TestArray:
    def test_initial_state(self):
        assert ArraySpec(3).initial_state() == (None, None, None)
        assert ArraySpec(2, initial=0).initial_state() == (0, 0)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            ArraySpec(0)

    def test_write_read_cell(self):
        spec = ArraySpec(3)
        _r, state = spec.apply_one(spec.initial_state(), "write", (1, "v"))
        assert state == (None, "v", None)
        assert spec.apply_one(state, "read", (1,))[0] == "v"

    def test_writes_to_distinct_cells_independent(self):
        spec = ArraySpec(2)
        _r, state = spec.apply_one(spec.initial_state(), "write", (0, "a"))
        _r, state = spec.apply_one(state, "write", (1, "b"))
        assert state == ("a", "b")

    @pytest.mark.parametrize("index", [-1, 3, "x", 1.5])
    def test_bad_index_rejected(self, index):
        spec = ArraySpec(3)
        with pytest.raises(IllegalOperationError, match="out of range"):
            spec.apply_one(spec.initial_state(), "read", (index,))

    def test_read_all_disabled_by_default(self):
        spec = ArraySpec(2)
        with pytest.raises(IllegalOperationError, match="snapshot"):
            spec.apply_one(spec.initial_state(), "read_all", ())

    def test_read_all_opt_in(self):
        spec = ArraySpec(2, allow_read_all=True)
        response, _state = spec.apply_one(("a", "b"), "read_all", ())
        assert response == ("a", "b")
