"""Unit tests for queue and stack (the Common2 exemplars)."""

from repro.objects.queue_stack import EMPTY, QueueSpec, StackSpec
from repro.runtime.explorer import explore_executions
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


class TestQueue:
    def test_starts_empty(self):
        assert QueueSpec().initial_state() == ()

    def test_fifo_order(self):
        spec = QueueSpec()
        state = spec.initial_state()
        for value in ("a", "b", "c"):
            _r, state = spec.apply_one(state, "enqueue", (value,))
        seen = []
        for _ in range(3):
            response, state = spec.apply_one(state, "dequeue", ())
            seen.append(response)
        assert seen == ["a", "b", "c"]

    def test_dequeue_empty(self):
        assert QueueSpec().apply_one((), "dequeue", ())[0] == EMPTY

    def test_peek_does_not_remove(self):
        spec = QueueSpec()
        response, state = spec.apply_one(("a", "b"), "peek", ())
        assert response == "a" and state == ("a", "b")

    def test_two_process_consensus_via_queue(self):
        """Classical: pre-filled queue, first dequeuer wins."""
        from repro.objects.register import RegisterSpec

        def program(pid, value):
            def run():
                yield invoke(f"v{pid}", "write", value)
                token = yield invoke("q", "dequeue")
                if token == "winner":
                    return value
                other = yield invoke(f"v{1 - pid}", "read")
                return other

            return run

        class PrefilledQueue(QueueSpec):
            def initial_state(self):
                return ("winner", "loser")

        spec = SystemSpec(
            {"q": PrefilledQueue(), "v0": RegisterSpec(), "v1": RegisterSpec()},
            [program(0, "a"), program(1, "b")],
        )
        for execution in explore_executions(spec):
            decisions = set(execution.outputs.values())
            assert len(decisions) == 1 and decisions <= {"a", "b"}

    def test_concurrent_dequeues_get_distinct_items(self):
        class Prefilled(QueueSpec):
            def initial_state(self):
                return ("x", "y", "z")

        def program(pid):
            def run():
                item = yield invoke("q", "dequeue")
                return item

            return run

        spec = SystemSpec({"q": Prefilled()}, [program(p) for p in range(3)])
        for execution in explore_executions(spec):
            assert sorted(execution.outputs.values()) == ["x", "y", "z"]


class TestStack:
    def test_lifo_order(self):
        spec = StackSpec()
        state = spec.initial_state()
        for value in ("a", "b", "c"):
            _r, state = spec.apply_one(state, "push", (value,))
        seen = []
        for _ in range(3):
            response, state = spec.apply_one(state, "pop", ())
            seen.append(response)
        assert seen == ["c", "b", "a"]

    def test_pop_empty(self):
        assert StackSpec().apply_one((), "pop", ())[0] == EMPTY

    def test_top_does_not_remove(self):
        spec = StackSpec()
        response, state = spec.apply_one(("a", "b"), "top", ())
        assert response == "b" and state == ("a", "b")

    def test_push_pop_roundtrip(self):
        spec = StackSpec()
        _r, state = spec.apply_one((), "push", ("v",))
        response, state = spec.apply_one(state, "pop", ())
        assert response == "v" and state == ()
