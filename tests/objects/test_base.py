"""Unit tests for the object state-machine protocol."""

import pytest

from repro.errors import IllegalOperationError
from repro.objects.base import DeterministicObjectSpec, ObjectSpec
from repro.objects.register import RegisterSpec
from repro.objects.set_consensus import SetConsensusSpec


class TestDispatch:
    def test_unknown_method_rejected(self):
        spec = RegisterSpec()
        with pytest.raises(IllegalOperationError, match="no operation"):
            spec.apply(None, "frobnicate", ())

    def test_methods_lists_operations(self):
        assert "read" in RegisterSpec().methods()
        assert "write" in RegisterSpec().methods()

    def test_nondeterministic_methods_listed(self):
        assert "propose" in SetConsensusSpec(3, 2).methods()

    def test_deterministic_spec_single_outcome(self):
        spec = RegisterSpec()
        outcomes = spec.apply(None, "write", ("x",))
        assert len(outcomes) == 1

    def test_apply_one_on_deterministic(self):
        spec = RegisterSpec()
        response, state = spec.apply_one(None, "write", ("x",))
        assert response is None
        assert state == "x"

    def test_apply_one_rejects_branching(self):
        spec = SetConsensusSpec(3, 2)
        state = spec.initial_state()
        _resp, state = spec.apply_one(state, "propose", ("a",))  # first is det
        with pytest.raises(IllegalOperationError, match="nondeterministic"):
            spec.apply_one(state, "propose", ("b",))


class TestPurity:
    def test_apply_does_not_mutate_state(self):
        spec = SetConsensusSpec(3, 2)
        state = spec.initial_state()
        spec.apply(state, "propose", ("a",))
        assert state == spec.initial_state()

    def test_states_are_hashable(self):
        for spec in (RegisterSpec(), SetConsensusSpec(4, 2)):
            hash(spec.initial_state())

    def test_determinism_flags(self):
        assert RegisterSpec().deterministic
        assert not SetConsensusSpec(3, 2).deterministic


class TestCustomSpecs:
    def test_deterministic_base_wraps_single_outcome(self):
        class Toggle(DeterministicObjectSpec):
            def initial_state(self):
                return False

            def do_flip(self, state):
                return state, not state

        spec = Toggle()
        outcomes = spec.apply(False, "flip", ())
        assert outcomes == [(False, True)]

    def test_nondeterministic_base(self):
        class Coin(ObjectSpec):
            def initial_state(self):
                return None

            def op_toss(self, state):
                return [("heads", state), ("tails", state)]

        assert len(Coin().apply(None, "toss", ())) == 2
