"""Unit tests for the deterministic n-bounded consensus object."""

import pytest

from repro.errors import IllegalOperationError
from repro.objects.consensus_object import UNSET, NConsensusSpec
from repro.runtime.explorer import explore_executions
from repro.runtime.ops import invoke
from repro.runtime.process import ProcessStatus
from repro.runtime.system import SystemSpec


class TestSequentialSpec:
    def test_first_proposal_wins(self):
        spec = NConsensusSpec(3)
        response, state = spec.apply_one((UNSET, 0), "propose", ("a",))
        assert response == "a"
        assert state == ("a", 1)

    def test_later_proposals_adopt(self):
        spec = NConsensusSpec(3)
        response, state = spec.apply_one(("a", 1), "propose", ("b",))
        assert response == "a"
        assert state == ("a", 2)

    def test_budget_enforced(self):
        spec = NConsensusSpec(2)
        state = (UNSET, 0)
        _r, state = spec.apply_one(state, "propose", ("a",))
        _r, state = spec.apply_one(state, "propose", ("b",))
        with pytest.raises(IllegalOperationError, match="exhausted"):
            spec.apply_one(state, "propose", ("c",))

    def test_none_rejected(self):
        with pytest.raises(IllegalOperationError):
            NConsensusSpec(2).apply_one((UNSET, 0), "propose", (None,))

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            NConsensusSpec(0)

    def test_is_deterministic(self):
        assert NConsensusSpec(2).deterministic


class TestConsensusPower:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_n_processes_agree_in_all_schedules(self, n):
        def program(pid, value):
            def run():
                decision = yield invoke("c", "propose", value)
                return decision

            return run

        def make(pid):
            return program(pid, f"v{pid}")

        spec = SystemSpec({"c": NConsensusSpec(n)}, [make(p) for p in range(n)])
        for execution in explore_executions(spec):
            decisions = set(execution.outputs.values())
            assert len(decisions) == 1
            assert decisions <= {f"v{p}" for p in range(n)}

    def test_over_budget_process_hangs(self):
        """The (n+1)-st proposer is stuck — the naive protocol does not
        extend beyond n, as the consensus-number definition demands."""

        def program(pid, value):
            def run():
                decision = yield invoke("c", "propose", value)
                return decision

            return run

        def make(pid):
            return program(pid, f"v{pid}")

        spec = SystemSpec(
            {"c": NConsensusSpec(2, hang_on_misuse=True)},
            [make(p) for p in range(3)],
        )
        from repro.runtime.scheduler import RoundRobinScheduler

        execution = spec.run(RoundRobinScheduler())
        blocked = [
            pid
            for pid, status in execution.statuses.items()
            if status is ProcessStatus.BLOCKED
        ]
        assert len(blocked) == 1
        done = set(execution.outputs.values())
        assert len(done) == 1

    def test_known_consensus_number(self):
        from repro.core.consensus_number import consensus_number_of

        assert consensus_number_of(NConsensusSpec(7)) == 7
