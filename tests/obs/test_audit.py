"""Tests for the state-space audit (``repro.obs.audit``).

The audit must be (1) correct as a measurement — revisit accounting is
an identity, crash branches never alias crash-free configurations,
pair tallies are consistent; (2) deterministic — byte-identical renders
across runs; (3) inert — attaching an auditor never changes what the
explorer enumerates; and (4) surfaced everywhere the issue promises:
metrics gauges, ``/status``, HTML reports, the run ledger, and the CLI.
"""

import pytest

from repro.__main__ import main
from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.analysis.commutativity import (
    PAIR_COMMUTE,
    PAIR_SAME_PROCESS,
    PAIR_STATE_DIVERGES,
    PAIR_SWAP_ILLEGAL,
    classify_adjacent_pair,
)
from repro.obs import ledger
from repro.obs.audit import StateAuditor, render_table, run_audit
from repro.obs.live import StatusBoard
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_audit_html, render_html
from repro.runtime.explorer import Explorer

INPUTS3 = ["v0", "v1", "v2"]
INPUTS4 = ["v0", "v1", "v2", "v3"]


def small_spec(inputs=INPUTS3):
    return set_consensus_spec(2, 1, inputs)


class TestRevisitAccounting:
    def test_revisits_are_configurations_minus_distinct(self):
        auditor, _explorer = run_audit(
            small_spec(INPUTS4), max_depth=20, value_alphabet=INPUTS4
        )
        assert auditor.revisits == auditor.configurations - auditor.distinct_states
        assert auditor.revisits > 0  # N=4 genuinely revisits states
        assert 0.0 < auditor.revisit_ratio < 1.0

    def test_depth_rows_sum_to_totals(self):
        auditor, _explorer = run_audit(small_spec(INPUTS4), max_depth=20)
        rows = auditor.depth_rows()
        assert sum(visits for _d, visits, _r, _ratio in rows) == (
            auditor.configurations
        )
        assert sum(revisits for _d, _v, revisits, _ratio in rows) == (
            auditor.revisits
        )
        assert [row[0] for row in rows] == sorted(row[0] for row in rows)

    def test_orbit_quotient_never_exceeds_states(self):
        auditor, _explorer = run_audit(
            small_spec(INPUTS4), max_depth=20, value_alphabet=INPUTS4
        )
        assert 0 < auditor.distinct_orbits <= auditor.distinct_states
        assert 0.0 <= auditor.orbit_savings < 1.0


class TestDeterminism:
    def test_two_audits_render_byte_identical(self):
        first, _ = run_audit(
            small_spec(INPUTS4), max_depth=20, value_alphabet=INPUTS4
        )
        second, _ = run_audit(
            small_spec(INPUTS4), max_depth=20, value_alphabet=INPUTS4
        )
        assert first.summary() == second.summary()
        assert render_table(first, "x") == render_table(second, "x")
        assert render_audit_html(first) == render_audit_html(second)


class _CrashRecorder(StateAuditor):
    """Auditor that also records whether each fingerprint came from a
    configuration with a crashed process."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.by_crash = {}

    def observe_configuration(self, system, depth):
        super().observe_configuration(system, depth)
        from repro.obs.fingerprint import configuration_fingerprint

        crashed = any(
            process.status.value == "crashed" for process in system.processes
        )
        self.by_crash.setdefault(
            configuration_fingerprint(system), set()
        ).add(crashed)


class TestCrashFingerprints:
    def test_crashed_and_live_configurations_never_collide(self):
        auditor = _CrashRecorder(max_pairs=0)
        explorer = Explorer(
            small_spec(INPUTS3), max_depth=20, max_crashes=1, auditor=auditor
        )
        for _execution in explorer.executions():
            pass
        assert any(True in kinds for kinds in auditor.by_crash.values())
        assert any(False in kinds for kinds in auditor.by_crash.values())
        colliding = [
            fp for fp, kinds in auditor.by_crash.items() if len(kinds) > 1
        ]
        assert not colliding, (
            "crash decisions must be part of the fingerprint; colliding: "
            f"{colliding}"
        )


class TestExplorationUnchanged:
    def test_same_executions_with_and_without_auditor(self):
        plain = [
            execution.full_decisions
            for execution in Explorer(
                small_spec(INPUTS3), max_depth=20, max_crashes=1
            ).executions()
        ]
        audited_auditor = StateAuditor()
        audited = [
            execution.full_decisions
            for execution in Explorer(
                small_spec(INPUTS3),
                max_depth=20,
                max_crashes=1,
                auditor=audited_auditor,
            ).executions()
        ]
        assert plain == audited
        assert audited_auditor.executions == len(plain)


class TestPairClassification:
    def test_same_process_pairs_are_filtered(self):
        spec = small_spec(INPUTS3)
        execution = next(iter(Explorer(spec, max_depth=20).executions()))
        decisions = execution.full_decisions
        doubled = [decisions[0], decisions[0]] + decisions[1:]
        assert (
            classify_adjacent_pair(spec, doubled, 0) == PAIR_SAME_PROCESS
        )

    def test_cross_process_pairs_get_a_known_class(self):
        spec = small_spec(INPUTS3)
        execution = next(iter(Explorer(spec, max_depth=20).executions()))
        decisions = execution.full_decisions
        index = next(
            i
            for i in range(len(decisions) - 1)
            if decisions[i][0] != decisions[i + 1][0]
        )
        assert classify_adjacent_pair(spec, decisions, index) in {
            PAIR_COMMUTE,
            PAIR_STATE_DIVERGES,
            PAIR_SWAP_ILLEGAL,
        }

    def test_pair_tallies_are_consistent(self):
        auditor, _ = run_audit(small_spec(INPUTS4), max_depth=20)
        assert sum(auditor.pairs.by_class.values()) == auditor.pairs.checked
        assert auditor.pairs.commuting <= auditor.pairs.checked
        assert auditor.pairs.commuting == auditor.pairs.by_class.get(
            PAIR_COMMUTE, 0
        )

    def test_max_pairs_cap_sets_truncated(self):
        auditor, _ = run_audit(small_spec(INPUTS4), max_depth=20, max_pairs=2)
        assert auditor.pairs.checked == 2
        assert auditor.pairs.truncated
        assert auditor.summary()["pairs_truncated"] is True
        assert "(sampling capped)" in render_table(auditor)

    def test_stride_samples_fewer_pairs_deterministically(self):
        dense, _ = run_audit(small_spec(INPUTS4), max_depth=20)
        sparse_a, _ = run_audit(
            small_spec(INPUTS4), max_depth=20, pair_stride=3
        )
        sparse_b, _ = run_audit(
            small_spec(INPUTS4), max_depth=20, pair_stride=3
        )
        assert 0 < sparse_a.pairs.checked < dense.pairs.checked
        assert sparse_a.summary() == sparse_b.summary()


class TestSurfaces:
    def summary_fields(self):
        auditor, _ = run_audit(
            small_spec(INPUTS4), max_depth=20, value_alphabet=INPUTS4
        )
        payload = auditor.summary()
        payload["depths"] = {"0": [1, 0]}
        payload["pair_classes"] = dict(auditor.pairs.by_class)
        return auditor, payload

    def test_metrics_gauges_from_audit_summary(self):
        auditor, payload = self.summary_fields()
        registry = MetricsRegistry()
        registry.consume_event("audit_summary", payload)
        gauges = registry.snapshot()["gauges"]
        assert gauges["audit_configurations"] == auditor.configurations
        assert gauges["audit_revisit_ratio"] == pytest.approx(
            payload["revisit_ratio"]
        )
        assert gauges["audit_commuting_fraction"] == pytest.approx(
            payload["commuting_fraction"]
        )
        assert gauges["audit_orbit_savings"] == pytest.approx(
            payload["orbit_savings"]
        )
        exposition = registry.render_prometheus()
        assert "audit_revisit_ratio" in exposition

    def test_status_board_carries_audit(self):
        _auditor, payload = self.summary_fields()
        board = StatusBoard(command="audit")
        board("audit_summary", payload)
        snapshot = board.snapshot()
        assert snapshot["audit"]["revisit_ratio"] == payload["revisit_ratio"]

    def test_html_report_gains_audit_section(self):
        from repro.obs.profile import Profiler

        _auditor, payload = self.summary_fields()
        registry = MetricsRegistry()
        registry.consume_event("audit_summary", payload)
        html = render_html(registry, Profiler())
        assert "state-space audit" in html.lower()
        bare = render_html(MetricsRegistry(), Profiler())
        assert "state-space audit" not in bare.lower()

    def test_standalone_audit_html(self):
        auditor, _payload = self.summary_fields()
        html = render_audit_html(auditor, title="audit page")
        assert html.startswith("<!DOCTYPE html>") or "<html" in html
        assert "revisit" in html.lower()
        assert str(auditor.distinct_states) in html


class TestLedgerIntegration:
    def record(self, run_id, audit=None):
        record = {
            "run_id": run_id,
            "command": "audit",
            "verdict": "proved",
            "exit_code": 0,
            "argv": ["audit"],
        }
        if audit is not None:
            record["audit"] = audit
        return record

    def test_compare_includes_audit_when_present(self):
        audit_a = {
            "configurations": 100,
            "distinct_states": 60,
            "revisit_ratio": 0.4,
            "commuting_fraction": 0.5,
            "orbit_savings": 0.1,
        }
        audit_b = dict(audit_a, revisit_ratio=0.45)
        lines, agree = ledger.compare_runs(
            self.record("a", audit_a), self.record("b", audit_b)
        )
        assert agree
        text = "\n".join(lines)
        assert "audit:" in text
        assert "0.4000" in text and "0.4500" in text

    def test_compare_tolerates_missing_audit(self):
        lines, _agree = ledger.compare_runs(
            self.record("a"), self.record("b")
        )
        assert "audit:" not in "\n".join(lines)
        audit = {"configurations": 10, "revisit_ratio": 0.1}
        lines, _agree = ledger.compare_runs(
            self.record("a", audit), self.record("b")
        )
        text = "\n".join(lines)
        assert "audit:" in text and "—" in text


class TestCli:
    ARGS = [
        "audit", "--task", "set-consensus", "--n", "2", "--k", "1",
        "--no-ledger",
    ]

    def test_byte_stable_stdout(self, capsys):
        assert main(list(self.ARGS)) == 0
        first = capsys.readouterr().out
        assert main(list(self.ARGS)) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "revisit ratio" in first
        assert "commuting fraction" in first
        assert "orbit savings" in first

    def test_html_written_and_message_on_stderr(self, tmp_path, capsys):
        out = tmp_path / "audit.html"
        assert main(list(self.ARGS) + ["--html", str(out)]) == 0
        captured = capsys.readouterr()
        assert str(out) not in captured.out  # stdout stays byte-stable
        assert str(out) in captured.err
        assert "revisit" in out.read_text(encoding="utf-8").lower()

    def test_ledger_records_audit_summary(self, tmp_path, capsys):
        path = tmp_path / "runs.jsonl"
        assert main(
            ["audit", "--task", "set-consensus", "--n", "2", "--k", "1",
             "--ledger", str(path)]
        ) == 0
        records, _skipped = ledger.read_ledger(str(path))
        assert len(records) == 1
        audit = records[0]["audit"]
        assert set(audit) == {
            "configurations",
            "distinct_states",
            "revisit_ratio",
            "commuting_fraction",
            "orbit_savings",
        }
        assert audit["configurations"] > 0


class TestSuiteRows:
    def test_headroom_rows_are_informational_and_deterministic(self):
        from repro.experiments.suite import _audit_headroom_row

        row = _audit_headroom_row(
            "E5",
            "state-space audit: O(2,1) set consensus, N=4",
            small_spec(INPUTS4),
            INPUTS4,
        )
        again = _audit_headroom_row(
            "E5",
            "state-space audit: O(2,1) set consensus, N=4",
            small_spec(INPUTS4),
            INPUTS4,
        )
        assert row.ok is True
        assert row.markdown() == again.markdown()
        assert "revisit" in row.measured
