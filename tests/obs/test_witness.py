"""Tests for the witness store (``repro.obs.witness``)."""

import json

import pytest

from repro.algorithms.consensus_from_n_consensus import (
    partition_set_consensus_spec,
)
from repro.algorithms.helpers import inputs_dict
from repro.obs import events
from repro.obs import witness as obs_witness
from repro.obs.metrics import MetricsRegistry
from repro.obs.witness import (
    KIND_COUNTEREXAMPLE,
    KIND_EXISTENCE,
    WitnessStore,
    capture,
    capture_witnesses,
    get_active_store,
    read_witness,
    register_spec_builder,
    replay_witness,
    resolve_predicate,
    resolve_spec,
    witness_context,
    witness_id,
    witness_to_dict,
)
from repro.runtime.explorer import find_execution
from repro.tasks import KSetConsensusTask, check_task_all_schedules

#: 4 processes partitioned into 2 consensus groups -> every maximal
#: execution decides exactly 2 distinct values (fast refutation target).
INPUTS4 = ["a", "b", "c", "d"]
#: 6 processes / 3 groups -> 3 distinct values (the Common2 point).
INPUTS6 = ["a", "b", "c", "d", "e", "f"]

SPEC6 = {"builder": "n-consensus-partition", "n": 2, "inputs": INPUTS6}
PRED3 = {"name": "distinct-outputs-at-least", "count": 3}


def hunt6():
    return find_execution(
        partition_set_consensus_spec(2, INPUTS6),
        lambda e: len(e.distinct_outputs()) >= 3,
        max_depth=10,
    )


class TestCaptureLifecycle:
    def test_capture_off_by_default(self):
        assert get_active_store() is None
        execution = hunt6()
        assert capture(execution, kind=KIND_EXISTENCE, source="test") is None

    def test_context_manager_activates_and_restores(self, tmp_path):
        with capture_witnesses(str(tmp_path)) as store:
            assert get_active_store() is store
        assert get_active_store() is None

    def test_nested_stores_restore_outer(self, tmp_path):
        with capture_witnesses(str(tmp_path / "outer")) as outer:
            with capture_witnesses(str(tmp_path / "inner")) as inner:
                assert get_active_store() is inner
            assert get_active_store() is outer

    def test_explorer_find_captures_existence_witness(self, tmp_path):
        with capture_witnesses(str(tmp_path)) as store:
            execution = hunt6()
        assert execution is not None
        assert len(store.captured) == 1
        path = store.captured[0]
        assert path.endswith(".jsonl")
        records, skipped = read_witness(path)
        assert skipped == 0
        (record,) = records
        assert record["kind"] == KIND_EXISTENCE
        assert record["source"] == "explorer.find"
        assert len(record["steps"]) == len(execution.steps)
        assert record["trace"]["decisions"]

    def test_solvability_refutation_sets_witness_path(self, tmp_path):
        spec = partition_set_consensus_spec(2, INPUTS4)
        with capture_witnesses(str(tmp_path)):
            report = check_task_all_schedules(
                spec, KSetConsensusTask(1), inputs_dict(INPUTS4)
            )
        assert not report.ok
        assert report.witness_path is not None
        (record,) = read_witness(report.witness_path)[0]
        assert record["kind"] == KIND_COUNTEREXAMPLE
        assert record["source"] == "solvability.all_schedules"
        assert record["reason"] == report.reason

    def test_solvability_without_store_keeps_no_path(self):
        spec = partition_set_consensus_spec(2, INPUTS4)
        report = check_task_all_schedules(
            spec, KSetConsensusTask(1), inputs_dict(INPUTS4)
        )
        assert not report.ok
        assert report.counterexample is not None
        assert report.witness_path is None


class TestStore:
    def test_content_addressed_dedup(self, tmp_path):
        store = WitnessStore(str(tmp_path))
        execution = hunt6()
        first = store.save(execution, kind=KIND_EXISTENCE, source="a")
        second = store.save(execution, kind=KIND_EXISTENCE, source="b")
        assert first == second
        assert store.captured == [first]
        assert len(list(tmp_path.iterdir())) == 1

    def test_filename_embeds_kind_and_digest(self, tmp_path):
        store = WitnessStore(str(tmp_path))
        path = store.save(hunt6(), kind=KIND_EXISTENCE, source="t")
        name = path.rsplit("/", 1)[-1]
        assert name.startswith("existence-")
        digest = name[len("existence-"):-len(".jsonl")]
        assert len(digest) == 12 and all(c in "0123456789abcdef" for c in digest)

    def test_same_execution_same_id_across_machines(self):
        execution = hunt6()
        a = witness_to_dict(execution, kind=KIND_EXISTENCE, source="a",
                            label="one wording")
        b = witness_to_dict(execution, kind=KIND_EXISTENCE, source="b",
                            label="another wording")
        assert witness_id(a) == witness_id(b)

    def test_read_witness_skips_corrupt_lines(self, tmp_path):
        store = WitnessStore(str(tmp_path))
        path = store.save(hunt6(), kind=KIND_EXISTENCE, source="t")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"format": "something-else"}\n')
            handle.write('["a", "list"]\n')
        records, skipped = read_witness(path)
        assert len(records) == 1
        assert skipped == 3

    def test_capture_emits_event_and_metric(self, tmp_path):
        registry = MetricsRegistry()
        seen = []

        def listener(name, fields):
            if name == "witness_captured":
                seen.append(dict(fields))
            registry.consume_event(name, fields)

        events.subscribe(listener)
        try:
            with capture_witnesses(str(tmp_path)):
                hunt6()
        finally:
            events.unsubscribe(listener)
        (fields,) = seen
        assert fields["kind"] == KIND_EXISTENCE
        assert fields["path"].endswith(".jsonl")
        assert fields["steps"] > 0
        assert (
            registry.counter_total("witnesses_captured_total") == 1
        )

    def test_ledger_annotation(self, tmp_path):
        from repro.obs import ledger as run_ledger

        ledger_path = str(tmp_path / "runs.jsonl")
        run_ledger.begin_run(path=ledger_path, command="test")
        try:
            with capture_witnesses(str(tmp_path / "wit")) as store:
                hunt6()
        finally:
            run_ledger.finish_run(0)
        records, _ = run_ledger.read_ledger(ledger_path)
        assert records[-1]["witnesses"] == store.captured


class TestContext:
    def test_context_provenance_flows_into_record(self, tmp_path):
        with capture_witnesses(str(tmp_path)) as store:
            with witness_context(spec=SPEC6, predicate=PRED3, label="lbl"):
                hunt6()
        (record,) = read_witness(store.captured[0])[0]
        assert record["spec"] == SPEC6
        assert record["predicate"] == PRED3
        assert record["label"] == "lbl"

    def test_explicit_arguments_win_over_context(self, tmp_path):
        execution = hunt6()  # before activation: no hook capture
        store = WitnessStore(str(tmp_path))
        obs_witness.activate_store(store)
        try:
            with witness_context(label="outer", spec={"builder": "nope"}):
                path = capture(
                    execution, kind=KIND_EXISTENCE, source="t",
                    label="explicit", spec=SPEC6,
                )
        finally:
            obs_witness.deactivate_store()
        (record,) = read_witness(path)[0]
        assert record["label"] == "explicit"
        assert record["spec"] == SPEC6

    def test_nesting_shadows_and_restores(self, tmp_path):
        with capture_witnesses(str(tmp_path)) as store:
            with witness_context(label="outer", spec=SPEC6):
                with witness_context(label="inner"):
                    hunt6()
        (record,) = read_witness(store.captured[0])[0]
        assert record["label"] == "inner"
        assert record["spec"] == SPEC6  # inherited from the outer context


class TestProvenanceResolution:
    def capture_one(self, tmp_path):
        with capture_witnesses(str(tmp_path)) as store:
            with witness_context(spec=SPEC6, predicate=PRED3):
                hunt6()
        (record,) = read_witness(store.captured[0])[0]
        return record

    def test_replay_round_trip(self, tmp_path):
        record = self.capture_one(tmp_path)
        spec = resolve_spec(record)
        predicate = resolve_predicate(record)
        execution = replay_witness(record, spec)
        assert predicate(execution)
        assert len(execution.distinct_outputs()) == 3

    def test_resolve_spec_without_provenance_raises(self):
        with pytest.raises(ValueError, match="no spec provenance"):
            resolve_spec({"format": obs_witness.FORMAT})

    def test_resolve_unknown_builder_raises(self):
        with pytest.raises(ValueError, match="unknown spec builder"):
            resolve_spec({"spec": {"builder": "no-such-system"}})

    def test_resolve_unknown_predicate_raises(self):
        with pytest.raises(ValueError, match="unknown predicate"):
            resolve_predicate({"predicate": {"name": "no-such-property"}})

    def test_register_spec_builder_extends_registry(self):
        sentinel = object()
        register_spec_builder("test-only", lambda **kw: sentinel)
        try:
            assert resolve_spec({"spec": {"builder": "test-only"}}) is sentinel
        finally:
            del obs_witness.SPEC_BUILDERS["test-only"]

    def test_tampered_trace_rejected_on_replay(self, tmp_path):
        from repro.errors import ReproError

        record = self.capture_one(tmp_path)
        doctored = json.loads(json.dumps(record))
        doctored["trace"]["fingerprint"] = "0" * 16
        with pytest.raises(ReproError):
            replay_witness(doctored, resolve_spec(doctored))
