"""Tests for the metrics registry and its event-driven collection."""

import pytest

from repro.obs import events
from repro.obs.events import JsonlSink, read_jsonl
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.algorithms.helpers import build_spec
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RandomScheduler


def two_process_spec():
    def program(pid, value):
        yield invoke("r", "write", value)
        got = yield invoke("r", "read")
        return got

    return build_spec({"r": RegisterSpec()}, program, ["a", "b"])


@pytest.fixture(autouse=True)
def clean_bus():
    events.set_sink(None)
    yield
    events.set_sink(None)


class TestInstruments:
    def test_counter_labels_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("steps_total", pid=0).inc()
        registry.counter("steps_total", pid=0).inc(2)
        registry.counter("steps_total", pid=1).inc()
        assert registry.counter("steps_total", pid=0).value == 3
        assert registry.counter("steps_total", pid=1).value == 1
        assert registry.counter_total("steps_total") == 4

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("c", a=1, b=2).inc()
        assert registry.counter("c", b=2, a=1).value == 1

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("frontier").set(10)
        registry.gauge("frontier").set(3)
        assert registry.gauge("frontier").value == 3

    def test_histogram_summary_stats(self):
        histogram = Histogram()
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.minimum == 2.0
        assert histogram.maximum == 8.0
        assert histogram.mean == 5.0

    def test_sum_by_label(self):
        registry = MetricsRegistry()
        registry.counter("steps_total", pid=0, object="r").inc(2)
        registry.counter("steps_total", pid=0, object="s").inc(3)
        registry.counter("steps_total", pid=1, object="r").inc(4)
        assert registry.sum_by_label("steps_total", "pid") == {0: 5, 1: 4}
        assert registry.sum_by_label("steps_total", "object") == {"r": 6, "s": 3}

    def test_reset_and_is_empty(self):
        registry = MetricsRegistry()
        assert registry.is_empty()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        assert not registry.is_empty()
        registry.reset()
        assert registry.is_empty()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("steps_total", pid=0).inc(7)
        registry.gauge("frontier").set(2)
        registry.histogram("phase_seconds", span="E1").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"steps_total{pid=0}": 7}
        assert snap["gauges"] == {"frontier": 2}
        assert snap["histograms"]["phase_seconds{span=E1}"]["count"] == 1
        assert snap["histograms"]["phase_seconds{span=E1}"]["total"] == 0.5


class TestEventConsumption:
    def test_consume_well_known_events(self):
        registry = MetricsRegistry()
        registry.consume_event("step", {"pid": 0, "object": "r", "method": "read"})
        registry.consume_event("step", {"pid": 0, "object": "r", "method": "read"})
        registry.consume_event("decision", {"pid": 0, "enabled": 2})
        registry.consume_event("schedule_explored", {"depth": 6})
        registry.consume_event("schedule_truncated", {"depth": 9})
        registry.consume_event("states_visited", {"object": "X", "states": 42})
        registry.consume_event("valency_subtree", {"executions": 5})
        registry.consume_event("run_verdict", {"verdict": "ok"})
        registry.consume_event("run_end", {"steps": 12})
        registry.consume_event("span_end", {"span": "E1", "seconds": 0.25})
        assert registry.counter_total("steps_total") == 2
        assert registry.counter_total("decisions_total") == 1
        assert registry.counter_total("schedules_explored") == 1
        assert registry.counter_total("schedules_truncated") == 1
        assert registry.counter_total("states_visited") == 42
        assert registry.counter_total("valency_executions") == 5
        assert registry.sum_by_label("runs_by_verdict", "verdict") == {"ok": 1}
        assert registry.histogram("run_steps").count == 1
        assert registry.histogram("phase_seconds", span="E1").total == 0.25

    def test_unknown_events_are_ignored(self):
        registry = MetricsRegistry()
        registry.consume_event("some_future_event", {"x": 1})
        assert registry.is_empty()

    def test_live_collection_matches_replay(self, tmp_path):
        """The live-subscribed registry and a replay of the JSONL file must
        agree — the trace is a complete account of the run."""
        path = tmp_path / "run.jsonl"
        live = MetricsRegistry()
        sink = JsonlSink(str(path))
        live.install()
        try:
            with events.use_sink(sink):
                two_process_spec().run(RandomScheduler(3))
        finally:
            live.uninstall()
            sink.close()
        replayed = MetricsRegistry()
        for name, fields in read_jsonl(str(path)):
            replayed.consume_event(name, fields)
        assert live.snapshot() == replayed.snapshot()
        assert replayed.counter_total("steps_total") == 4

    def test_digest_mentions_core_sections(self):
        registry = MetricsRegistry()
        registry.consume_event("step", {"pid": 0, "object": "r", "method": "w"})
        registry.consume_event("schedule_explored", {"depth": 3})
        registry.consume_event("run_verdict", {"verdict": "ok"})
        registry.consume_event("span_end", {"span": "explore", "seconds": 1.5})
        digest = registry.digest()
        assert "steps_total: 1" in digest
        assert "by process: p0=1" in digest
        assert "schedules_explored: 1" in digest
        assert "runs_by_verdict: ok=1" in digest
        assert "explore" in digest and "phase timings" in digest

    def test_empty_digest(self):
        assert MetricsRegistry().digest() == "(no metrics recorded)"


class TestDefaultRegistry:
    def test_reset_registry_clears_global(self):
        get_registry().counter("c").inc()
        reset_registry()
        assert get_registry().is_empty()
