"""Tests for the metrics registry and its event-driven collection."""

import pytest

from repro.obs import events
from repro.obs.events import JsonlSink, read_jsonl
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.algorithms.helpers import build_spec
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RandomScheduler


def two_process_spec():
    def program(pid, value):
        yield invoke("r", "write", value)
        got = yield invoke("r", "read")
        return got

    return build_spec({"r": RegisterSpec()}, program, ["a", "b"])


@pytest.fixture(autouse=True)
def clean_bus():
    events.set_sink(None)
    yield
    events.set_sink(None)


class TestInstruments:
    def test_counter_labels_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("steps_total", pid=0).inc()
        registry.counter("steps_total", pid=0).inc(2)
        registry.counter("steps_total", pid=1).inc()
        assert registry.counter("steps_total", pid=0).value == 3
        assert registry.counter("steps_total", pid=1).value == 1
        assert registry.counter_total("steps_total") == 4

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("c", a=1, b=2).inc()
        assert registry.counter("c", b=2, a=1).value == 1

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("frontier").set(10)
        registry.gauge("frontier").set(3)
        assert registry.gauge("frontier").value == 3

    def test_histogram_summary_stats(self):
        histogram = Histogram()
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.minimum == 2.0
        assert histogram.maximum == 8.0
        assert histogram.mean == 5.0

    def test_sum_by_label(self):
        registry = MetricsRegistry()
        registry.counter("steps_total", pid=0, object="r").inc(2)
        registry.counter("steps_total", pid=0, object="s").inc(3)
        registry.counter("steps_total", pid=1, object="r").inc(4)
        assert registry.sum_by_label("steps_total", "pid") == {0: 5, 1: 4}
        assert registry.sum_by_label("steps_total", "object") == {"r": 6, "s": 3}

    def test_reset_and_is_empty(self):
        registry = MetricsRegistry()
        assert registry.is_empty()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        assert not registry.is_empty()
        registry.reset()
        assert registry.is_empty()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("steps_total", pid=0).inc(7)
        registry.gauge("frontier").set(2)
        registry.histogram("phase_seconds", span="E1").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"steps_total{pid=0}": 7}
        assert snap["gauges"] == {"frontier": 2}
        assert snap["histograms"]["phase_seconds{span=E1}"]["count"] == 1
        assert snap["histograms"]["phase_seconds{span=E1}"]["total"] == 0.5


class TestBucketedHistogram:
    def test_bucket_ladder_is_exponential(self):
        assert BUCKET_BOUNDS[0] == 2.0 ** -13
        assert BUCKET_BOUNDS[-1] == 2.0 ** 20
        for lower, upper in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert upper == 2 * lower

    def test_single_sample_quantiles_are_exact(self):
        histogram = Histogram()
        histogram.observe(5.0)
        assert histogram.p50 == 5.0
        assert histogram.p90 == 5.0
        assert histogram.p99 == 5.0

    def test_quantiles_are_monotone_and_clamped(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.minimum <= histogram.p50 <= histogram.p90
        assert histogram.p90 <= histogram.p99 <= histogram.maximum
        # p50 of 1..100 must land in the right ballpark despite bucketing
        assert 30 <= histogram.p50 <= 70

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_overflow_bucket(self):
        histogram = Histogram()
        histogram.observe(2.0 ** 25)  # beyond the last boundary
        assert histogram.buckets[-1] == 1
        assert histogram.p99 == 2.0 ** 25  # clamped to the observed max

    def test_bucket_counts_sum_to_count(self):
        histogram = Histogram()
        for value in (0.0, 0.001, 1.0, 7.0, 10_000.0, 5_000_000.0):
            histogram.observe(value)
        assert sum(histogram.buckets) == histogram.count == 6


class TestPrometheusRendering:
    def test_exposition_golden(self):
        registry = MetricsRegistry()
        registry.counter("steps_total", pid=0, object="r", method="read").inc(3)
        registry.gauge("enabled_processes").set(2)
        registry.histogram("schedule_depth").observe(4.0)
        assert registry.render_prometheus() == (
            "# TYPE steps_total counter\n"
            'steps_total{method="read",object="r",pid="0"} 3\n'
            "# TYPE enabled_processes gauge\n"
            "enabled_processes 2\n"
            "# TYPE schedule_depth histogram\n"
            'schedule_depth_bucket{le="4"} 1\n'
            'schedule_depth_bucket{le="+Inf"} 1\n'
            "schedule_depth_sum 4\n"
            "schedule_depth_count 1\n"
        )

    def test_gauge_histogram_name_collision_gets_suffix(self):
        registry = MetricsRegistry()
        registry.consume_event("frontier", {"depth": 0, "branches": 3})
        text = registry.render_prometheus()
        assert "# TYPE frontier_branches_current gauge" in text
        assert "# TYPE frontier_branches histogram" in text
        assert "\nfrontier_branches_current 3\n" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("steps_total", object='a"b').inc()
        assert 'object="a\\"b"' in registry.render_prometheus()

    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        for value in (1.0, 1.5, 3.0):
            registry.histogram("h").observe(value)
        text = registry.render_prometheus()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="4"} 3' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestEventConsumption:
    def test_consume_well_known_events(self):
        registry = MetricsRegistry()
        registry.consume_event("step", {"pid": 0, "object": "r", "method": "read"})
        registry.consume_event("step", {"pid": 0, "object": "r", "method": "read"})
        registry.consume_event("decision", {"pid": 0, "enabled": 2})
        registry.consume_event("schedule_explored", {"depth": 6})
        registry.consume_event("schedule_truncated", {"depth": 9})
        registry.consume_event("states_visited", {"object": "X", "states": 42})
        registry.consume_event("valency_subtree", {"executions": 5})
        registry.consume_event("run_verdict", {"verdict": "ok"})
        registry.consume_event("run_end", {"steps": 12})
        registry.consume_event("span_end", {"span": "E1", "seconds": 0.25})
        assert registry.counter_total("steps_total") == 2
        assert registry.counter_total("decisions_total") == 1
        assert registry.counter_total("schedules_explored") == 1
        assert registry.counter_total("schedules_truncated") == 1
        assert registry.counter_total("states_visited") == 42
        assert registry.counter_total("valency_executions") == 5
        assert registry.sum_by_label("runs_by_verdict", "verdict") == {"ok": 1}
        assert registry.histogram("run_steps").count == 1
        assert registry.histogram("phase_seconds", span="E1").total == 0.25

    def test_unknown_events_are_ignored(self):
        registry = MetricsRegistry()
        registry.consume_event("some_future_event", {"x": 1})
        assert registry.is_empty()

    def test_fault_events_feed_both_counters(self):
        registry = MetricsRegistry()
        registry.consume_event("crash", {"pid": 0, "at_step": 3})
        registry.consume_event("recover", {"pid": 0, "at_step": 5})
        registry.consume_event("crash", {"pid": 1, "at_step": 7})
        assert registry.counter_total("faults_injected") == 2
        assert registry.counter_total("recoveries_total") == 1

    def test_live_run_with_recovery_counts_events(self):
        """An installed registry sees the system's crash and recover
        events end to end, not just synthetic consume_event calls."""
        from repro.runtime.execution import CRASH_CHOICE, RECOVER_CHOICE
        from repro.runtime.scheduler import ScriptedScheduler

        registry = MetricsRegistry()
        registry.install()
        try:
            two_process_spec().run(
                ScriptedScheduler(
                    [(0, 0), (0, CRASH_CHOICE), (0, RECOVER_CHOICE),
                     (0, 0), (0, 0), (1, 0), (1, 0)]
                )
            )
        finally:
            registry.uninstall()
        assert registry.counter_total("faults_injected") == 1
        assert registry.counter_total("recoveries_total") == 1
        digest = registry.digest()
        assert "recoveries_total: 1" in digest

    def test_live_collection_matches_replay(self, tmp_path):
        """The live-subscribed registry and a replay of the JSONL file must
        agree — the trace is a complete account of the run."""
        path = tmp_path / "run.jsonl"
        live = MetricsRegistry()
        sink = JsonlSink(str(path))
        live.install()
        try:
            with events.use_sink(sink):
                two_process_spec().run(RandomScheduler(3))
        finally:
            live.uninstall()
            sink.close()
        replayed = MetricsRegistry()
        for name, fields in read_jsonl(str(path)):
            replayed.consume_event(name, fields)
        assert live.snapshot() == replayed.snapshot()
        assert replayed.counter_total("steps_total") == 4

    def test_digest_mentions_core_sections(self):
        registry = MetricsRegistry()
        registry.consume_event("step", {"pid": 0, "object": "r", "method": "w"})
        registry.consume_event("schedule_explored", {"depth": 3})
        registry.consume_event("run_verdict", {"verdict": "ok"})
        registry.consume_event("span_end", {"span": "explore", "seconds": 1.5})
        digest = registry.digest()
        assert "steps_total: 1" in digest
        assert "by process: p0=1" in digest
        assert "schedules_explored: 1" in digest
        assert "runs_by_verdict: ok=1" in digest
        assert "explore" in digest and "phase timings" in digest

    def test_empty_digest(self):
        assert MetricsRegistry().digest() == "(no metrics recorded)"

    def test_digest_includes_gauges(self):
        registry = MetricsRegistry()
        registry.consume_event("decision", {"pid": 0, "enabled": 3})
        registry.consume_event("frontier", {"depth": 1, "branches": 5})
        digest = registry.digest()
        assert "gauges (last): enabled_processes=3, frontier_branches=5" in digest

    def test_digest_includes_percentiles_and_replay_overhead(self):
        registry = MetricsRegistry()
        for depth in (2, 4, 8):
            registry.consume_event("schedule_explored", {"depth": depth})
        registry.consume_event("step", {"pid": 0, "object": "r", "method": "w"})
        registry.consume_event(
            "step", {"pid": 0, "object": "r", "method": "w", "replay": True}
        )
        digest = registry.digest()
        assert "p50" in digest and "p90" in digest and "p99" in digest
        assert "1 replayed + 1 on-path" in digest

    def test_frontier_event_feeds_histogram(self):
        registry = MetricsRegistry()
        for branches in (1, 2, 4):
            registry.consume_event("frontier", {"depth": 0, "branches": branches})
        histogram = registry.get_histogram("frontier_branches")
        assert histogram is not None and histogram.count == 3
        assert histogram.maximum == 4

    def test_corrupt_numeric_fields_tolerated(self):
        registry = MetricsRegistry()
        registry.consume_event("span_end", {"span": "x", "seconds": None})
        registry.consume_event("run_end", {"steps": "garbage"})
        registry.consume_event("schedule_explored", {"depth": None})
        registry.consume_event("states_visited", {"object": "X", "states": None})
        assert registry.get_histogram("phase_seconds", span="x").count == 1
        assert registry.get_histogram("run_steps").count == 1


class TestDefaultRegistry:
    def test_reset_registry_clears_global(self):
        get_registry().counter("c").inc()
        reset_registry()
        assert get_registry().is_empty()


class TestHistogramSaturation:
    def test_unsaturated_by_default(self):
        histogram = Histogram()
        histogram.observe(1.0)
        assert not histogram.saturated

    def test_overflow_sample_sets_flag(self):
        histogram = Histogram()
        histogram.observe(2.0 ** 25)
        assert histogram.saturated

    def test_saturated_quantile_clamps_to_last_finite_bound(self):
        # Mixed stream: the tail quantile lands in the unbounded overflow
        # bucket, where interpolation would fabricate precision — it must
        # report the last finite bound (a lower bound), not a value
        # in-between the bound and the observed max.
        histogram = Histogram()
        histogram.observe(1.0)
        histogram.observe(2.0 ** 25)
        assert histogram.saturated
        assert histogram.p99 == BUCKET_BOUNDS[-1]

    def test_single_overflow_sample_stays_exact(self):
        # The min/max clamp lifts a constant stream to the exact value
        # even when it saturates (the documented single-sample guarantee).
        histogram = Histogram()
        histogram.observe(2.0 ** 25)
        assert histogram.p50 == histogram.p99 == 2.0 ** 25

    def test_snapshot_carries_the_flag(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(2.0 ** 25)
        registry.histogram("ok").observe(1.0)
        snap = registry.snapshot()["histograms"]
        assert snap["h"]["saturated"] is True
        assert snap["ok"]["saturated"] is False

    def test_digest_warns_when_saturated(self):
        registry = MetricsRegistry()
        registry.consume_event("run_end", {"steps": 2 ** 25})
        assert "[saturated: percentiles are lower bounds]" in registry.digest()
        clean = MetricsRegistry()
        clean.consume_event("run_end", {"steps": 5})
        assert "saturated" not in clean.digest()

    def test_prometheus_gauge_only_for_saturated_families(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(2.0 ** 25)
        registry.histogram("ok").observe(1.0)
        text = registry.render_prometheus()
        assert "# TYPE h_saturated gauge" in text
        assert "\nh_saturated 1" in text
        assert "ok_saturated" not in text


class TestWitnessEvents:
    def test_witness_captured_counts_by_kind(self):
        registry = MetricsRegistry()
        registry.consume_event("witness_captured", {"kind": "counterexample"})
        registry.consume_event("witness_captured", {"kind": "counterexample"})
        registry.consume_event("witness_captured", {"kind": "existence"})
        by_kind = registry.sum_by_label("witnesses_captured_total", "kind")
        assert by_kind == {"counterexample": 2, "existence": 1}
        assert "witnesses_captured_total: counterexample=2, existence=1" in (
            registry.digest()
        )

    def test_witness_shrunk_feeds_histograms(self):
        registry = MetricsRegistry()
        registry.consume_event(
            "witness_shrunk",
            {"original_length": 9, "min_length": 3, "removed": 6, "tests": 17},
        )
        assert registry.get_histogram("witness_shrink_steps").count == 1
        assert registry.get_histogram("witness_shrink_steps").maximum == 6
        assert registry.get_histogram("witness_min_length").maximum == 3
        digest = registry.digest()
        assert "witness_shrink_steps" in digest
        assert "witness_min_length" in digest
