"""Tests for the self-contained HTML run report."""

import pytest

from repro.algorithms.helpers import build_spec
from repro.obs import events
from repro.obs.events import RingBufferSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.report import render_html
from repro.obs.spans import span
from repro.objects.register import RegisterSpec
from repro.runtime.explorer import Explorer
from repro.runtime.ops import invoke


@pytest.fixture(autouse=True)
def clean_bus():
    events.set_sink(None)
    yield
    events.set_sink(None)


def captured_run():
    """A real explored run, folded into (registry, profiler)."""

    def program(pid, value):
        yield invoke("r", "write", value)
        got = yield invoke("r", "read")
        return got

    spec = build_spec({"r": RegisterSpec()}, program, ["a", "b"])
    sink = RingBufferSink(capacity=100_000)
    with events.use_sink(sink):
        with span("explore", n=2):
            list(Explorer(spec).executions())
    registry = MetricsRegistry()
    profiler = Profiler()
    for name, fields in sink.events:
        registry.consume_event(name, fields)
        profiler.consume_event(name, fields)
    return registry, profiler


class TestRenderHtml:
    def test_is_a_complete_standalone_document(self):
        registry, profiler = captured_run()
        html = render_html(registry, profiler, sources=["run.jsonl"], events=42)
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        # self-contained: no external fetches, no scripts
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html

    def test_sections_present(self):
        registry, profiler = captured_run()
        html = render_html(registry, profiler)
        assert "Run summary" in html
        assert "Span waterfall" in html
        assert "step sites" in html
        assert "Schedule depth" in html
        assert "Frontier branching factor" in html
        assert "replay overhead" in html

    def test_step_table_and_percentiles(self):
        registry, profiler = captured_run()
        html = render_html(registry, profiler)
        assert "r.write" in html and "r.read" in html
        assert "p50" in html and "p99" in html

    def test_skipped_lines_surface_in_header(self):
        registry, profiler = captured_run()
        html = render_html(registry, profiler, events=10, skipped=3)
        assert "3 corrupt lines skipped" in html

    def test_object_names_are_escaped(self):
        registry = MetricsRegistry()
        profiler = Profiler()
        evil = "<img src=x>"
        registry.consume_event(
            "step", {"pid": 0, "object": evil, "method": "m"}
        )
        profiler.consume_event(
            "step", {"pid": 0, "object": evil, "method": "m"}
        )
        html = render_html(registry, profiler)
        assert "<img" not in html
        assert "&lt;img src=x&gt;" in html

    def test_empty_inputs_render_placeholder(self):
        html = render_html(MetricsRegistry(), Profiler())
        assert "no metrics recorded" in html
