"""Tests for the deterministic profiler (span call tree + folded stacks)."""

import pytest

from repro.algorithms.helpers import build_spec
from repro.obs import events
from repro.obs.events import JsonlSink, RingBufferSink, read_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.spans import span
from repro.objects.register import RegisterSpec
from repro.runtime.explorer import Explorer
from repro.runtime.ops import invoke


@pytest.fixture(autouse=True)
def clean_bus():
    events.set_sink(None)
    yield
    events.set_sink(None)


SYNTHETIC = [
    ("span_start", {"span": "command"}),
    ("span_start", {"span": "explore"}),
    ("step", {"pid": 0, "object": "r", "method": "read"}),
    ("step", {"pid": 0, "object": "r", "method": "read", "replay": True}),
    ("span_end", {"span": "explore", "seconds": 0.5}),
    ("step", {"pid": 1, "object": "q", "method": "enq"}),
    ("span_end", {"span": "command", "seconds": 1.0}),
]


def fed(event_stream):
    profiler = Profiler()
    for name, fields in event_stream:
        profiler.consume_event(name, fields)
    return profiler


def two_process_spec():
    def program(pid, value):
        yield invoke("r", "write", value)
        got = yield invoke("r", "read")
        return got

    return build_spec({"r": RegisterSpec()}, program, ["a", "b"])


class TestCallTree:
    def test_tree_shape_and_attribution(self):
        profiler = fed(SYNTHETIC)
        command = profiler.root.children[0]
        assert command.name == "command"
        assert command.seconds == 1.0
        assert command.own_steps() == 1  # the q.enq outside "explore"
        assert command.total_steps() == 3
        (explore,) = command.children
        assert explore.name == "explore"
        assert explore.steps == {("r", "read"): 2}
        assert explore.replayed == {("r", "read"): 1}
        assert explore.self_seconds() == 0.5
        assert command.self_seconds() == 0.5

    def test_replay_accounting(self):
        profiler = fed(SYNTHETIC)
        assert profiler.steps_total == 3
        assert profiler.steps_replayed == 1
        assert profiler.steps_on_path == 2
        assert profiler.replay_overhead() == 0.5

    def test_out_of_order_span_end_tolerated(self):
        profiler = fed(
            [
                ("span_start", {"span": "outer"}),
                ("span_start", {"span": "inner"}),
                ("span_end", {"span": "outer", "seconds": 2.0}),
                ("step", {"pid": 0, "object": "r", "method": "read"}),
            ]
        )
        # closing "outer" pops "inner" too; the step lands at the root
        assert profiler.root.own_steps() == 1

    def test_unknown_events_ignored(self):
        profiler = fed([("future_event", {"x": 1})])
        assert profiler.steps_total == 0
        assert profiler.root.children == []


class TestFoldedStacks:
    def test_steps_golden(self):
        assert fed(SYNTHETIC).folded_stacks() == [
            "command;explore;r.read 2",
            "command;q.enq 1",
        ]

    def test_seconds_golden(self):
        # self time in integer microseconds at each span frame
        assert fed(SYNTHETIC).folded_stacks(metric="seconds") == [
            "command 500000",
            "command;explore 500000",
        ]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            Profiler().folded_stacks(metric="calories")

    def test_root_attributed_steps_have_bare_frames(self):
        profiler = fed([("step", {"pid": 0, "object": "r", "method": "read"})])
        assert profiler.folded_stacks() == ["r.read 1"]


class TestRenderTree:
    def test_mentions_spans_and_counts(self):
        text = fed(SYNTHETIC).render_tree()
        assert "command" in text and "explore" in text
        assert "3 steps" in text

    def test_empty(self):
        assert Profiler().render_tree() == "(no spans recorded)"


class TestAccountingConsistency:
    """Event-derived step counts must reconcile with explorer statistics —
    otherwise profiler numbers cannot be trusted."""

    def test_events_match_explorer_stats(self):
        sink = RingBufferSink(capacity=100_000)
        explorer = Explorer(two_process_spec())
        with events.use_sink(sink):
            with span("explore"):
                list(explorer.executions())
        profiler = Profiler()
        registry = MetricsRegistry()
        for name, fields in sink.events:
            profiler.consume_event(name, fields)
            registry.consume_event(name, fields)
        stats = explorer.stats
        assert stats.steps_on_path > 0 and stats.steps_replayed > 0
        # the event stream and the explorer's own counters agree exactly
        assert profiler.steps_total == stats.steps_replayed + stats.steps_on_path
        assert profiler.steps_replayed == stats.steps_replayed
        assert profiler.steps_on_path == stats.steps_on_path
        assert registry.counter_total("steps_total") == stats.steps_total
        assert registry.counter_total("steps_replayed_total") == stats.steps_replayed
        assert profiler.replay_overhead() == stats.replay_overhead

    def test_live_collection_matches_jsonl_replay(self, tmp_path):
        path = tmp_path / "run.jsonl"
        live = Profiler()
        sink = JsonlSink(str(path))
        live.install()
        try:
            with events.use_sink(sink):
                with span("explore"):
                    list(Explorer(two_process_spec()).executions())
        finally:
            live.uninstall()
            sink.close()
        replayed = Profiler()
        for name, fields in read_jsonl(str(path)):
            replayed.consume_event(name, fields)
        assert live.folded_stacks() == replayed.folded_stacks()
        assert live.folded_stacks("seconds") == replayed.folded_stacks("seconds")
        assert live.steps_total == replayed.steps_total
        assert live.steps_replayed == replayed.steps_replayed
