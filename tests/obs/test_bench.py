"""Tests for the bench telemetry schema and bench-compare regression gate."""

import json

import pytest

from repro.obs.bench import (
    HISTORY_SCHEMA,
    SCHEMA,
    BenchFileError,
    append_history,
    compare_benches,
    history_entry,
    load_bench_file,
    main,
    read_history,
    render_history,
)


def write_bench_file(path, benches):
    path.write_text(json.dumps({"schema": SCHEMA, "benches": benches}))
    return str(path)


BASELINE = {
    "bench_throughput": {"seconds": 1.0, "steps": 10_000, "steps_per_sec": 10_000.0},
    "bench_walk": {"seconds": 0.5},
}


class TestCompareBenches:
    def test_identical_runs_have_no_regressions(self):
        lines, regressions = compare_benches(BASELINE, BASELINE)
        assert regressions == []
        assert len(lines) == 2

    def test_wall_time_regression_flagged(self):
        slower = {"bench_walk": {"seconds": 0.8}}
        _, regressions = compare_benches({"bench_walk": {"seconds": 0.5}}, slower)
        assert len(regressions) == 1
        assert "bench_walk" in regressions[0] and "wall time" in regressions[0]

    def test_throughput_regression_flagged(self):
        old = {"b": {"seconds": 1.0, "steps_per_sec": 10_000.0}}
        new = {"b": {"seconds": 1.0, "steps_per_sec": 7_000.0}}
        _, regressions = compare_benches(old, new)
        assert len(regressions) == 1
        assert "throughput" in regressions[0]

    def test_improvement_and_within_threshold_pass(self):
        new = {
            "bench_throughput": {
                "seconds": 0.7, "steps": 10_000, "steps_per_sec": 14_000.0
            },
            "bench_walk": {"seconds": 0.55},  # +10%: inside the 20% threshold
        }
        _, regressions = compare_benches(BASELINE, new)
        assert regressions == []

    def test_jitter_floor_suppresses_tiny_wall_times(self):
        old = {"b": {"seconds": 0.001}}
        new = {"b": {"seconds": 0.005}}  # 5x slower but both below min_seconds
        _, regressions = compare_benches(old, new)
        assert regressions == []

    def test_new_and_removed_benches_never_fail(self):
        old = {"gone": {"seconds": 1.0}}
        new = {"fresh": {"seconds": 9.0}}
        lines, regressions = compare_benches(old, new)
        assert regressions == []
        assert any("removed" in line for line in lines)
        assert any("no baseline" in line for line in lines)

    def test_threshold_is_configurable(self):
        old = {"b": {"seconds": 1.0}}
        new = {"b": {"seconds": 1.1}}
        assert compare_benches(old, new, threshold=0.05)[1]
        assert not compare_benches(old, new, threshold=0.20)[1]

    def test_non_numeric_metrics_skipped(self):
        old = {"b": {"seconds": "fast", "steps_per_sec": True}}
        new = {"b": {"seconds": 2.0}}
        lines, regressions = compare_benches(old, new)
        assert regressions == []
        assert "no comparable metrics" in lines[0]


class TestLoadBenchFile:
    def test_roundtrip(self, tmp_path):
        path = write_bench_file(tmp_path / "b.json", BASELINE)
        assert load_bench_file(path) == BASELINE

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchFileError):
            load_bench_file(str(tmp_path / "nope.json"))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        with pytest.raises(BenchFileError):
            load_bench_file(str(path))

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps({"schema": SCHEMA, "benches": [1, 2]}))
        with pytest.raises(BenchFileError):
            load_bench_file(str(path))


class TestCliMain:
    def test_identity_exits_zero(self, tmp_path, capsys):
        path = write_bench_file(tmp_path / "same.json", BASELINE)
        assert main([path, path]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        old = write_bench_file(tmp_path / "old.json", BASELINE)
        new = write_bench_file(
            tmp_path / "new.json",
            {
                "bench_throughput": {
                    "seconds": 1.6, "steps": 10_000, "steps_per_sec": 6_250.0
                },
                "bench_walk": {"seconds": 0.5},
            },
        )
        assert main([old, new]) == 1
        captured = capsys.readouterr()
        assert "regression(s)" in captured.err
        assert "wall time" in captured.err and "throughput" in captured.err

    def test_bad_file_exits_two(self, tmp_path, capsys):
        good = write_bench_file(tmp_path / "good.json", BASELINE)
        assert main([str(tmp_path / "missing.json"), good]) == 2
        assert "bench-compare:" in capsys.readouterr().err

    def test_single_argument_uses_committed_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        baseline = write_bench_file(tmp_path / "baseline.json", BASELINE)
        candidate = write_bench_file(tmp_path / "candidate.json", BASELINE)
        monkeypatch.setenv("REPRO_BENCH_BASELINE", baseline)
        assert main([candidate]) == 0
        out = capsys.readouterr().out
        assert f"comparing against committed baseline {baseline}" in out

    def test_committed_baseline_is_loadable(self):
        """The repository ships benchmarks/BENCH_baseline.json; the
        single-argument form depends on it parsing."""
        import os

        from repro.obs.bench import default_baseline_path

        assert os.environ.get("REPRO_BENCH_BASELINE") is None
        benches = load_bench_file(default_baseline_path())
        assert benches, "committed baseline must list benches"


class TestHistory:
    def test_entry_keeps_only_trajectory_metrics(self):
        benches = {
            "bench_walk": {
                "seconds": 0.5,
                "steps": 100,
                "steps_per_sec": 200.0,
                "obs_overhead_ratio": 1.3,
                "free_form_extra": "dropped",
            }
        }
        entry = history_entry(benches, label="abc123")
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["label"] == "abc123"
        assert entry["benches"]["bench_walk"] == {
            "seconds": 0.5,
            "steps": 100.0,
            "steps_per_sec": 200.0,
            "obs_overhead_ratio": 1.3,
        }
        assert "timestamp" not in entry  # determinism: no wall clock

    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(str(path), history_entry(BASELINE, label="one"))
        append_history(str(path), history_entry(BASELINE, label="two"))
        entries = read_history(str(path))
        assert [entry["label"] for entry in entries] == ["one", "two"]

    def test_identical_entries_serialize_identically(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(str(path), history_entry(BASELINE, label="x"))
        append_history(str(path), history_entry(BASELINE, label="x"))
        first, second = path.read_text().splitlines()
        assert first == second

    def test_read_skips_foreign_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(str(path), history_entry(BASELINE, label="keep"))
        with open(path, "a") as handle:
            handle.write("not json\n")
            handle.write('{"schema": "other/1"}\n')
        entries = read_history(str(path))
        assert len(entries) == 1 and entries[0]["label"] == "keep"

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchFileError):
            read_history(str(tmp_path / "missing.jsonl"))

    def test_render_lists_benches_sorted_with_labels(self):
        entries = [
            history_entry(BASELINE, label="old"),
            history_entry(BASELINE, label="new"),
        ]
        lines = render_history(entries)
        assert lines[0].startswith("bench history (2 entries)")
        text = "\n".join(lines)
        assert "bench_throughput:" in text and "bench_walk:" in text
        assert text.index("old: ") < text.index("new: ", text.index("old: "))

    def test_render_empty(self):
        assert render_history([]) == ["bench history: empty"]

    def test_cli_record_and_print(self, tmp_path, capsys):
        old = write_bench_file(tmp_path / "old.json", BASELINE)
        new = write_bench_file(tmp_path / "new.json", BASELINE)
        history = str(tmp_path / "history.jsonl")
        assert main(
            [old, new, "--record-history", history,
             "--history-label", "sha1", "--history", history]
        ) == 0
        captured = capsys.readouterr()
        assert "recorded history entry" in captured.err
        assert "bench history (1 entries)" in captured.out
        assert "sha1:" in captured.out
        entries = read_history(history)
        assert entries[0]["label"] == "sha1"

    def test_cli_unreadable_history_exits_two(self, tmp_path, capsys):
        old = write_bench_file(tmp_path / "old.json", BASELINE)
        assert main(
            [old, old, "--history", str(tmp_path / "nope.jsonl")]
        ) == 2
        assert "bench-compare:" in capsys.readouterr().err

    def test_committed_history_is_loadable(self):
        """The repository ships benchmarks/BENCH_history.jsonl seeded from
        the committed baseline; CI appends to it."""
        from repro.obs.bench import DEFAULT_HISTORY

        entries = read_history(DEFAULT_HISTORY)
        assert entries and entries[0]["label"] == "baseline"
