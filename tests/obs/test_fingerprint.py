"""Tests for the shared content-addressed hashing (``repro.obs.fingerprint``).

The module backs two consumers that must never drift apart: witness
bundle ids (``repro.obs.witness``) and configuration fingerprints for
the state-space audit (``repro.obs.audit``).  The hypothesis property
pins the audit's core soundness claim: pid-canonicalization is a true
invariant under any permutation of the process components.
"""

import hashlib
import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.fingerprint import (
    FINGERPRINT_LENGTH,
    abstract_values,
    canonical_body,
    canonical_fingerprint,
    configuration_fingerprint,
    content_digest,
    content_id,
    stable_json,
)
from repro.obs.witness import witness_id


class _Opaque:
    def __repr__(self):
        return "opaque<1>"


class TestStableJson:
    def test_key_order_is_irrelevant(self):
        assert stable_json({"b": 1, "a": 2}) == stable_json({"a": 2, "b": 1})

    def test_no_whitespace(self):
        assert stable_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_non_serializable_leaves_fall_back_to_repr(self):
        assert stable_json(_Opaque()) == '"opaque<1>"'

    def test_content_id_is_truncated_sha256_of_stable_json(self):
        value = {"decisions": [[0, 1], [1, 0]]}
        full = hashlib.sha256(stable_json(value).encode("utf-8")).hexdigest()
        assert content_id(value) == full[:12]
        assert content_id(value, length=16) == full[:16]
        assert content_digest(stable_json(value)) == full


class TestWitnessIdCompatibility:
    def test_matches_the_pre_refactor_convention(self):
        """witness_id moved onto content_id; ids (and therefore archived
        bundle filenames) must be byte-identical to the old inline
        ``json.dumps(basis, separators=(",", ":"))`` hashing."""
        trace = {
            "decisions": [[0, 1], [1, 0], [0, 0]],
            "crashes": [[1, 2]],
            "fingerprint": "deadbeef",
        }
        basis = [trace["decisions"], trace["crashes"], trace["fingerprint"]]
        old_id = hashlib.sha256(
            json.dumps(basis, separators=(",", ":")).encode("utf-8")
        ).hexdigest()[:12]
        assert witness_id({"trace": trace}) == old_id

    def test_missing_fields_default_empty(self):
        assert witness_id({}) == content_id([[], [], ""])


def _snapshot(processes):
    return {"objects": {"r": "Register(None)"}, "processes": processes}


_process = st.fixed_dictionaries(
    {
        "status": st.sampled_from(["running", "done", "crashed", "blocked"]),
        "responses": st.lists(
            st.text(alphabet="abc'[]{}\",0", max_size=6), max_size=4
        ),
        "pending": st.text(alphabet="abc.()x", max_size=8),
    }
)


class TestCanonicalBody:
    @settings(max_examples=60, deadline=None)
    @given(
        processes=st.lists(_process, min_size=0, max_size=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_invariant_under_process_permutation(self, processes, seed):
        shuffled = list(processes)
        random.Random(seed).shuffle(shuffled)
        assert canonical_body(_snapshot(processes)) == canonical_body(
            _snapshot(shuffled)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        processes=st.lists(_process, min_size=0, max_size=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_invariant_holds_with_value_abstraction(self, processes, seed):
        shuffled = list(processes)
        random.Random(seed).shuffle(shuffled)
        alphabet = ["a", "b", "c"]
        assert canonical_body(_snapshot(processes), alphabet) == canonical_body(
            _snapshot(shuffled), alphabet
        )

    def test_distinguishes_different_multisets(self):
        p1 = {"status": "running", "responses": ["'a'"], "pending": ""}
        p2 = {"status": "running", "responses": ["'b'"], "pending": ""}
        assert canonical_body(_snapshot([p1, p1])) != canonical_body(
            _snapshot([p1, p2])
        )


class TestAbstractValues:
    def test_consistent_renaming_collapses(self):
        # The serialized forms differ only by swapping the roles of the
        # values 'a' and 'b'; abstraction maps both to the same text.
        one = stable_json({"responses": ["'a'", "'a'", "'b'"]})
        two = stable_json({"responses": ["'b'", "'b'", "'a'"]})
        alphabet = ["a", "b"]
        assert abstract_values(one, alphabet) == abstract_values(two, alphabet)

    def test_inconsistent_renaming_does_not_collapse(self):
        one = stable_json({"responses": ["'a'", "'b'", "'a'"]})
        two = stable_json({"responses": ["'a'", "'a'", "'b'"]})
        alphabet = ["a", "b"]
        assert abstract_values(one, alphabet) != abstract_values(two, alphabet)

    def test_substring_values_rewrite_longest_first(self):
        one = stable_json({"responses": ["'v1'", "'v10'"]})
        two = stable_json({"responses": ["'v10'", "'v1'"]})
        alphabet = ["v1", "v10"]
        # Both orders must abstract cleanly (no corrupted partial
        # replacements), and swapping which value comes first changes
        # placeholder assignment consistently, not the text structure.
        for text in (one, two):
            rewritten = abstract_values(text, alphabet)
            assert "v1" not in rewritten and "v10" not in rewritten
            assert "§0§" in rewritten and "§1§" in rewritten


class TestLiveSystemFingerprints:
    def _system(self):
        from repro.algorithms.set_consensus_from_family import (
            set_consensus_spec,
        )

        spec = set_consensus_spec(2, 1, ["v0", "v1", "v2"])
        return spec.build()

    def test_fingerprint_length_and_stability(self):
        system = self._system()
        fingerprint = configuration_fingerprint(system)
        assert len(fingerprint) == FINGERPRINT_LENGTH
        assert configuration_fingerprint(system) == fingerprint
        canonical = canonical_fingerprint(system, ["v0", "v1", "v2"])
        assert len(canonical) == FINGERPRINT_LENGTH
