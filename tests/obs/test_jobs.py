"""Unit tests for the ``repro serve`` job queue (:mod:`repro.obs.jobs`).

Fake workers (``worker_prefix`` pointing at tiny ``python -c`` scripts
that ignore the explore argv) keep these tests fast and deterministic;
the real worker protocol end-to-end — actual explorations, SIGKILL,
checkpoint resume — lives in ``tests/integration/test_service.py``.
"""

import json
import os
import sys
import time

import pytest

from repro.obs import jobs
from repro.obs.jobs import JobManager, TraceTail, validate_spec


def fake_worker(script: str):
    """A worker_prefix whose process runs ``script`` (explore argv lands
    in sys.argv and is ignored)."""
    return [sys.executable, "-c", script]


def wait_final(manager, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snap = manager.job_snapshot(job_id)
        if snap["state"] in jobs.FINAL_STATES:
            return snap
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} not final: {manager.job_snapshot(job_id)}")


class TestValidateSpec:
    def test_defaults_and_known_task(self):
        spec = validate_spec({"task": "consensus", "n": 3, "k": 1})
        assert spec.task == "consensus"
        assert spec.n == 3 and spec.k == 1
        assert spec.max_crashes == 0

    def test_rejects_unknown_task_and_keys(self):
        with pytest.raises(ValueError, match="unknown task"):
            validate_spec({"task": "frobnicate"})
        with pytest.raises(ValueError, match="unknown job spec key"):
            validate_spec({"task": "consensus", "frobs": 1})

    @pytest.mark.parametrize(
        "payload",
        [
            {"n": 0},
            {"k": "two"},
            {"max_crashes": -1},
            {"deadline": 0},
            {"deadline": "soon"},
            {"max_steps": True},
            {"label": 7},
            ["not", "an", "object"],
        ],
    )
    def test_rejects_bad_values(self, payload):
        with pytest.raises(ValueError):
            validate_spec(payload)

    def test_seed_recorded_as_provenance(self):
        spec = validate_spec({"task": "consensus", "seed": 42})
        assert spec.seed == 42
        assert spec.as_dict()["seed"] == 42

    def test_max_recoveries_accepted_and_forwarded(self, tmp_path):
        spec = validate_spec(
            {"task": "consensus", "max_crashes": 1, "max_recoveries": 1}
        )
        assert spec.max_recoveries == 1
        assert spec.as_dict()["max_recoveries"] == 1
        manager = JobManager(str(tmp_path / "data"), max_workers=0)
        job = jobs.Job(id="j1", spec=spec, job_dir=str(tmp_path / "j1"))
        argv = manager.worker_argv(job, resume=False)
        assert "--max-recoveries" in argv
        assert argv[argv.index("--max-recoveries") + 1] == "1"

    def test_execset_stream_always_requested(self, tmp_path):
        """Every worker attempt writes a digest stream into the job dir
        (numbered per attempt, like trace files), fresh and resumed."""
        spec = validate_spec({"task": "consensus"})
        manager = JobManager(str(tmp_path / "data"), max_workers=0)
        job = jobs.Job(id="j1", spec=spec, job_dir=str(tmp_path / "j1"))
        job.attempts = 2
        for resume in (False, True):
            argv = manager.worker_argv(job, resume=resume)
            assert "--execset-out" in argv
            assert argv[argv.index("--execset-out") + 1] == \
                job.execset_path(2)

    def test_max_recoveries_defaults_to_zero(self):
        spec = validate_spec({"task": "consensus"})
        assert spec.max_recoveries == 0

    def test_negative_max_recoveries_rejected(self):
        with pytest.raises(ValueError):
            validate_spec({"task": "consensus", "max_recoveries": -1})


class TestTraceTail:
    def write(self, path, events):
        with open(path, "a", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")

    def test_keeps_latest_heartbeat_only(self, tmp_path):
        trace = str(tmp_path / "trace-1.jsonl")
        self.write(trace, [
            {"event": "step", "pid": 0},
            {"event": "explore_heartbeat", "executions": 5, "frontier": 2},
            {"event": "explore_heartbeat", "executions": 9, "frontier": 1},
        ])
        tail = TraceTail()
        tail.poll([trace])
        snap = tail.snapshot()
        assert snap["explore"]["executions"] == 9
        assert snap["trace_lines"] == 3

    def test_incremental_and_partial_lines(self, tmp_path):
        trace = str(tmp_path / "trace-1.jsonl")
        self.write(trace, [{"event": "explore_heartbeat", "executions": 1}])
        tail = TraceTail()
        tail.poll([trace])
        # A partial line mid-write is not consumed...
        with open(trace, "a", encoding="utf-8") as handle:
            handle.write('{"event": "explore_heartbeat", "exec')
        tail.poll([trace])
        assert tail.snapshot()["explore"]["executions"] == 1
        # ...and is picked up once completed.
        with open(trace, "a", encoding="utf-8") as handle:
            handle.write('utions": 2}\n')
        tail.poll([trace])
        assert tail.snapshot()["explore"]["executions"] == 2

    def test_advances_across_attempt_files(self, tmp_path):
        first = str(tmp_path / "trace-1.jsonl")
        second = str(tmp_path / "trace-2.jsonl")
        self.write(first, [{"event": "explore_heartbeat", "executions": 3}])
        tail = TraceTail()
        tail.poll([first])
        self.write(second, [{"event": "explore_heartbeat", "executions": 8}])
        tail.poll([first, second])
        tail.poll([first, second])
        assert tail.snapshot()["explore"]["executions"] == 8

    def test_corrupt_lines_are_counted_not_fatal(self, tmp_path):
        trace = str(tmp_path / "trace-1.jsonl")
        with open(trace, "w", encoding="utf-8") as handle:
            handle.write('{"event": "explore_heartbeat" broken\n')
            handle.write(json.dumps(
                {"event": "explore_heartbeat", "executions": 4}) + "\n")
        tail = TraceTail()
        tail.poll([trace])
        snap = tail.snapshot()
        assert snap["explore"]["executions"] == 4
        assert snap["trace_lines"] == 2


class TestJobManager:
    def manager(self, tmp_path, script, **kwargs):
        kwargs.setdefault("max_workers", 2)
        kwargs.setdefault("max_retries", 1)
        return JobManager(
            str(tmp_path / "data"),
            worker_prefix=fake_worker(script),
            **kwargs,
        )

    def test_verdict_exit_codes_finish_the_job(self, tmp_path):
        manager = self.manager(tmp_path, "raise SystemExit(0)")
        try:
            job = manager.submit({"task": "consensus"})
            snap = wait_final(manager, job["id"])
            assert snap["state"] == "done"
            assert snap["verdict"] == "proved"
            assert snap["attempts"] == 1
            assert snap["exit_codes"] == [0]
        finally:
            manager.drain(timeout=5)

    def test_inconclusive_exit_is_final_not_a_crash(self, tmp_path):
        manager = self.manager(tmp_path, "raise SystemExit(3)")
        try:
            snap = wait_final(
                manager, manager.submit({"task": "consensus"})["id"]
            )
            assert snap["state"] == "done"
            assert snap["verdict"] == "inconclusive"
            assert snap["attempts"] == 1
        finally:
            manager.drain(timeout=5)

    def test_crashing_worker_lands_error_after_retries(self, tmp_path):
        manager = self.manager(
            tmp_path, "raise SystemExit(9)", max_retries=2
        )
        try:
            snap = wait_final(
                manager, manager.submit({"task": "consensus"})["id"]
            )
            assert snap["state"] == "error"
            assert "retries exhausted" in snap["error"]
            assert snap["attempts"] == 3  # first try + 2 retries
            assert snap["exit_codes"] == [9, 9, 9]
        finally:
            manager.drain(timeout=5)

    def test_crash_resumes_from_checkpoint(self, tmp_path):
        """First attempt flushes a checkpoint (with its run id) and dies;
        the supervisor's second attempt runs --resume and the dead
        attempt's run id is recovered from the checkpoint header."""
        script = (
            "import sys\n"
            "from repro.faults.checkpoint import write_checkpoint\n"
            "ck = sys.argv[sys.argv.index('--checkpoint') + 1]\n"
            "import os\n"
            "if os.path.exists(ck):\n"
            "    sys.exit(0)\n"
            "write_checkpoint(ck, n_processes=2, frontier=[[(0, 0)]],\n"
            "                 executions=1, run_id='dead-attempt')\n"
            "sys.exit(9)\n"
        )
        manager = self.manager(tmp_path, script)
        try:
            snap = wait_final(
                manager, manager.submit({"task": "consensus"})["id"]
            )
            assert snap["state"] == "done"
            assert snap["attempts"] == 2
            assert snap["run_ids"][0] == "dead-attempt"
            log = open(
                os.path.join(snap["job_dir"], "worker.log"),
                encoding="utf-8",
            ).read()
            attempt2 = log.split("--- attempt 2")[1]
            assert "--resume" in attempt2
        finally:
            manager.drain(timeout=5)

    def test_done_checkpoint_short_circuits_to_proved(self, tmp_path):
        """A worker killed after finishing the walk but before exiting
        leaves an empty-frontier checkpoint — no pointless rerun."""
        script = (
            "import sys\n"
            "from repro.faults.checkpoint import write_checkpoint\n"
            "ck = sys.argv[sys.argv.index('--checkpoint') + 1]\n"
            "write_checkpoint(ck, n_processes=2, frontier=[],\n"
            "                 executions=7, run_id='finished-run')\n"
            "sys.exit(9)\n"
        )
        manager = self.manager(tmp_path, script)
        try:
            snap = wait_final(
                manager, manager.submit({"task": "consensus"})["id"]
            )
            assert snap["state"] == "done"
            assert snap["verdict"] == "proved"
            assert snap["attempts"] == 1  # the short-circuit spawns nothing
            assert "finished-run" in snap["run_ids"]
        finally:
            manager.drain(timeout=5)

    def test_concurrent_jobs_and_counts(self, tmp_path):
        manager = self.manager(
            tmp_path, "import time; time.sleep(0.2); raise SystemExit(0)"
        )
        try:
            ids = [
                manager.submit({"task": "consensus"})["id"] for _ in range(4)
            ]
            assert ids == [f"job-{i:04d}" for i in range(1, 5)]
            for job_id in ids:
                assert wait_final(manager, job_id)["verdict"] == "proved"
            states, verdicts = manager.counts()
            assert states["done"] == 4
            assert verdicts == {"proved": 4}
        finally:
            manager.drain(timeout=5)

    def test_job_numbering_survives_restart(self, tmp_path):
        manager = self.manager(tmp_path, "raise SystemExit(0)")
        try:
            wait_final(manager, manager.submit({"task": "consensus"})["id"])
        finally:
            manager.drain(timeout=5)
        again = self.manager(tmp_path, "raise SystemExit(0)")
        try:
            assert again.submit({"task": "consensus"})["id"] == "job-0002"
        finally:
            again.drain(timeout=5)

    def test_drain_interrupts_running_and_refuses_new(self, tmp_path):
        manager = self.manager(
            tmp_path, "import time\ntime.sleep(60)\nraise SystemExit(0)",
            max_workers=1,
        )
        job = manager.submit({"task": "consensus"})
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if manager.job_snapshot(job["id"])["state"] == "running":
                break
            time.sleep(0.02)
        manager.drain(timeout=10)
        snap = manager.job_snapshot(job["id"])
        assert snap["state"] == "interrupted"
        with pytest.raises(RuntimeError, match="draining"):
            manager.submit({"task": "consensus"})
        assert manager.draining

    def test_bad_spec_never_creates_a_job(self, tmp_path):
        manager = self.manager(tmp_path, "raise SystemExit(0)")
        try:
            with pytest.raises(ValueError):
                manager.submit({"task": "consensus", "n": -2})
            assert manager.list_jobs() == []
        finally:
            manager.drain(timeout=5)
