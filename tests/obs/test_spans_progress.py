"""Tests for spans and the rate-limited progress reporter."""

import io

import pytest

from repro.obs import events
from repro.obs.events import RingBufferSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.spans import current_span, span


@pytest.fixture(autouse=True)
def clean_bus():
    events.set_sink(None)
    yield
    events.set_sink(None)


class TestSpans:
    def test_span_times_and_records_to_registry(self):
        registry = MetricsRegistry()
        with span("explore", registry=registry, n=2, k=1) as phase:
            pass
        assert phase.seconds is not None and phase.seconds >= 0
        histogram = registry.histogram("phase_seconds", span="explore")
        assert histogram.count == 1
        assert histogram.total == phase.seconds

    def test_spans_nest_and_track_current(self):
        registry = MetricsRegistry()
        assert current_span() is None
        with span("outer", registry=registry) as outer:
            assert current_span() is outer
            with span("inner", registry=registry) as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_span_events_carry_depth_and_fields(self):
        registry = MetricsRegistry()
        sink = RingBufferSink()
        with events.use_sink(sink):
            with span("outer", registry=registry):
                with span("inner", registry=registry, n=3):
                    pass
        names = [name for name, _ in sink.events]
        assert names == ["span_start", "span_start", "span_end", "span_end"]
        inner_start = sink.events[1][1]
        assert inner_start == {"span": "inner", "depth": 1, "n": 3}
        inner_end = sink.events[2][1]
        assert inner_end["span"] == "inner"
        assert inner_end["seconds"] >= 0
        assert inner_end["error"] is None

    def test_no_double_count_when_registry_is_installed(self):
        """A bus-installed registry gets phase_seconds via the span_end
        event; the span must not also observe directly, or live metrics
        would disagree with a trace replay."""
        registry = MetricsRegistry().install()
        try:
            with span("explore", registry=registry):
                pass
        finally:
            registry.uninstall()
        assert registry.histogram("phase_seconds", span="explore").count == 1
        # once uninstalled, the direct observation path is back
        with span("explore", registry=registry):
            pass
        assert registry.histogram("phase_seconds", span="explore").count == 2

    def test_span_end_reports_exceptions(self):
        registry = MetricsRegistry()
        sink = RingBufferSink()
        with events.use_sink(sink):
            with pytest.raises(ValueError):
                with span("failing", registry=registry):
                    raise ValueError("boom")
        end = [fields for name, fields in sink.events if name == "span_end"]
        assert end[0]["error"] == "ValueError"
        assert current_span() is None
        assert registry.histogram("phase_seconds", span="failing").count == 1


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestProgressReporter:
    def test_rate_limited_painting(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=1.0, clock=clock)
        reporter.install()
        try:
            clock.now = 0.5
            events.emit("step", pid=0)  # before the interval: no paint
            assert stream.getvalue() == ""
            clock.now = 1.5
            events.emit("step", pid=0)  # past the interval: paints once
            first = stream.getvalue()
            assert "2 steps" in first
            clock.now = 1.6
            events.emit("step", pid=0)  # throttled again
            assert stream.getvalue() == first
        finally:
            reporter.close()
        assert stream.getvalue().endswith("\n")
        assert "3 steps" in stream.getvalue()

    def test_counts_schedules_states_and_phase(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0, clock=clock)
        reporter.install()
        try:
            events.emit("schedule_explored", depth=3)
            events.emit("states_visited", states=10)
            events.emit("run_end", steps=5)
            events.emit("span_start", span="E4")
            assert reporter.schedules == 1
            assert reporter.states == 10
            assert reporter.runs == 1
            assert reporter.current_phase == "E4"
            events.emit("span_end", span="E4", seconds=0.1)
            assert reporter.current_phase is None
        finally:
            reporter.close()
        final = stream.getvalue()
        assert "1 schedules" in final
        assert "10 states" in final

    def test_close_unsubscribes(self):
        reporter = ProgressReporter(stream=io.StringIO(), min_interval=0.0)
        reporter.install()
        reporter.close()
        assert not events.is_enabled()
        events.emit("step", pid=0)
        assert reporter.steps == 0
