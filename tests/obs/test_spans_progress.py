"""Tests for spans (timing + causal identity) and the progress reporter."""

import io

import pytest

from repro.obs import events
from repro.obs import spans as spans_mod
from repro.obs.events import RingBufferSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.spans import (
    TRACEPARENT_ENV,
    current_span,
    derive_span_id,
    format_traceparent,
    parse_traceparent,
    reset_trace_context,
    span,
)


@pytest.fixture(autouse=True)
def clean_bus(monkeypatch):
    monkeypatch.delenv(TRACEPARENT_ENV, raising=False)
    reset_trace_context()
    events.set_sink(None)
    yield
    events.set_sink(None)
    reset_trace_context()


class TestSpans:
    def test_span_times_and_records_to_registry(self):
        registry = MetricsRegistry()
        with span("explore", registry=registry, n=2, k=1) as phase:
            pass
        assert phase.seconds is not None and phase.seconds >= 0
        histogram = registry.histogram("phase_seconds", span="explore")
        assert histogram.count == 1
        assert histogram.total == phase.seconds

    def test_spans_nest_and_track_current(self):
        registry = MetricsRegistry()
        assert current_span() is None
        with span("outer", registry=registry) as outer:
            assert current_span() is outer
            with span("inner", registry=registry) as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_span_events_carry_depth_and_fields(self):
        registry = MetricsRegistry()
        sink = RingBufferSink()
        with events.use_sink(sink):
            with span("outer", registry=registry):
                with span("inner", registry=registry, n=3):
                    pass
        names = [name for name, _ in sink.events]
        assert names == ["span_start", "span_start", "span_end", "span_end"]
        outer_start = sink.events[0][1]
        inner_start = sink.events[1][1]
        assert inner_start["span"] == "inner"
        assert inner_start["depth"] == 1
        assert inner_start["n"] == 3
        # causal identity: the inner span is parented under the outer
        # one and shares its trace (named by the first span).
        assert inner_start["parent_id"] == outer_start["span_id"]
        assert inner_start["trace_id"] == outer_start["span_id"]
        assert outer_start["parent_id"] is None
        inner_end = sink.events[2][1]
        assert inner_end["span"] == "inner"
        assert inner_end["seconds"] >= 0
        assert inner_end["error"] is None
        assert inner_end["span_id"] == inner_start["span_id"]

    def test_no_double_count_when_registry_is_installed(self):
        """A bus-installed registry gets phase_seconds via the span_end
        event; the span must not also observe directly, or live metrics
        would disagree with a trace replay."""
        registry = MetricsRegistry().install()
        try:
            with span("explore", registry=registry):
                pass
        finally:
            registry.uninstall()
        assert registry.histogram("phase_seconds", span="explore").count == 1
        # once uninstalled, the direct observation path is back
        with span("explore", registry=registry):
            pass
        assert registry.histogram("phase_seconds", span="explore").count == 2

    def test_span_end_reports_exceptions(self):
        registry = MetricsRegistry()
        sink = RingBufferSink()
        with events.use_sink(sink):
            with pytest.raises(ValueError):
                with span("failing", registry=registry):
                    raise ValueError("boom")
        end = [fields for name, fields in sink.events if name == "span_end"]
        assert end[0]["error"] == "ValueError"
        assert current_span() is None
        assert registry.histogram("phase_seconds", span="failing").count == 1


class TestSpanIdentity:
    """The deterministic id scheme and cross-process context adoption."""

    def _events(self):
        registry = MetricsRegistry()
        sink = RingBufferSink()
        with events.use_sink(sink):
            with span("command", registry=registry, command="explore"):
                with span("explore", registry=registry, n=2, k=1):
                    pass
        return sink.events

    def test_ids_are_deterministic_across_processes_in_spirit(self):
        """Two identical runs (fresh trace context each) mint identical
        ids — the property that lets live and replayed traces stitch."""
        first = self._events()
        reset_trace_context()
        second = self._events()
        strip = lambda fields: {
            k: v for k, v in fields.items() if k != "seconds"
        }
        assert [(n, strip(f)) for n, f in first] == [
            (n, strip(f)) for n, f in second
        ]

    def test_derive_span_id_separates_same_seq_under_different_parents(self):
        """Two worker attempts share a trace and both count from zero;
        their distinct attempt-span parents keep the ids distinct."""
        a = derive_span_id("command", 0, "trace", "attempt-1-id")
        b = derive_span_id("command", 0, "trace", "attempt-2-id")
        assert a != b

    def test_traceparent_roundtrip_and_malformed(self):
        text = format_traceparent("aaa", "bbb")
        assert parse_traceparent(text) == ("aaa", "bbb")
        for bad in (None, "", "no-dash-count-3-x", "onlyone", "-", "a-", "-b"):
            assert parse_traceparent(bad) is None

    def test_environment_adoption(self, monkeypatch):
        """A worker started with REPRO_TRACEPARENT roots its outermost
        span under the daemon's attempt span, in the daemon's trace."""
        monkeypatch.setenv(TRACEPARENT_ENV, "trace123-parent456")
        reset_trace_context()
        registry = MetricsRegistry()
        sink = RingBufferSink()
        with events.use_sink(sink):
            with span("command", registry=registry):
                pass
        start = sink.events[0][1]
        assert start["trace_id"] == "trace123"
        assert start["parent_id"] == "parent456"

    def test_malformed_environment_runs_unparented(self, monkeypatch):
        monkeypatch.setenv(TRACEPARENT_ENV, "garbage")
        reset_trace_context()
        registry = MetricsRegistry()
        sink = RingBufferSink()
        with events.use_sink(sink):
            with span("command", registry=registry):
                pass
        start = sink.events[0][1]
        assert start["parent_id"] is None
        assert start["trace_id"] == start["span_id"]


class TestSpanMisuseTolerance:
    """Degradation paths: out-of-order exits, unentered exits, and
    current_span() across exceptions must never corrupt the stack."""

    def test_out_of_order_exit_keeps_stack_consistent(self):
        registry = MetricsRegistry()
        outer = span("outer", registry=registry)
        inner = span("inner", registry=registry)
        outer.__enter__()
        inner.__enter__()
        # Close the *outer* span first — inner is still on the stack.
        outer.__exit__(None, None, None)
        assert current_span() is inner
        inner.__exit__(None, None, None)
        assert current_span() is None
        assert outer.seconds is not None and inner.seconds is not None

    def test_exit_without_enter_emits_span_error(self):
        registry = MetricsRegistry()
        sink = RingBufferSink()
        with events.use_sink(sink):
            phase = span("never-entered", registry=registry)
            # No assert, no exception, no stack corruption — a span_error
            # event instead (asserts would vanish under python -O).
            phase.__exit__(None, None, None)
        assert phase.seconds is None
        assert current_span() is None
        errors = [f for n, f in sink.events if n == "span_error"]
        assert errors == [
            {"span": "never-entered", "reason": "exited without entering"}
        ]
        assert registry.histogram("phase_seconds", span="never-entered").count == 0

    def test_double_exit_is_tolerated(self):
        registry = MetricsRegistry()
        with span("once", registry=registry) as phase:
            pass
        first_seconds = phase.seconds
        phase.__exit__(None, None, None)  # stale exit: stack unaffected
        assert current_span() is None
        assert phase.seconds is not None and phase.seconds >= first_seconds

    def test_current_span_restored_after_nested_exception(self):
        registry = MetricsRegistry()
        with span("outer", registry=registry) as outer:
            with pytest.raises(RuntimeError):
                with span("inner", registry=registry):
                    assert current_span() is not outer
                    raise RuntimeError("boom")
            # the failing inner span unwound cleanly
            assert current_span() is outer
        assert current_span() is None


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestProgressReporter:
    def test_rate_limited_painting(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=1.0, clock=clock)
        reporter.install()
        try:
            clock.now = 0.5
            events.emit("step", pid=0)  # before the interval: no paint
            assert stream.getvalue() == ""
            clock.now = 1.5
            events.emit("step", pid=0)  # past the interval: paints once
            first = stream.getvalue()
            assert "2 steps" in first
            clock.now = 1.6
            events.emit("step", pid=0)  # throttled again
            assert stream.getvalue() == first
        finally:
            reporter.close()
        assert stream.getvalue().endswith("\n")
        assert "3 steps" in stream.getvalue()

    def test_counts_schedules_states_and_phase(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0, clock=clock)
        reporter.install()
        try:
            events.emit("schedule_explored", depth=3)
            events.emit("states_visited", states=10)
            events.emit("run_end", steps=5)
            events.emit("span_start", span="E4")
            assert reporter.schedules == 1
            assert reporter.states == 10
            assert reporter.runs == 1
            assert reporter.current_phase == "E4"
            events.emit("span_end", span="E4", seconds=0.1)
            assert reporter.current_phase is None
        finally:
            reporter.close()
        final = stream.getvalue()
        assert "1 schedules" in final
        assert "10 states" in final

    def test_close_unsubscribes(self):
        reporter = ProgressReporter(stream=io.StringIO(), min_interval=0.0)
        reporter.install()
        reporter.close()
        assert not events.is_enabled()
        events.emit("step", pid=0)
        assert reporter.steps == 0
