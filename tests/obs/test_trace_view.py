"""Tests for the trace stitcher: tree building, critical path, renderers,
run-id resolution, and byte stability."""

import json
import os

import pytest

from repro.obs import trace_view
from repro.obs.ledger import resume_chain
from repro.obs.trace_view import (
    DAEMON_TRACE,
    job_dir_trace_files,
    render_ascii,
    run_trace_files,
    run_trace_show,
    stitch_files,
    stitched_jsonl_lines,
    trace_as_dict,
    waterfall_page,
    waterfall_section,
)


def write_trace(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for index, record in enumerate(records):
            handle.write(json.dumps({"i": index, **record}) + "\n")
    return path


def span_start(name, span_id, parent_id, trace_id="T", **fields):
    return {
        "event": "span_start", "span": name, "span_id": span_id,
        "parent_id": parent_id, "trace_id": trace_id, **fields,
    }


def span_end(name, span_id, parent_id, seconds, error=None, trace_id="T"):
    return {
        "event": "span_end", "span": name, "span_id": span_id,
        "parent_id": parent_id, "trace_id": trace_id,
        "seconds": seconds, "error": error,
    }


@pytest.fixture
def job_dir(tmp_path):
    """A synthetic kill-resume job: daemon trace, a killed attempt whose
    worker spans never closed, and a clean second attempt."""
    write_trace(tmp_path / DAEMON_TRACE, [
        span_start("job", "J", None, job="job-0001"),
        span_start("queue_wait", "Q", "J"),
        span_end("queue_wait", "Q", "J", 0.5),
        span_start("attempt_1", "A1", "J"),
        span_end("attempt_1", "A1", "J", 2.0, error="exit_-9"),
        span_start("resume_gap", "G", "J"),
        span_end("resume_gap", "G", "J", 0.1),
        span_start("attempt_2", "A2", "J"),
        span_end("attempt_2", "A2", "J", 3.0),
        span_end("job", "J", None, 5.6),
    ])
    write_trace(tmp_path / "trace-1.jsonl", [
        span_start("command", "C1", "A1"),
        span_start("explore", "E1", "C1"),
        # SIGKILLed: neither span ever ends.
    ])
    write_trace(tmp_path / "trace-2.jsonl", [
        span_start("command", "C2", "A2"),
        span_start("explore", "E2", "C2"),
        span_end("explore", "E2", "C2", 2.5),
        span_end("command", "C2", "A2", 2.9),
    ])
    return tmp_path


class TestStitching:
    def test_file_discovery_orders_daemon_then_attempts(self, job_dir):
        files = job_dir_trace_files(str(job_dir))
        assert [os.path.basename(p) for p in files] == [
            DAEMON_TRACE, "trace-1.jsonl", "trace-2.jsonl",
        ]
        # attempt numbering is numeric, not lexicographic
        write_trace(job_dir / "trace-10.jsonl", [])
        files = job_dir_trace_files(str(job_dir))
        assert os.path.basename(files[-1]) == "trace-10.jsonl"

    def test_tree_shape_and_parentage(self, job_dir):
        trace = stitch_files(job_dir_trace_files(str(job_dir)))
        assert trace.span_count == 9
        assert trace.trace_id == "T"
        assert trace.orphans == 0 and trace.dropped == 0
        (root,) = trace.roots
        assert root.name == "job"
        assert [c.name for c in root.children] == [
            "queue_wait", "attempt_1", "resume_gap", "attempt_2",
        ]
        # every worker span hangs under its attempt span
        attempt_1, attempt_2 = root.children[1], root.children[3]
        assert [c.name for c in attempt_1.children] == ["command"]
        assert [c.name for c in attempt_2.children] == ["command"]
        assert attempt_1.children[0].children[0].name == "explore"

    def test_unclosed_spans_get_child_durations(self, job_dir):
        trace = stitch_files(job_dir_trace_files(str(job_dir)))
        killed_command = trace.find("command")[0]
        assert not killed_command.closed
        assert killed_command.seconds is None
        assert killed_command.effective == 0.0  # no closed descendants

    def test_self_time_subtracts_children(self, job_dir):
        trace = stitch_files(job_dir_trace_files(str(job_dir)))
        attempt_2 = [n for n in trace.spans if n.name == "attempt_2"][0]
        assert attempt_2.self_seconds == pytest.approx(3.0 - 2.9)
        explore = [n for n in trace.find("explore") if n.closed][0]
        assert explore.self_seconds == pytest.approx(2.5)

    def test_critical_path_follows_dominant_child(self, job_dir):
        trace = stitch_files(job_dir_trace_files(str(job_dir)))
        critical = [n.name for n in trace.walk() if n.critical]
        # attempt_2 (3.0s) dominates attempt_1 (2.0s) and queue_wait
        assert critical == ["job", "attempt_2", "command", "explore"]

    def test_orphan_spans_become_roots(self, tmp_path):
        write_trace(tmp_path / DAEMON_TRACE, [
            span_start("stray", "S", "never-seen"),
            span_end("stray", "S", "never-seen", 1.0),
        ])
        trace = stitch_files(job_dir_trace_files(str(tmp_path)))
        assert trace.orphans == 1
        assert [r.name for r in trace.roots] == ["stray"]

    def test_records_without_ids_are_counted_not_guessed(self, tmp_path):
        write_trace(tmp_path / DAEMON_TRACE, [
            {"event": "span_start", "span": "old-style", "depth": 0},
            span_start("new", "N", None),
            span_end("new", "N", None, 1.0),
        ])
        trace = stitch_files(job_dir_trace_files(str(tmp_path)))
        assert trace.span_count == 1
        assert trace.dropped == 1

    def test_unreadable_files_are_skipped(self, job_dir):
        files = job_dir_trace_files(str(job_dir)) + [
            str(job_dir / "nonexistent.jsonl")
        ]
        trace = stitch_files(files)
        assert trace.span_count == 9
        assert len(trace.sources) == 3


class TestRendering:
    def test_ascii_waterfall_is_byte_stable(self, job_dir):
        files = job_dir_trace_files(str(job_dir))
        first = render_ascii(stitch_files(files))
        second = render_ascii(stitch_files(files))
        assert first == second
        assert "queue_wait" in first and "resume_gap" in first
        assert "[unclosed]" in first and "[exit_-9]" in first
        assert "*" in first  # critical path marker

    def test_html_waterfall_embeds_and_wraps(self, job_dir):
        trace = stitch_files(job_dir_trace_files(str(job_dir)))
        section = waterfall_section(trace)
        assert 'class="wf"' in section and 'class="bar crit"' in section
        assert "<html" not in section
        page = waterfall_page(trace, "trace — job-0001")
        assert page.startswith("<!DOCTYPE html>")
        assert "trace — job-0001" in page

    def test_dict_and_jsonl_exports(self, job_dir):
        trace = stitch_files(job_dir_trace_files(str(job_dir)))
        tree = trace_as_dict(trace)
        assert tree["spans"] == 9
        assert tree["tree"][0]["span"] == "job"
        lines = stitched_jsonl_lines(trace)
        header = json.loads(lines[0])
        assert header["format"] == "repro-stitched-trace/1"
        assert header["spans"] == 9
        assert len(lines) == 1 + 9
        flat = [json.loads(line) for line in lines[1:]]
        assert flat[0]["span"] == "job"
        assert all("children" not in record for record in flat)

    def test_empty_trace_renders_placeholder(self):
        trace = stitch_files([])
        assert render_ascii(trace) == "(no spans found)"
        assert "no spans" in waterfall_section(trace)


LEDGER_FORMAT = "repro-ledger/1"


def ledger_record(run_id, parent=None, trace_out=None):
    record = {"format": LEDGER_FORMAT, "run_id": run_id}
    if parent:
        record["parent_run_id"] = parent
    if trace_out:
        record["artifacts"] = {"trace_out": trace_out}
    return record


class TestResumeChainResolution:
    def test_resume_chain_walks_both_directions(self):
        records = [
            ledger_record("aaa"),
            ledger_record("bbb", parent="aaa"),
            ledger_record("ccc", parent="bbb"),
            ledger_record("zzz"),  # unrelated
        ]
        for start in ("aaa", "bbb", "ccc"):
            chain = resume_chain(records, start)
            assert [r["run_id"] for r in chain] == ["aaa", "bbb", "ccc"]

    def test_resume_chain_tolerates_missing_parent_record(self):
        # A SIGKILLed attempt leaves no ledger record: the resume names
        # it as parent, but the chain just starts at the survivor.
        records = [ledger_record("resumed", parent="dead-attempt")]
        chain = resume_chain(records, "resumed")
        assert [r["run_id"] for r in chain] == ["resumed"]

    def test_resume_chain_unknown_id_raises(self):
        with pytest.raises(ValueError):
            resume_chain([ledger_record("aaa")], "nope")

    def test_run_trace_files_resolves_relative_to_ledger_dir(self, tmp_path):
        trace_a = write_trace(tmp_path / "a.jsonl", [span_start("x", "X", None)])
        records = [
            ledger_record("aaa", trace_out="a.jsonl"),
            ledger_record("bbb", parent="aaa"),  # no trace artifact
        ]
        files = run_trace_files(records, "bbb", ledger_dir=str(tmp_path))
        assert files == [os.path.join(str(tmp_path), "a.jsonl")]
        assert os.path.isfile(trace_a)


class TestTraceShowCommand:
    def test_job_dir_target_prints_waterfall(self, job_dir, capsys):
        assert run_trace_show(str(job_dir)) == 0
        out = capsys.readouterr().out
        assert "queue_wait" in out and "attempt_2" in out

    def test_output_is_byte_identical_across_invocations(self, job_dir, capsys):
        assert run_trace_show(str(job_dir)) == 0
        first = capsys.readouterr().out
        assert run_trace_show(str(job_dir)) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_unknown_target_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such-thing")
        ledger = str(tmp_path / "runs.jsonl")
        with open(ledger, "w", encoding="utf-8"):
            pass
        assert run_trace_show(missing, ledger_path=ledger) == 2
        assert "trace show:" in capsys.readouterr().err

    def test_empty_job_dir_exits_2(self, tmp_path, capsys):
        assert run_trace_show(str(tmp_path)) == 2
        assert "no trace files" in capsys.readouterr().err

    def test_html_and_jsonl_outputs(self, job_dir, tmp_path, capsys):
        html = str(tmp_path / "out" / "waterfall.html")
        jsonl = str(tmp_path / "out" / "stitched.jsonl")
        assert run_trace_show(str(job_dir), html_out=html, jsonl_out=jsonl) == 0
        with open(html, encoding="utf-8") as handle:
            assert 'class="wf"' in handle.read()
        with open(jsonl, encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["format"] == trace_view.STITCHED_FORMAT
        capsys.readouterr()

    def test_json_mode(self, job_dir, capsys):
        assert run_trace_show(str(job_dir), as_json=True) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 9

    def test_run_id_target_via_ledger(self, tmp_path, capsys):
        trace_file = write_trace(tmp_path / "run-trace.jsonl", [
            span_start("command", "C", None),
            span_end("command", "C", None, 1.0),
        ])
        ledger = tmp_path / "runs.jsonl"
        with open(ledger, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                ledger_record("abc123", trace_out=str(trace_file))
            ) + "\n")
        assert run_trace_show("abc123", ledger_path=str(ledger)) == 0
        assert "command" in capsys.readouterr().out

    def test_run_id_without_trace_artifacts_exits_2(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        with open(ledger, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(ledger_record("abc123")) + "\n")
        assert run_trace_show("abc123", ledger_path=str(ledger)) == 2
        assert "no --trace-out" in capsys.readouterr().err
