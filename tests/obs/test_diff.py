"""Tests for the execution-set diff engine (``repro.obs.diff``)."""

import json

import pytest

from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.obs import diff as obs_diff
from repro.obs import execset
from repro.obs import ledger
from repro.runtime.explorer import Explorer

#: O(2, 1) full-occupancy set consensus: 720 maximal executions of
#: depth 6 — big enough for meaningful set differences, still fast.
INPUTS = [f"v{i}" for i in range(6)]
SPEC_META = {"task": "set-consensus", "n": 2, "k": 1}


def write_stream(path, max_depth=200):
    recorder = execset.ExecutionSetRecorder(
        path=str(path), spec_meta=SPEC_META, value_alphabet=INPUTS
    )
    explorer = Explorer(
        set_consensus_spec(2, 1, INPUTS), max_depth=max_depth, strict=False,
        execset=recorder,
    )
    for _ in explorer.executions():
        pass
    recorder.write()
    return recorder


@pytest.fixture(autouse=True)
def _no_dangling_recorder():
    ledger.abandon_run()
    yield
    ledger.abandon_run()


@pytest.fixture
def pair(tmp_path):
    """Two identical full streams plus one truncated stream."""
    write_stream(tmp_path / "a.jsonl")
    write_stream(tmp_path / "b.jsonl")
    write_stream(tmp_path / "short.jsonl", max_depth=3)
    return tmp_path


class TestCompare:
    def test_identical_files_exit_0(self, pair):
        report = obs_diff.diff_targets(
            str(pair / "a.jsonl"), str(pair / "b.jsonl")
        )
        assert report["exit_code"] == obs_diff.EXIT_SAME
        assert report["digest"]["equal"] is True
        assert report["same_set"] is True
        assert report["only_in_a"]["count"] == 0
        assert report["only_in_b"]["count"] == 0
        assert report.get("divergence") is None

    def test_truncated_run_exit_1_with_divergence(self, pair):
        report = obs_diff.diff_targets(
            str(pair / "a.jsonl"), str(pair / "short.jsonl")
        )
        assert report["exit_code"] == obs_diff.EXIT_SET_DIFFERS
        assert report["same_set"] is False
        # The depth-3 truncation visits a strict subset at full depth
        # but also records truncated executions the full run never saw:
        # both difference directions are populated.
        assert report["only_in_a"]["count"] > 0
        assert report["only_in_b"]["count"] > 0
        divergence = report.get("divergence")
        assert divergence is not None
        first = divergence["first_divergence"]
        assert first["index"] >= 0
        assert isinstance(first["decision"], list)
        assert divergence["lanes"]  # ASCII lane diagram rendered
        assert "lanes" in (divergence.get("lanes_html") or "")

    def test_verdict_divergence_exit_2(self, pair):
        a = obs_diff.load_target(str(pair / "a.jsonl"), None)
        b = obs_diff.load_target(str(pair / "b.jsonl"), None)
        a.verdict, b.verdict = "proved", "refuted"
        report = obs_diff.compare(a, b)
        assert report["exit_code"] == obs_diff.EXIT_VERDICT_DIVERGES
        assert report["verdict"]["equal"] is False

    def test_verdict_divergence_beats_set_difference(self, pair):
        a = obs_diff.load_target(str(pair / "a.jsonl"), None)
        b = obs_diff.load_target(str(pair / "short.jsonl"), None)
        a.verdict, b.verdict = "proved", "refuted"
        assert obs_diff.compare(a, b)["exit_code"] == \
            obs_diff.EXIT_VERDICT_DIVERGES

    def test_unknown_target_raises(self, pair):
        with pytest.raises(ValueError):
            obs_diff.diff_targets(
                str(pair / "a.jsonl"), "no-such-run-id",
                ledger_path=str(pair / "absent-ledger.jsonl"),
            )


class TestRenderings:
    def test_table_deterministic_and_informative(self, pair):
        report = obs_diff.diff_targets(
            str(pair / "a.jsonl"), str(pair / "short.jsonl")
        )
        table = obs_diff.render_table(report)
        assert table == obs_diff.render_table(report)
        assert "only in A" in table
        assert "first divergence" in table
        assert "per-depth" in table

    def test_json_roundtrips(self, pair):
        report = obs_diff.diff_targets(
            str(pair / "a.jsonl"), str(pair / "b.jsonl")
        )
        text = obs_diff.render_json_report(report)
        assert json.loads(text)["exit_code"] == 0
        assert json.loads(text)["format"] == obs_diff.FORMAT

    def test_html_contains_lanes_for_divergence(self, pair):
        report = obs_diff.diff_targets(
            str(pair / "a.jsonl"), str(pair / "short.jsonl")
        )
        html = obs_diff.render_html(report)
        assert html == obs_diff.render_html(report)
        assert 'class="lanes"' in html
        assert html.endswith("\n")

    def test_no_explain_skips_replay(self, pair):
        report = obs_diff.diff_targets(
            str(pair / "a.jsonl"), str(pair / "short.jsonl"), explain=False
        )
        assert report["exit_code"] == obs_diff.EXIT_SET_DIFFERS
        assert report.get("divergence") is None


class TestLedgerTargets:
    def make_ledger(self, tmp_path, entries):
        path = tmp_path / "runs.jsonl"
        for entry in entries:
            ledger.append_record(str(path), dict(entry, format=ledger.FORMAT))
        return str(path)

    def test_resume_chain_merges_to_full_set(self, pair):
        """A run chain (interrupted + resumed) diffs as one merged set
        against a single-session file of the same exploration."""
        full = execset.read_execset(str(pair / "a.jsonl"))
        ids = sorted(full.records)
        half = len(ids) // 2
        first = execset.ExecutionSetRecorder(
            path=str(pair / "part1.jsonl"), spec_meta=SPEC_META
        )
        for record_id in ids[:half]:
            first.records.append(full.records[record_id])
            first._seen.add(record_id)
            first._digest ^= int(
                execset.content_digest(record_id), 16
            )
        first.write()
        second = execset.ExecutionSetRecorder(
            path=str(pair / "part2.jsonl"), spec_meta=SPEC_META,
            base_digest=first.digest, base_records=half,
        )
        for record_id in ids[half:]:
            second.records.append(full.records[record_id])
            second._seen.add(record_id)
            second._digest ^= int(
                execset.content_digest(record_id), 16
            )
        second.write()
        ledger_path = self.make_ledger(pair, [
            {"run_id": "run-1", "verdict": "inconclusive",
             "execset": first.ledger_summary()},
            {"run_id": "run-2", "parent_run_id": "run-1",
             "verdict": "proved",
             "execset": second.ledger_summary()},
        ])
        report = obs_diff.diff_targets(
            "run-2", str(pair / "a.jsonl"), ledger_path=ledger_path
        )
        assert report["exit_code"] == obs_diff.EXIT_SAME
        assert report["a"]["complete"] is True
        assert report["a"]["records"] == len(ids)
        assert set(report["a"]["run_ids"]) == {"run-1", "run-2"}

    def test_missing_execset_file_reported_incomplete(self, pair):
        ledger_path = self.make_ledger(pair, [
            {"run_id": "run-1", "verdict": "proved",
             "execset": {"digest": "ab" * 32, "records": 7,
                         "path": str(pair / "gone.jsonl")}},
        ])
        report = obs_diff.diff_targets(
            "run-1", str(pair / "a.jsonl"), ledger_path=ledger_path
        )
        assert report["a"]["complete"] is False
        assert report["a"]["digest"] == "ab" * 32
        assert any("gone.jsonl" in note for note in report["a"]["notes"])

    def test_predigest_record_compares_as_na(self, pair):
        """Ledger records from before this format have no execset entry:
        the diff degrades to n/a instead of erroring."""
        ledger_path = self.make_ledger(pair, [
            {"run_id": "run-old", "verdict": "proved", "executions": 42},
        ])
        report = obs_diff.diff_targets(
            "run-old", str(pair / "a.jsonl"), ledger_path=ledger_path
        )
        assert report["a"]["digest"] is None
        assert report["exit_code"] == obs_diff.EXIT_SET_DIFFERS
        table = obs_diff.render_table(report)
        assert "n/a" in table
