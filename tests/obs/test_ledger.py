"""Tests for the run ledger and the ``repro runs`` subcommands."""

import json

import pytest

from repro.__main__ import main
from repro.obs import ledger


@pytest.fixture(autouse=True)
def _no_dangling_recorder():
    """Tests must not leak a process-wide recorder into each other."""
    ledger.abandon_run()
    yield
    ledger.abandon_run()


class TestAppendRead:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ledger.append_record(path, {"format": ledger.FORMAT, "run_id": "a"})
        ledger.append_record(path, {"format": ledger.FORMAT, "run_id": "b"})
        records, skipped = ledger.read_ledger(path)
        assert [r["run_id"] for r in records] == ["a", "b"]
        assert skipped == 0

    def test_missing_file_reads_empty(self, tmp_path):
        records, skipped = ledger.read_ledger(str(tmp_path / "absent.jsonl"))
        assert records == [] and skipped == 0

    def test_corrupt_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(
            json.dumps({"format": ledger.FORMAT, "run_id": "ok"})
            + "\n{broken\n"
            + json.dumps({"format": "other/1"})
            + "\n"
        )
        records, skipped = ledger.read_ledger(str(path))
        assert [r["run_id"] for r in records] == ["ok"]
        assert skipped == 2

    def test_append_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "runs.jsonl")
        ledger.append_record(path, {"format": ledger.FORMAT, "run_id": "x"})
        assert ledger.read_ledger(path)[0][0]["run_id"] == "x"


class TestFindRecord:
    RECORDS = [
        {"format": ledger.FORMAT, "run_id": "20260101T000000-aaaaaa"},
        {"format": ledger.FORMAT, "run_id": "20260101T000001-bbbbbb"},
    ]

    def test_exact_and_prefix(self):
        assert ledger.find_record(self.RECORDS, "20260101T000001-bbbbbb") \
            is self.RECORDS[1]
        assert ledger.find_record(self.RECORDS, "20260101T000001") \
            is self.RECORDS[1]

    def test_unknown_and_ambiguous_raise(self):
        with pytest.raises(ValueError, match="no run"):
            ledger.find_record(self.RECORDS, "zzz")
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.find_record(self.RECORDS, "20260101T00000")


class TestRunRecorder:
    def test_finish_stamps_verdict_and_duration(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        recorder = ledger.begin_run(path, "check", ["check", "1", "1"])
        ledger.annotate(executions=7, nothing=None)
        record = ledger.finish_run(0)
        assert record["verdict"] == "proved"
        assert record["executions"] == 7
        assert "nothing" not in record
        assert record["duration_seconds"] >= 0
        stored, _ = ledger.read_ledger(path)
        assert stored[0]["run_id"] == recorder.run_id
        # finish_run cleared the process-wide recorder.
        assert ledger.current_run() is None
        assert ledger.finish_run(0) is None

    def test_annotate_without_active_run_is_noop(self):
        ledger.annotate(executions=1)  # must not raise


class TestCliRecording:
    def test_every_run_command_appends(self, tmp_path, capsys):
        path = tmp_path / "runs.jsonl"
        assert main(["describe", "2", "1", "--ledger", str(path)]) == 0
        records, _ = ledger.read_ledger(str(path))
        assert len(records) == 1
        assert records[0]["command"] == "describe"
        assert records[0]["verdict"] == "proved"

    def test_no_ledger_disables(self, tmp_path, capsys):
        path = tmp_path / "runs.jsonl"
        assert main(
            ["describe", "2", "1", "--ledger", str(path), "--no-ledger"]
        ) == 0
        assert not path.exists()

    def test_crashing_command_records_error(self, tmp_path, capsys):
        path = tmp_path / "runs.jsonl"
        with pytest.raises(ValueError):
            main(["describe", "2", "0", "--ledger", str(path)])
        records, _ = ledger.read_ledger(str(path))
        assert records[0]["verdict"] == "error"
        assert records[0]["exit_code"] == 2

    def test_runs_family_not_recorded(self, tmp_path, capsys):
        path = tmp_path / "runs.jsonl"
        assert main(["runs", "list", "--ledger", str(path)]) == 0
        assert not path.exists()


class TestRunsSubcommands:
    def run_explore(self, tmp_path, *extra):
        path = tmp_path / "runs.jsonl"
        code = main(
            ["explore", "--task", "consensus", "--n", "2", "--k", "1",
             "--ledger", str(path), *extra]
        )
        return path, code

    def test_list_show(self, tmp_path, capsys):
        path, code = self.run_explore(tmp_path)
        assert code == 0
        assert main(["runs", "list", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "explore" in out and "proved" in out
        records, _ = ledger.read_ledger(str(path))
        run_id = records[0]["run_id"]
        assert main(["runs", "show", run_id, "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"run_id: {run_id}" in out
        assert "describe: exhaustive(task=consensus" in out

    def test_show_unknown_id_exits_2(self, tmp_path, capsys):
        path, _ = self.run_explore(tmp_path)
        assert main(["runs", "show", "nope", "--ledger", str(path)]) == 2
        assert "no run" in capsys.readouterr().err

    def test_resume_chain_and_compare(self, tmp_path, capsys):
        """Acceptance: an interrupted run resumed via --resume yields two
        ledger records linked by parent run id, diffable by compare."""
        checkpoint = tmp_path / "ck.jsonl"
        path, code = self.run_explore(
            tmp_path, "--checkpoint", str(checkpoint), "--max-steps", "3"
        )
        assert code == 3  # budget-interrupted
        path, code = self.run_explore(tmp_path, "--resume", str(checkpoint))
        assert code == 0
        capsys.readouterr()
        records, _ = ledger.read_ledger(str(path))
        assert len(records) == 2
        first, second = records
        assert second["parent_run_id"] == first["run_id"]
        assert first["verdict"] == "inconclusive"
        assert second["verdict"] == "proved"
        code = main(
            ["runs", "compare", first["run_id"], second["run_id"],
             "--ledger", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 1  # verdicts disagree
        assert "chain: B resumes A's checkpoint" in out
        assert "inconclusive vs proved (DIFFERS)" in out

    def test_compare_tolerates_records_predating_recoveries(self, capsys):
        """Ledger records written before the crash-recovery model have no
        ``recoveries`` key; comparing them against new records must not
        crash (mirrors the ``audit`` key handling)."""
        old = {
            "format": ledger.FORMAT,
            "run_id": "old",
            "verdict": "proved",
            "executions": 24,
            "faults_injected": 3,
        }
        new = {
            "format": ledger.FORMAT,
            "run_id": "new",
            "verdict": "proved",
            "executions": 96,
            "faults_injected": 3,
            "recoveries": 32,
        }
        lines, agree = ledger.compare_runs(old, new)
        assert agree
        assert "recoveries: None vs 32" in lines
        # Two pre-recovery records: the counter is absent on both sides
        # and the line is simply omitted.
        lines, _ = ledger.compare_runs(old, dict(old, run_id="old2"))
        assert not any(line.startswith("recoveries:") for line in lines)

    def test_compare_exit_0_when_verdicts_agree(self, tmp_path, capsys):
        path, _ = self.run_explore(tmp_path)
        self.run_explore(tmp_path)
        records, _ = ledger.read_ledger(str(path))
        code = main(
            ["runs", "compare", records[0]["run_id"], records[1]["run_id"],
             "--ledger", str(path)]
        )
        assert code == 0
        assert "(=)" in capsys.readouterr().out


class TestResumeChainGuards:
    """A corrupt (or hand-edited) ledger with cyclic ``parent_run_id``
    links must be reported, never walked forever."""

    @staticmethod
    def record(run_id, parent=None):
        out = {"format": ledger.FORMAT, "run_id": run_id}
        if parent is not None:
            out["parent_run_id"] = parent
        return out

    def test_linear_chain_resolves_from_any_link(self):
        records = [
            self.record("aa"),
            self.record("bb", parent="aa"),
            self.record("cc", parent="bb"),
        ]
        for link in ("aa", "bb", "cc"):
            chain = ledger.resume_chain(records, link)
            assert [r["run_id"] for r in chain] == ["aa", "bb", "cc"]

    def test_self_referential_record_raises(self):
        records = [self.record("aa", parent="aa")]
        with pytest.raises(ValueError, match="cyclic parent_run_id"):
            ledger.resume_chain(records, "aa")

    def test_two_cycle_raises_and_names_the_cycle(self):
        records = [
            self.record("aa", parent="bb"),
            self.record("bb", parent="aa"),
        ]
        with pytest.raises(ValueError, match="aa -> bb|bb -> aa"):
            ledger.resume_chain(records, "aa")

    def test_missing_parent_terminates_quietly(self):
        """A SIGKILLed worker's run id exists only in the checkpoint
        header; the survivor's dangling parent link is not an error."""
        records = [self.record("bb", parent="gone")]
        chain = ledger.resume_chain(records, "bb")
        assert [r["run_id"] for r in chain] == ["bb"]


class TestCompareExecset:
    def test_digest_line_same_and_differs(self):
        base = {"format": ledger.FORMAT, "verdict": "proved"}
        a = dict(base, run_id="a",
                 execset={"digest": "ab" * 32, "records": 7})
        same = dict(base, run_id="s",
                    execset={"digest": "ab" * 32, "records": 7})
        lines, _ = ledger.compare_runs(a, same)
        assert any("(SAME SET)" in line for line in lines)
        different = dict(base, run_id="d",
                         execset={"digest": "cd" * 32, "records": 7})
        lines, agree = ledger.compare_runs(a, different)
        assert agree  # verdicts still match; only the set differs
        assert any("(DIFFERS)" in line and "execset digest" in line
                   for line in lines)
        assert any(line.startswith("execset records: 7 vs 7")
                   for line in lines)

    def test_predigest_records_compare_as_na(self):
        """Records written before the execset format have no digest:
        the comparison degrades to n/a instead of crashing."""
        base = {"format": ledger.FORMAT, "verdict": "proved"}
        old = dict(base, run_id="old")
        new = dict(base, run_id="new",
                   execset={"digest": "ab" * 32, "records": 7})
        lines, _ = ledger.compare_runs(old, new)
        assert any("n/a" in line and "execset digest" in line
                   for line in lines)
        # Two pre-digest records: the line is simply omitted.
        lines, _ = ledger.compare_runs(old, dict(old, run_id="old2"))
        assert not any("execset" in line for line in lines)


class TestVerdictFilterAndJson:
    RECORDS = [
        {"format": ledger.FORMAT, "run_id": "a", "verdict": "proved"},
        {"format": ledger.FORMAT, "run_id": "b", "verdict": "refuted"},
        {"format": ledger.FORMAT, "run_id": "c", "verdict": "proved"},
        {"format": ledger.FORMAT, "run_id": "d", "verdict": "error"},
    ]

    def test_filter_is_case_insensitive(self):
        proved = ledger.filter_by_verdict(self.RECORDS, "PROVED")
        assert [r["run_id"] for r in proved] == ["a", "c"]
        assert ledger.filter_by_verdict(self.RECORDS, "refuted") \
            == [self.RECORDS[1]]

    def test_filter_unknown_verdict_raises(self):
        with pytest.raises(ValueError, match="unknown verdict"):
            ledger.filter_by_verdict(self.RECORDS, "maybe")

    def test_render_json_roundtrips_and_limits(self):
        parsed = json.loads(ledger.render_json(self.RECORDS, limit=2))
        assert [r["run_id"] for r in parsed] == ["c", "d"]
        assert json.loads(ledger.render_json([])) == []

    def seed_ledger(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        for record in self.RECORDS:
            ledger.append_record(path, record)
        return path

    def test_cli_list_json(self, tmp_path, capsys):
        path = self.seed_ledger(tmp_path)
        assert main(["runs", "list", "--json", "--ledger", path]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert [r["run_id"] for r in parsed] == ["a", "b", "c", "d"]
        assert all(r["format"] == ledger.FORMAT for r in parsed)

    def test_cli_list_json_with_verdict_filter(self, tmp_path, capsys):
        path = self.seed_ledger(tmp_path)
        assert main(
            ["runs", "list", "--json", "--verdict", "PROVED", "--ledger", path]
        ) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert [r["run_id"] for r in parsed] == ["a", "c"]

    def test_cli_list_verdict_filters_table(self, tmp_path, capsys):
        path = self.seed_ledger(tmp_path)
        assert main(
            ["runs", "list", "--verdict", "error", "--ledger", path]
        ) == 0
        out = capsys.readouterr().out
        assert "d" in out and "proved" not in out

    def test_cli_list_unknown_verdict_exits_2(self, tmp_path, capsys):
        path = self.seed_ledger(tmp_path)
        assert main(
            ["runs", "list", "--verdict", "bogus", "--ledger", path]
        ) == 2
        assert "unknown verdict" in capsys.readouterr().err

    def test_cli_list_empty_json_is_valid(self, tmp_path, capsys):
        path = str(tmp_path / "absent.jsonl")
        assert main(["runs", "list", "--json", "--ledger", path]) == 0
        assert json.loads(capsys.readouterr().out) == []


class TestConcurrentAppends:
    def test_two_processes_never_tear_a_line(self, tmp_path):
        """The O_APPEND contract: two processes hammering append_record
        concurrently produce only whole lines — read_ledger sees every
        record and zero corrupt lines."""
        import os
        import subprocess
        import sys

        import repro

        package_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        path = str(tmp_path / "runs.jsonl")
        count = 200
        script = (
            "import sys\n"
            "from repro.obs import ledger\n"
            "path, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])\n"
            "for i in range(count):\n"
            "    ledger.append_record(path, {\n"
            "        'format': ledger.FORMAT,\n"
            "        'run_id': f'{tag}-{i}',\n"
            # Padding makes a torn write overwhelmingly likely to split a
            # line if O_APPEND atomicity were ever lost.
            "        'pad': 'x' * 512,\n"
            "    })\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, path, tag, str(count)],
                env=env,
            )
            for tag in ("alpha", "beta")
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        records, skipped = ledger.read_ledger(path)
        assert skipped == 0
        assert len(records) == 2 * count
        ids = {r["run_id"] for r in records}
        assert ids == {f"{tag}-{i}" for tag in ("alpha", "beta")
                       for i in range(count)}
