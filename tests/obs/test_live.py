"""Lifecycle tests for the live telemetry HTTP endpoint (``--serve``)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.__main__ import main
from repro.algorithms.set_consensus_from_family import consensus_spec
from repro.obs import events
from repro.obs.live import EventRing, StatusBoard, serve
from repro.obs.metrics import MetricsRegistry
from repro.runtime.explorer import Explorer


@pytest.fixture(autouse=True)
def clean_bus():
    events.set_sink(None)
    yield
    events.set_sink(None)


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


def get_json(url):
    status, body = get(url)
    assert status == 200
    return json.loads(body)


def live_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-live")
    ]


class TestEndpoints:
    def test_ephemeral_port_and_routes(self):
        session = serve(command="t", argv=["t"], registry=MetricsRegistry())
        try:
            assert session.port > 0
            payload = get_json(session.url("/status"))
            assert payload["command"] == "t"
            # No heartbeat yet: estimation fields are absent, not garbage.
            assert "explore" not in payload
            status, body = get(session.url("/metrics"))
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(session.url("/nope"))
            assert excinfo.value.code == 404
        finally:
            session.close()

    def test_metrics_matches_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("steps_total", pid=0).inc(3)
        registry.gauge("explore_frontier").set(7)
        session = serve(command="t", argv=[], registry=registry)
        try:
            _status, body = get(session.url("/metrics"))
            assert body == registry.render_prometheus()
        finally:
            session.close()

    def test_status_and_events_during_running_exploration(self):
        """Query the endpoints while an exploration is genuinely mid-walk
        (frontier pending), not before or after it."""
        spec = consensus_spec(2, 1, ["a", "b"])
        explorer = Explorer(spec, max_depth=40, strict=False,
                            heartbeat_interval=0.0)
        session = serve(command="explore", argv=["explore"],
                        registry=MetricsRegistry())
        try:
            walker = explorer.executions()
            next(walker)  # at least one execution done, frontier pending
            payload = get_json(session.url("/status"))
            assert payload["counters"]["steps"] > 0
            heartbeat = payload["explore"]
            assert heartbeat["executions"] >= 1
            assert heartbeat["frontier"] >= 1
            tail = get_json(session.url("/events?n=5"))
            assert tail["buffered"] > 0
            assert len(tail["events"]) == 5
            for _ in walker:
                pass
            done = get_json(session.url("/status"))["explore"]
            assert done["frontier"] == 0
        finally:
            session.close()

    @pytest.mark.parametrize("bad", ["abc", "0", "-3", "1.5"])
    def test_events_bad_tail_count_is_http_400(self, bad):
        """Non-integer, zero, or negative ?n= is a client error with a
        JSON body — never a traceback or a silently-defaulted 200."""
        session = serve(command="t", argv=[], registry=MetricsRegistry())
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(session.url(f"/events?n={bad}"))
            assert excinfo.value.code == 400
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert "must be" in payload["error"]
        finally:
            session.close()

    def test_all_endpoints_send_no_store(self):
        """Live snapshots must never be cached by an intermediary."""
        session = serve(command="t", argv=[], registry=MetricsRegistry())
        try:
            for path in ("/status", "/metrics", "/events?n=5"):
                with urllib.request.urlopen(session.url(path), timeout=5) as r:
                    assert r.headers["Cache-Control"] == "no-store", path
        finally:
            session.close()

    def test_close_is_idempotent_and_leaves_no_threads(self):
        before = threading.active_count()
        session = serve(command="t", argv=[], registry=MetricsRegistry())
        assert live_threads()
        session.close()
        session.close()
        assert not live_threads()
        assert threading.active_count() == before
        assert not events.is_enabled()  # subscriptions removed


class TestStatusBoard:
    def test_counts_and_spans(self):
        board = StatusBoard(command="x")
        board("step", {"pid": 0})
        board("step", {"pid": 1})
        board("span_start", {"span": "phase"})
        board("run_verdict", {"verdict": "ok"})
        snapshot = board.snapshot()
        assert snapshot["counters"]["steps"] == 2
        assert snapshot["phases"] == ["phase"]
        assert snapshot["verdicts"] == {"ok": 1}
        board("span_end", {"span": "phase"})
        assert board.snapshot()["phases"] == []

    def test_eta_fields_appear_only_with_heartbeat(self):
        board = StatusBoard()
        assert "explore" not in board.snapshot()
        board("explore_heartbeat", {"executions": 5, "frontier": 2})
        heartbeat = board.snapshot()["explore"]
        assert heartbeat["executions"] == 5
        assert "eta_seconds" not in heartbeat  # not yet estimable

    def test_event_ring_bounded_tail(self):
        ring = EventRing(capacity=4)
        for index in range(10):
            ring("e", {"index": index})
        assert len(ring) == 4
        tail = ring.tail(2)
        assert [e["index"] for e in tail] == [8, 9]


class TestCliLifecycle:
    def test_serve_cli_announces_and_shuts_down(self, capsys):
        """--serve 0 picks an ephemeral port, prints the URL on stderr,
        and tears the server down when the command completes."""
        assert main(["check", "1", "1", "--serve", "0"]) == 0
        err = capsys.readouterr().err
        assert "live telemetry: http://127.0.0.1:" in err
        assert not live_threads()
        assert not events.is_enabled()

    def test_serve_shuts_down_on_sigint(self, tmp_path, capsys):
        """A KeyboardInterrupt mid-exploration (the SIGINT path) still
        tears down the server and records the interrupted run."""
        fuse = {"steps": 0}

        def tripwire(name, fields):
            if name == "step":
                fuse["steps"] += 1
                if fuse["steps"] >= 3:
                    raise KeyboardInterrupt

        events.subscribe(tripwire)
        try:
            ledger_path = tmp_path / "runs.jsonl"
            code = main(
                ["explore", "--task", "consensus", "--n", "2", "--k", "1",
                 "--checkpoint", str(tmp_path / "ck.jsonl"),
                 "--serve", "0", "--ledger", str(ledger_path)]
            )
        finally:
            events.unsubscribe(tripwire)
        assert code == 3
        assert "interrupted" in capsys.readouterr().out
        assert not live_threads()
        record = json.loads(ledger_path.read_text().splitlines()[0])
        assert record["interrupted"] == "SIGINT"
        assert record["verdict"] == "inconclusive"
