"""Tests for the online coverage/ETA estimator."""

import pytest

from repro.obs.coverage import REMAINING_CAP, CoverageEstimator, estimate_remaining


class TestEstimateRemaining:
    def test_empty_frontier_is_done(self):
        assert estimate_remaining({}, 2.0, 5.0) == 0.0

    def test_no_branch_statistics_yet(self):
        assert estimate_remaining({0: 1}, 0.0, 0.0) is None
        assert estimate_remaining({0: 1}, 2.0, 0.0) is None

    def test_each_prefix_counts_at_least_once(self):
        # Prefixes at or below the mean leaf depth still are executions.
        assert estimate_remaining({7: 3}, 2.0, 5.0) == 3.0

    def test_exponential_weighting_by_depth(self):
        # One prefix at depth 2, leaves at depth 5, branch 2 -> 2**3 = 8.
        assert estimate_remaining({2: 1}, 2.0, 5.0) == pytest.approx(8.0)
        # Two of them double it; a deep one adds ~1.
        assert estimate_remaining({2: 2, 5: 1}, 2.0, 5.0) == pytest.approx(17.0)

    def test_branch_below_one_clamps_to_unit(self):
        # A sub-unity mean branch must not shrink remaining below the
        # frontier size.
        assert estimate_remaining({0: 4}, 0.5, 10.0) == 4.0

    def test_astronomical_trees_cap(self):
        assert estimate_remaining({0: 10}, 10.0, 400.0) == REMAINING_CAP


class TestCoverageEstimator:
    def test_first_heartbeat_has_no_rate(self):
        estimator = CoverageEstimator()
        out = estimator.update(10, 1.0, {1: 2}, 2.0, 4.0)
        assert "rate" not in out
        assert "eta_seconds" not in out
        assert "remaining_estimate" in out

    def test_rate_and_eta_after_second_heartbeat(self):
        estimator = CoverageEstimator()
        estimator.update(10, 1.0, {1: 2}, 2.0, 4.0)
        out = estimator.update(30, 2.0, {3: 4}, 2.0, 4.0)
        assert out["rate"] == pytest.approx(20.0)
        # depth 3, leaves 4, branch 2 -> 2 per prefix, 4 prefixes.
        assert out["remaining_estimate"] == pytest.approx(8.0)
        assert out["eta_seconds"] == pytest.approx(8.0 / 20.0)
        assert out["coverage"] == pytest.approx(30 / 38.0)

    def test_rate_is_smoothed(self):
        estimator = CoverageEstimator(alpha=0.5)
        estimator.update(0, 0.0, {0: 1}, 2.0, 3.0)
        estimator.update(10, 1.0, {0: 1}, 2.0, 3.0)   # instant 10/s
        out = estimator.update(50, 2.0, {0: 1}, 2.0, 3.0)  # instant 40/s
        assert out["rate"] == pytest.approx(25.0)  # 10 + 0.5 * (40 - 10)

    def test_finished_walk_reports_full_coverage(self):
        estimator = CoverageEstimator()
        estimator.update(5, 1.0, {1: 1}, 2.0, 3.0)
        out = estimator.update(9, 2.0, {}, 2.0, 3.0)
        assert out["remaining_estimate"] == 0.0
        assert out["coverage"] == pytest.approx(1.0)
        assert out["eta_seconds"] == 0.0

    def test_clock_going_backwards_keeps_last_rate(self):
        estimator = CoverageEstimator()
        estimator.update(10, 2.0, {0: 1}, 2.0, 3.0)
        estimator.update(20, 3.0, {0: 1}, 2.0, 3.0)
        before = estimator.rate
        out = estimator.update(25, 2.5, {0: 1}, 2.0, 3.0)
        assert estimator.rate == before
        assert out["rate"] == pytest.approx(before)
