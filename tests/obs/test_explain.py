"""Tests for the witness shrinker and renderers (``repro.obs.explain``)."""

import pytest

from repro.algorithms.consensus_from_n_consensus import (
    partition_set_consensus_spec,
)
from repro.obs.explain import (
    StepView,
    WitnessView,
    ddmin,
    lane_diagram,
    lanes_html,
    lanes_page,
    narrative,
    resolve_witness_target,
    run_explain,
    shrink_execution,
    view_from_execution,
    view_from_record,
)
from repro.obs.witness import capture_witnesses, read_witness, witness_context
from repro.runtime.explorer import find_execution

INPUTS6 = ["a", "b", "c", "d", "e", "f"]
SPEC6 = {"builder": "n-consensus-partition", "n": 2, "inputs": INPUTS6}
PRED3 = {"name": "distinct-outputs-at-least", "count": 3}


def spec6():
    return partition_set_consensus_spec(2, INPUTS6)


def hunt6():
    return find_execution(
        spec6(), lambda e: len(e.distinct_outputs()) >= 3, max_depth=10
    )


def archive6(directory):
    """Capture the Common2-point witness into ``directory``; returns path."""
    with capture_witnesses(str(directory)) as store:
        with witness_context(
            spec=SPEC6, predicate=PRED3, label="baseline forced to 3"
        ):
            hunt6()
    return store.captured[0]


class TestDdmin:
    def test_finds_exact_minimal_subset(self):
        minimal, _tests = ddmin(
            list(range(10)), lambda c: 3 in c and 7 in c
        )
        assert minimal == [3, 7]

    def test_preserves_order(self):
        minimal, _ = ddmin(
            [5, 1, 9, 2], lambda c: 9 in c and 5 in c
        )
        assert minimal == [5, 9]

    def test_rejects_failing_input(self):
        with pytest.raises(ValueError, match="does not pass"):
            ddmin([1, 2, 3], lambda c: 99 in c)

    def test_single_item_input(self):
        assert ddmin([1], lambda c: bool(c))[0] == [1]

    def test_result_is_one_minimal(self):
        items = list(range(12))
        test = lambda c: sum(c) >= 30  # noqa: E731
        minimal, _ = ddmin(items, test)
        assert test(minimal)
        for index in range(len(minimal)):
            assert not test(minimal[:index] + minimal[index + 1:])

    def test_deterministic(self):
        test = lambda c: sum(c) >= 17 and 4 in c  # noqa: E731
        first = ddmin(list(range(11)), test)
        second = ddmin(list(range(11)), test)
        assert first == second

    def test_memoizes_repeat_candidates(self):
        calls = []

        def counted(candidate):
            calls.append(tuple(candidate))
            return 3 in candidate

        _minimal, tests = ddmin(list(range(8)), counted)
        assert tests == len(calls) == len(set(calls))


class TestShrinkExecution:
    def predicate(self, execution):
        return len(execution.distinct_outputs()) >= 3

    def test_shrunk_no_longer_than_original_and_predicate_holds(self):
        execution = hunt6()
        result = shrink_execution(spec6(), execution, self.predicate)
        assert result.min_length <= result.original_length
        assert result.removed == result.original_length - result.min_length
        assert self.predicate(result.execution)

    def test_one_minimal_over_replay(self):
        execution = hunt6()
        result = shrink_execution(spec6(), execution, self.predicate)
        for index in range(len(result.decisions)):
            candidate = (
                result.decisions[:index] + result.decisions[index + 1:]
            )
            try:
                replayed = spec6().replay(candidate).finalize()
            except Exception:
                continue  # dropping the decision breaks the replay: minimal
            assert not self.predicate(replayed)

    def test_deterministic_across_runs(self):
        first = shrink_execution(spec6(), hunt6(), self.predicate)
        second = shrink_execution(spec6(), hunt6(), self.predicate)
        assert first.decisions == second.decisions

    def test_bad_witness_raises(self):
        execution = hunt6()
        with pytest.raises(ValueError, match="does not satisfy"):
            shrink_execution(spec6(), execution, lambda e: False)

    def test_emits_shrink_event(self):
        from repro.obs import events

        seen = []

        def listener(name, fields):
            if name == "witness_shrunk":
                seen.append(dict(fields))

        events.subscribe(listener)
        try:
            result = shrink_execution(spec6(), hunt6(), self.predicate)
        finally:
            events.unsubscribe(listener)
        (fields,) = seen
        assert fields["min_length"] == result.min_length
        assert fields["removed"] == result.removed


class TestViews:
    def test_live_and_archived_views_render_same_lanes(self, tmp_path):
        path = archive6(tmp_path)
        (record,) = read_witness(path)[0]
        from repro.obs.witness import replay_witness, resolve_spec

        live = view_from_execution(replay_witness(record, resolve_spec(record)))
        archived = view_from_record(record)
        assert [v.cell() for v in live.views] == [
            v.cell() for v in archived.views
        ]
        assert live.outputs == archived.outputs
        assert live.statuses == archived.statuses

    def test_crash_events_interleave(self):
        view = WitnessView(
            views=[
                StepView(kind="step", pid=0, target="r", method="w",
                         args=("'x'",), response="None"),
                StepView(kind="crash", pid=1),
            ],
            pids=[0, 1],
            outputs={0: "'x'"},
            statuses={0: "done", 1: "crashed"},
        )
        diagram = lane_diagram(view)
        assert "CRASH" in diagram
        text = narrative(view)
        assert "p1 crashes after taking 0 steps" in text
        assert "p1 crashed before deciding." in text

    def test_recovery_events_interleave(self):
        view = WitnessView(
            views=[
                StepView(kind="step", pid=0, target="t", method="tas",
                         args=(), response="0"),
                StepView(kind="crash", pid=0),
                StepView(kind="recover", pid=0),
                StepView(kind="step", pid=0, target="t", method="tas",
                         args=(), response="1"),
            ],
            pids=[0, 1],
            outputs={0: "'F'"},
            statuses={0: "done", 1: "pending"},
        )
        diagram = lane_diagram(view)
        assert "CRASH" in diagram and "RECOVER" in diagram
        # The reborn process's steps land back in its own lane.
        recover_line = next(
            line for line in diagram.splitlines() if "RECOVER" in line
        )
        assert recover_line.index("RECOVER") < len(diagram.splitlines()[0])
        text = narrative(view)
        assert "it will come back" in text
        assert "p0 recovers with amnesia" in text
        assert "shared objects keep their state" in text

    def test_crash_without_recovery_reads_as_permanent(self):
        view = WitnessView(
            views=[StepView(kind="crash", pid=1)],
            pids=[0, 1],
            outputs={},
            statuses={0: "pending", 1: "crashed"},
        )
        text = narrative(view)
        assert "it never moves again" in text

    def test_live_view_carries_recovery_events(self):
        from repro.algorithms.election import announce_election_spec
        from repro.runtime.execution import CRASH_CHOICE, RECOVER_CHOICE
        from repro.runtime.scheduler import ScriptedScheduler

        execution = announce_election_spec(2).run(
            ScriptedScheduler(
                [(0, 0), (0, CRASH_CHOICE), (0, RECOVER_CHOICE),
                 (0, 0), (0, 0), (1, 0), (1, 0)]
            )
        )
        view = view_from_execution(execution)
        kinds = [v.kind for v in view.views]
        assert kinds.count("crash") == 1
        assert kinds.count("recover") == 1
        assert kinds.index("crash") < kinds.index("recover")
        html = lanes_html(view)
        assert '<td class="recover">RECOVER</td>' in html


class TestRenderers:
    def view(self):
        return view_from_execution(hunt6())

    def test_lane_diagram_shape(self):
        diagram = lane_diagram(self.view())
        lines = diagram.splitlines()
        assert "p0" in lines[0] and "p5" in lines[0]
        assert any("=>" in line for line in lines)  # outcome row
        assert any(". " in line for line in lines)  # idle ticks

    def test_lane_diagram_deterministic(self):
        assert lane_diagram(self.view()) == lane_diagram(self.view())

    def test_narrative_mentions_steps_and_decision_set(self):
        text = narrative(self.view())
        assert "applies" in text and "observes" in text
        assert "Decision set:" in text and "3 distinct values" in text

    def test_lanes_html_escapes_and_structures(self):
        html = lanes_html(self.view(), caption="a <caption>")
        assert html.startswith('<table class="lanes">')
        assert "a &lt;caption&gt;" in html
        assert '<td class="op">' in html
        assert '<tr class="outcome">' in html

    def test_lanes_page_is_standalone(self):
        page = lanes_page(self.view(), title="t")
        assert page.startswith("<!DOCTYPE html>")
        assert "table.lanes" in page  # CSS inlined


class TestRunExplain:
    def test_explains_bundle_end_to_end(self, tmp_path):
        path = archive6(tmp_path)
        lines = []
        assert run_explain(path, out=lines.append) == 0
        text = "\n".join(lines)
        assert "fingerprint verified" in text
        assert "1-minimal" in text
        assert "Decision set:" in text

    def test_byte_stable_across_invocations(self, tmp_path):
        path = archive6(tmp_path)
        first, second = [], []
        assert run_explain(path, out=first.append) == 0
        assert run_explain(path, out=second.append) == 0
        assert first == second

    def test_shrunk_strictly_no_longer(self, tmp_path):
        path = archive6(tmp_path)
        (record,) = read_witness(path)[0]
        original = len(record["trace"]["decisions"])
        lines = []
        assert run_explain(path, out=lines.append) == 0
        shrunk_line = next(line for line in lines if line.startswith("shrunk:"))
        min_length = int(shrunk_line.split("->")[1].split()[0])
        assert min_length <= original

    def test_no_shrink_renders_original(self, tmp_path):
        path = archive6(tmp_path)
        lines = []
        assert run_explain(path, shrink=False, out=lines.append) == 0
        assert not any(line.startswith("shrunk:") for line in lines)

    def test_html_output(self, tmp_path):
        path = archive6(tmp_path)
        html_out = tmp_path / "lanes.html"
        assert run_explain(path, html_out=str(html_out), out=lambda _: None) == 0
        page = html_out.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert 'class="lanes"' in page

    def test_unknown_target_exits_two(self, tmp_path):
        lines = []
        code = run_explain(
            "no-such-thing",
            ledger_path=str(tmp_path / "runs.jsonl"),
            out=lines.append,
        )
        assert code == 2
        assert any("explain:" in line for line in lines)

    def test_missing_provenance_falls_back_to_archived_steps(self, tmp_path):
        with capture_witnesses(str(tmp_path)) as store:
            hunt6()  # no witness_context: bundle has no spec/predicate
        lines = []
        assert run_explain(store.captured[0], out=lines.append) == 0
        text = "\n".join(lines)
        assert "rendering the archived steps without replay" in text
        assert "Decision set:" in text


class TestResolveTarget:
    def test_existing_file_wins(self, tmp_path):
        bundle = tmp_path / "w.jsonl"
        bundle.write_text("{}\n")
        assert resolve_witness_target(str(bundle)) == [str(bundle)]

    def test_run_id_resolves_through_ledger(self, tmp_path):
        from repro.obs import ledger as run_ledger

        ledger_path = str(tmp_path / "runs.jsonl")
        recorder = run_ledger.begin_run(path=ledger_path, command="test")
        run_ledger.annotate(witnesses=["wit/a.jsonl", "wit/b.jsonl"])
        run_ledger.finish_run(0)
        paths = resolve_witness_target(recorder.run_id, ledger_path)
        assert paths == ["wit/a.jsonl", "wit/b.jsonl"]

    def test_run_without_witnesses_raises(self, tmp_path):
        from repro.obs import ledger as run_ledger

        ledger_path = str(tmp_path / "runs.jsonl")
        recorder = run_ledger.begin_run(path=ledger_path, command="test")
        run_ledger.finish_run(0)
        with pytest.raises(ValueError, match="no captured witnesses"):
            resolve_witness_target(recorder.run_id, ledger_path)
