"""Tests for execution-set digest streams (``repro.obs.execset``)."""

import json

import pytest

from repro.algorithms.set_consensus_from_family import consensus_spec
from repro.obs import execset
from repro.obs import ledger
from repro.runtime.explorer import Explorer

INPUTS = ["v0", "v1"]


def tiny_spec():
    """2-process consensus from O(2, 1): small, fault-free, fast."""
    return consensus_spec(2, 1, INPUTS)


def explore_all(execset_recorder=None, max_depth=200):
    explorer = Explorer(
        tiny_spec(), max_depth=max_depth, strict=False,
        execset=execset_recorder,
    )
    return list(explorer.executions())


@pytest.fixture(autouse=True)
def _no_dangling_recorder():
    ledger.abandon_run()
    yield
    ledger.abandon_run()


class TestDigestAlgebra:
    def test_empty_set_is_zero(self):
        assert execset.set_digest([]) == execset.ZERO_DIGEST

    def test_order_independent(self):
        ids = ["aa", "bb", "cc"]
        assert execset.set_digest(ids) == execset.set_digest(reversed(ids))

    def test_duplicates_do_not_double_fold(self):
        assert execset.set_digest(["aa", "bb", "aa"]) == \
            execset.set_digest(["aa", "bb"])

    def test_fold_is_involutive(self):
        """XOR folding the same id twice cancels — the property that
        makes overlap-tolerant merging possible at all."""
        once = execset.fold_digest(execset.ZERO_DIGEST, "aa")
        assert execset.fold_digest(once, "aa") == execset.ZERO_DIGEST

    def test_merge_of_disjoint_shards_is_union(self):
        a, b = ["aa", "bb"], ["cc"]
        assert execset.merge_digests(
            execset.set_digest(a), execset.set_digest(b)
        ) == execset.set_digest(a + b)

    def test_short_digest_handles_missing(self):
        assert execset.short_digest(None) == "n/a"
        assert execset.short_digest("") == "n/a"
        assert execset.short_digest("ab" * 32) == "ab" * (
            execset.SHORT_DIGEST_LENGTH // 2
        )


class TestExecutionId:
    def test_live_equals_replayed(self):
        spec = tiny_spec()
        execution = explore_all()[0]
        replayed = spec.replay(execution.full_decisions).finalize()
        assert execset.execution_id(replayed) == \
            execset.execution_id(execution)

    def test_distinct_executions_distinct_ids(self):
        ids = {execset.execution_id(e) for e in explore_all()}
        assert len(ids) == len(explore_all())


class TestRecordFor:
    def test_fields(self):
        spec = tiny_spec()
        execution = explore_all()[0]
        system = spec.replay(execution.full_decisions)
        system.finalize()
        record = execset.record_for(
            execution, system=system, value_alphabet=INPUTS
        )
        assert record["id"] == execset.execution_id(execution)
        assert record["depth"] == len(execution.full_decisions)
        # Tuples in memory, arrays on disk: JSON writes both identically.
        assert [list(d) for d in record["decisions"]] == [
            [pid, choice] for pid, choice in execution.full_decisions
        ]
        assert record["distinct"] == len(execution.distinct_outputs())
        assert record["done"] is True
        assert record["crashes"] == 0 and record["recoveries"] == 0
        assert len(record["config"]) == execset.FINGERPRINT_LENGTH
        assert len(record["canonical"]) == execset.FINGERPRINT_LENGTH

    def test_without_system_omits_fingerprints(self):
        record = execset.record_for(explore_all()[0])
        assert "config" not in record and "canonical" not in record


class TestRecorderRoundtrip:
    def write_stream(self, tmp_path, name="a.jsonl", **kwargs):
        recorder = execset.ExecutionSetRecorder(
            path=str(tmp_path / name),
            spec_meta={"task": "consensus", "n": 2, "k": 1},
            value_alphabet=INPUTS,
            **kwargs,
        )
        explore_all(execset_recorder=recorder)
        recorder.write()
        return recorder

    def test_roundtrip_and_consistency(self, tmp_path):
        recorder = self.write_stream(tmp_path)
        parsed = execset.read_execset(str(tmp_path / "a.jsonl"))
        assert parsed.spec == {"task": "consensus", "n": 2, "k": 1}
        assert parsed.own_digest == recorder.digest
        assert parsed.merged_digest == recorder.merged_digest
        assert set(parsed.records) == {r["id"] for r in recorder.records}
        assert parsed.consistent
        assert not parsed.partial
        assert parsed.skipped == 0

    def test_observe_dedupes(self, tmp_path):
        recorder = execset.ExecutionSetRecorder(path=str(tmp_path / "d.jsonl"))
        spec = tiny_spec()
        execution = explore_all()[0]
        system = spec.replay(execution.full_decisions)
        system.finalize()
        recorder.observe(execution, system)
        recorder.observe(execution, system)
        assert recorder.total_records == 1

    def test_byte_stable(self, tmp_path):
        """Identical explorations write byte-identical artifacts — the
        file embeds no run id, path, or wall-clock."""
        self.write_stream(tmp_path, "one.jsonl")
        self.write_stream(tmp_path, "two.jsonl")
        assert (tmp_path / "one.jsonl").read_bytes() == \
            (tmp_path / "two.jsonl").read_bytes()

    def test_base_digest_folds_into_merged(self, tmp_path):
        full = self.write_stream(tmp_path, "full.jsonl")
        # Pretend the first half came from a previous session.
        half_ids = [r["id"] for r in full.records[: len(full.records) // 2]]
        base = execset.set_digest(half_ids)
        resumed = execset.ExecutionSetRecorder(
            path=str(tmp_path / "resumed.jsonl"),
            base_digest=base,
            base_records=len(half_ids),
        )
        spec = tiny_spec()
        for record in full.records[len(half_ids):]:
            decisions = [tuple(d) for d in record["decisions"]]
            system = spec.replay(decisions)
            resumed.observe(system.finalize(), system)
        assert resumed.merged_digest == full.digest
        parsed = execset.read_execset(str(resumed.write()))
        assert parsed.partial
        assert parsed.merged_digest == full.digest
        assert parsed.base_records == len(half_ids)

    def test_checkpoint_state_and_ledger_summary(self, tmp_path):
        recorder = self.write_stream(tmp_path)
        state = recorder.checkpoint_state()
        assert state == {
            "digest": recorder.merged_digest,
            "records": recorder.total_records,
        }
        summary = recorder.ledger_summary()
        assert summary["digest"] == recorder.merged_digest
        assert summary["records"] == recorder.total_records
        assert summary["path"].endswith("a.jsonl")

    def test_write_annotates_active_run(self, tmp_path):
        ledger.begin_run(
            str(tmp_path / "runs.jsonl"), "explore", ["explore"]
        )
        self.write_stream(tmp_path)
        record = ledger.finish_run(0)
        assert record["execset"]["records"] > 0
        assert len(record["execset"]["digest"]) == 64


class TestTolerantReads:
    def test_read_skips_junk_lines(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text(
            json.dumps({"format": execset.FORMAT, "spec": {}}) + "\n"
            "{broken\n"
            + json.dumps({"id": "aa", "depth": 1, "decisions": [[0, 0]]})
            + "\n[1, 2]\n"
        )
        parsed = execset.read_execset(str(path))
        assert set(parsed.records) == {"aa"}
        assert parsed.skipped == 2
        assert not parsed.footer
        # No footer to check against: vacuously consistent (a truncated
        # write is reported through ``footer``/``skipped``, not here).
        assert parsed.consistent

    def test_inconsistent_when_footer_disagrees(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": execset.FORMAT, "spec": {}}) + "\n"
            + json.dumps({"id": "aa", "depth": 1, "decisions": [[0, 0]]})
            + "\n"
            + json.dumps(
                {"format": execset.FORMAT, "footer": True, "records": 1,
                 "digest": "f" * 64}
            )
            + "\n"
        )
        assert not execset.read_execset(str(path)).consistent

    def test_peek_footer_missing_file(self, tmp_path):
        assert execset.peek_footer(str(tmp_path / "absent.jsonl")) is None

    def test_peek_footer_reads_last_line(self, tmp_path):
        recorder = execset.ExecutionSetRecorder(path=str(tmp_path / "p.jsonl"))
        spec = tiny_spec()
        execution = explore_all()[0]
        system = spec.replay(execution.full_decisions)
        system.finalize()
        recorder.observe(execution, system)
        recorder.write()
        footer = execset.peek_footer(str(tmp_path / "p.jsonl"))
        assert footer["footer"] is True
        assert footer["records"] == 1
        assert footer["merged_digest"] == recorder.merged_digest

    def test_merge_records_union_with_overlap(self, tmp_path):
        executions = explore_all()
        third = max(1, len(executions) // 3)
        spec = tiny_spec()

        def shard(name, chunk):
            recorder = execset.ExecutionSetRecorder(
                path=str(tmp_path / name)
            )
            for execution in chunk:
                system = spec.replay(execution.full_decisions)
                system.finalize()
                recorder.observe(execution, system)
            recorder.write()
            return execset.read_execset(str(tmp_path / name))

        # Overlapping shards: the middle third appears in both.
        a = shard("a.jsonl", executions[: 2 * third])
        b = shard("b.jsonl", executions[third:])
        records, digest = execset.merge_records([a, b])
        all_ids = {execset.execution_id(e) for e in executions}
        assert set(records) == all_ids
        assert digest == execset.set_digest(all_ids)
