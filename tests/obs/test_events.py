"""Tests for the structured event bus and its sinks."""

import io
import json

import pytest

from repro.algorithms.helpers import build_spec
from repro.obs import events
from repro.obs.events import (
    NULL_SINK,
    JsonlSink,
    NullSink,
    RingBufferSink,
    read_jsonl,
)
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RoundRobinScheduler


@pytest.fixture(autouse=True)
def clean_bus():
    """Every test starts and ends with a pristine (disabled) bus."""
    events.set_sink(None)
    yield
    events.set_sink(None)
    assert not events.is_enabled()


def two_process_spec():
    def program(pid, value):
        yield invoke("r", "write", value)
        got = yield invoke("r", "read")
        return got

    return build_spec({"r": RegisterSpec()}, program, ["a", "b"])


class TestBus:
    def test_disabled_by_default(self):
        assert events.get_sink() is NULL_SINK
        assert not events.is_enabled()

    def test_set_sink_enables_and_returns_previous(self):
        sink = RingBufferSink()
        previous = events.set_sink(sink)
        assert previous is NULL_SINK
        assert events.is_enabled()
        assert events.get_sink() is sink

    def test_use_sink_restores(self):
        sink = RingBufferSink()
        with events.use_sink(sink):
            events.emit("ping", value=1)
        assert not events.is_enabled()
        assert sink.events == [("ping", {"value": 1})]

    def test_subscriber_receives_events(self):
        seen = []
        fn = events.subscribe(lambda name, fields: seen.append((name, fields)))
        try:
            assert events.is_enabled()
            events.emit("tick", n=3)
        finally:
            events.unsubscribe(fn)
        assert seen == [("tick", {"n": 3})]
        assert not events.is_enabled()

    def test_unsubscribe_is_idempotent(self):
        fn = lambda name, fields: None  # noqa: E731
        events.subscribe(fn)
        events.unsubscribe(fn)
        events.unsubscribe(fn)
        assert not events.is_enabled()

    def test_emit_without_consumers_is_a_noop(self):
        events.emit("dropped", x=1)  # must not raise


class TestRingBufferSink:
    def test_capacity_bound(self):
        sink = RingBufferSink(capacity=3)
        with events.use_sink(sink):
            for i in range(10):
                events.emit("e", i=i)
        assert len(sink) == 3
        assert [fields["i"] for _, fields in sink.events] == [7, 8, 9]

    def test_clear(self):
        sink = RingBufferSink()
        with events.use_sink(sink):
            events.emit("e")
        sink.clear()
        assert sink.events == []


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        with events.use_sink(sink):
            events.emit("step", pid=0, object="r", method="read")
            events.emit("schedule_explored", depth=4)
        sink.close()
        back = list(read_jsonl(str(path)))
        assert back == [
            ("step", {"pid": 0, "object": "r", "method": "read"}),
            ("schedule_explored", {"depth": 4}),
        ]

    def test_sequence_numbers_are_monotonic(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        with events.use_sink(sink):
            for _ in range(5):
                events.emit("e")
        sink.close()
        indexes = [
            json.loads(line)["i"] for line in path.read_text().splitlines()
        ]
        assert indexes == [0, 1, 2, 3, 4]

    def test_accepts_open_file_object(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        with events.use_sink(sink):
            events.emit("e", x=1)
        sink.close()  # must not close a file it does not own
        assert json.loads(buffer.getvalue())["x"] == 1

    def test_unserializable_values_fall_back_to_repr(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        with events.use_sink(sink):
            events.emit("e", value=object())
        sink.close()
        (record,) = list(read_jsonl(str(path)))
        assert record[0] == "e"
        assert "object object" in record[1]["value"]

    def test_reader_skips_blank_and_foreign_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '\n{"not-an-event": 1}\nnot json\n{"i": 0, "event": "ok"}\n'
        )
        assert list(read_jsonl(str(path))) == [("ok", {})]


class TestInstrumentedRun:
    def test_run_emits_step_and_run_end_events(self):
        sink = RingBufferSink()
        with events.use_sink(sink):
            two_process_spec().run(RoundRobinScheduler())
        names = [name for name, _ in sink.events]
        assert names.count("step") == 4  # 2 processes x 2 operations
        assert names.count("run_end") == 1
        run_end = dict(sink.events)[("run_end")]
        assert run_end["scheduler"] == "RoundRobinScheduler"
        assert run_end["quiescent"] is True
        steps = [fields for name, fields in sink.events if name == "step"]
        assert {s["object"] for s in steps} == {"r"}
        assert {s["method"] for s in steps} == {"write", "read"}

    def test_null_sink_path_records_nothing(self):
        """Regression: with the default NullSink the bus must never even
        call ``emit`` — the hot path is a single flag check."""

        calls = []

        class CountingNullSink(NullSink):
            def emit(self, name, fields):  # pragma: no cover - must not run
                calls.append(name)

        events.set_sink(CountingNullSink())
        assert not events.is_enabled()
        execution = two_process_spec().run(RoundRobinScheduler())
        assert execution.all_done()
        assert calls == []
