"""Unit tests for schedulers."""

import pytest

from repro.objects.counter import CounterSpec
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import (
    CrashingScheduler,
    PriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    SoloScheduler,
)
from repro.runtime.system import SystemSpec


def counting_spec(n_processes: int, steps_each: int = 3):
    """Each process increments a shared counter `steps_each` times and
    returns the value it read last."""

    def program(pid):
        def run():
            value = None
            for _ in range(steps_each):
                yield invoke("c", "inc")
            value = yield invoke("c", "read")
            return value

        return run

    return SystemSpec(
        {"c": CounterSpec()}, [program(pid) for pid in range(n_processes)]
    )


class TestRoundRobin:
    def test_cycles_fairly(self):
        execution = counting_spec(3, steps_each=2).run(RoundRobinScheduler())
        assert execution.schedule[:6] == [0, 1, 2, 0, 1, 2]

    def test_skips_finished_processes(self):
        execution = counting_spec(2, steps_each=1).run(RoundRobinScheduler())
        assert execution.all_done()
        # Total steps: 2 incs + 2 reads.
        assert len(execution) == 4

    def test_start_offset(self):
        execution = counting_spec(3, steps_each=1).run(RoundRobinScheduler(start=2))
        assert execution.schedule[0] == 2


class TestRandom:
    def test_same_seed_same_schedule(self):
        first = counting_spec(3).run(RandomScheduler(7))
        second = counting_spec(3).run(RandomScheduler(7))
        assert first.schedule == second.schedule
        assert first.outputs == second.outputs

    def test_different_seeds_differ_somewhere(self):
        schedules = {
            tuple(counting_spec(3).run(RandomScheduler(seed)).schedule)
            for seed in range(10)
        }
        assert len(schedules) > 1

    def test_all_processes_complete(self):
        execution = counting_spec(4).run(RandomScheduler(1))
        assert execution.all_done()


class TestScripted:
    def test_replays_pid_sequence(self):
        execution = counting_spec(2, steps_each=1).run(
            ScriptedScheduler([1, 1, 0, 0])
        )
        assert execution.schedule == [1, 1, 0, 0]

    def test_stops_when_script_ends(self):
        execution = counting_spec(2, steps_each=2).run(ScriptedScheduler([0]))
        assert len(execution) == 1
        assert execution.statuses[1] is ProcessStatus.POISED

    def test_accepts_decision_pairs(self):
        execution = counting_spec(1, steps_each=1).run(
            ScriptedScheduler([(0, 0), (0, 0)])
        )
        assert execution.all_done()


class TestPriorityAndSolo:
    def test_priority_runs_highest_first(self):
        execution = counting_spec(3, steps_each=1).run(
            PriorityScheduler({0: 1, 1: 3, 2: 2})
        )
        assert execution.schedule == [1, 1, 2, 2, 0, 0]

    def test_solo_runs_in_given_order(self):
        execution = counting_spec(3, steps_each=1).run(SoloScheduler([2, 0, 1]))
        assert execution.schedule == [2, 2, 0, 0, 1, 1]

    def test_solo_outputs_reflect_sequencing(self):
        execution = counting_spec(3, steps_each=1).run(SoloScheduler([0, 1, 2]))
        # Each process reads after its own inc: counts 1, 2, 3.
        assert execution.outputs == {0: 1, 1: 2, 2: 3}


class TestCrashing:
    def test_crash_at_step(self):
        scheduler = CrashingScheduler(RoundRobinScheduler(), crash_at={0: 1})
        execution = counting_spec(2, steps_each=2).run(scheduler)
        assert execution.statuses[0] is ProcessStatus.CRASHED
        assert execution.statuses[1] is ProcessStatus.DONE
        assert 0 not in execution.outputs

    def test_crash_at_zero_prevents_all_steps(self):
        scheduler = CrashingScheduler(RoundRobinScheduler(), crash_at={1: 0})
        execution = counting_spec(2, steps_each=2).run(scheduler)
        assert all(step.pid == 0 for step in execution.steps)

    def test_survivors_unaffected(self):
        scheduler = CrashingScheduler(RandomScheduler(3), crash_at={0: 2, 2: 4})
        execution = counting_spec(3, steps_each=2).run(scheduler)
        assert execution.statuses[1] is ProcessStatus.DONE

    def test_instance_reusable_across_systems(self):
        """One instance must drive any number of fresh systems identically:
        ``crash_at`` is never mutated, the step count comes off the live
        system (regression: the map used to be consumed on first use)."""
        scheduler = CrashingScheduler(RoundRobinScheduler(), crash_at={0: 1})
        first = counting_spec(2, steps_each=2).run(scheduler)
        second = counting_spec(2, steps_each=2).run(scheduler)
        assert scheduler.crash_at == {0: 1}
        assert first.crashes == second.crashes == [(1, 0)]
        assert first.schedule == second.schedule

    def test_describe_includes_crash_map(self):
        scheduler = CrashingScheduler(RoundRobinScheduler(), crash_at={1: 3, 0: 2})
        assert scheduler.describe() == (
            "CrashingScheduler({p0@2, p1@3}, base=RoundRobinScheduler)"
        )
