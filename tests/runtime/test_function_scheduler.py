"""Unit tests for the FunctionScheduler adapter and chooser delegation."""

from repro.algorithms.helpers import build_spec
from repro.objects.register import RegisterSpec
from repro.objects.set_consensus import SetConsensusSpec
from repro.runtime.ops import invoke
from repro.runtime.scheduler import CrashingScheduler, FunctionScheduler
from repro.runtime.system import SystemSpec


def write_spec(n):
    def program(pid, value):
        yield invoke("r", "write", value)
        return value

    return build_spec({"r": RegisterSpec()}, program, [f"v{i}" for i in range(n)])


class TestFunctionScheduler:
    def test_custom_pid_selection(self):
        scheduler = FunctionScheduler(lambda system: max(system.enabled_pids(), default=None))
        execution = write_spec(3).run(scheduler)
        assert execution.schedule == [2, 1, 0]

    def test_none_stops_run(self):
        calls = [0]

        def pick(system):
            calls[0] += 1
            return None if calls[0] > 1 else 0

        execution = write_spec(3).run(FunctionScheduler(pick))
        assert len(execution) == 1

    def test_default_chooser_picks_zero(self):
        def proposer(pid, value):
            decision = yield invoke("sc", "propose", value)
            return decision

        spec = build_spec({"sc": SetConsensusSpec(2, 2)}, proposer, ["a", "b"])
        scheduler = FunctionScheduler(
            lambda system: min(system.enabled_pids(), default=None)
        )
        execution = spec.run(scheduler)
        # Deterministic: choice 0 always -> second proposal's first-listed
        # outcome (adopt "a" per the canonical outcome ordering).
        assert execution.outputs[1] == "a"

    def test_custom_chooser_delegation(self):
        def proposer(pid, value):
            decision = yield invoke("sc", "propose", value)
            return decision

        spec = build_spec({"sc": SetConsensusSpec(2, 2)}, proposer, ["a", "b"])
        scheduler = FunctionScheduler(
            lambda system: min(system.enabled_pids(), default=None),
            chooser=lambda system, pid, n: 1,
        )
        execution = spec.run(scheduler)
        # Outcome index 1 of the second proposal extends the set and
        # returns the proposer's own value "b".
        assert execution.outputs[1] == "b"


class TestCrashingSchedulerDelegation:
    def test_chooser_passes_through(self):
        def proposer(pid, value):
            decision = yield invoke("sc", "propose", value)
            return decision

        spec = build_spec({"sc": SetConsensusSpec(2, 2)}, proposer, ["a", "b"])
        base = FunctionScheduler(
            lambda system: min(system.enabled_pids(), default=None),
            chooser=lambda system, pid, n: 1,
        )
        execution = spec.run(CrashingScheduler(base, crash_at={}))
        assert execution.outputs[1] == "b"
