"""Unit tests for SystemSpec / System step semantics."""

import pytest

from repro.errors import ProtocolError, SchedulingError
from repro.objects.register import RegisterSpec
from repro.objects.set_consensus import SetConsensusSpec
from repro.objects.consensus_object import NConsensusSpec
from repro.runtime.ops import invoke
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import RoundRobinScheduler
from repro.runtime.system import SystemSpec


def reader_writer_spec():
    def writer():
        yield invoke("r", "write", "w")
        return "wrote"

    def reader():
        value = yield invoke("r", "read")
        return value

    return SystemSpec({"r": RegisterSpec(initial="init")}, [writer, reader])


class TestConstruction:
    def test_processes_are_primed_at_build(self):
        system = reader_writer_spec().build()
        assert system.enabled_pids() == [0, 1]
        assert system.pending_operation(0) == invoke("r", "write", "w")

    def test_initial_object_state(self):
        system = reader_writer_spec().build()
        assert system.object_states["r"] == "init"

    def test_empty_program_list_rejected(self):
        with pytest.raises(ProtocolError):
            SystemSpec({"r": RegisterSpec()}, [])

    def test_fresh_builds_are_independent(self):
        spec = reader_writer_spec()
        first = spec.build()
        first.step(0)
        second = spec.build()
        assert second.object_states["r"] == "init"


class TestStepping:
    def test_step_applies_operation(self):
        system = reader_writer_spec().build()
        record = system.step(0)
        assert system.object_states["r"] == "w"
        assert record.pid == 0
        assert record.response is None

    def test_step_order_controls_read_result(self):
        system = reader_writer_spec().build()
        system.step(1)  # reader first
        system.step(0)
        execution = system.finalize()
        assert execution.outputs[1] == "init"

        system2 = reader_writer_spec().build()
        system2.step(0)
        system2.step(1)
        assert system2.finalize().outputs[1] == "w"

    def test_unknown_object_is_protocol_error(self):
        def lost():
            yield invoke("nope", "read")

        spec = SystemSpec({"r": RegisterSpec()}, [lost])
        system = spec.build()
        with pytest.raises(ProtocolError, match="unknown object"):
            system.step(0)

    def test_stepping_finished_process_rejected(self):
        system = reader_writer_spec().build()
        system.step(0)
        with pytest.raises(SchedulingError):
            system.step(0)

    def test_quiescence_detection(self):
        system = reader_writer_spec().build()
        assert not system.is_quiescent()
        system.step(0)
        system.step(1)
        assert system.is_quiescent()


class TestNondeterminism:
    def _spec(self):
        def proposer(value):
            def program():
                decision = yield invoke("sc", "propose", value)
                return decision

            return program

        return SystemSpec(
            {"sc": SetConsensusSpec(3, 2)},
            [proposer("a"), proposer("b")],
        )

    def test_outcomes_enumerated_without_commit(self):
        system = self._spec().build()
        system.step(0)
        outcomes = system.outcomes_for(1)
        assert len(outcomes) >= 2  # adopt 'a', or add 'b' and return either
        assert system.object_states["sc"][1] == 1  # still one proposal

    def test_choice_selects_outcome(self):
        spec = self._spec()
        first = spec.build()
        first.step(0)
        responses = set()
        for choice in range(len(first.outcomes_for(1))):
            system = spec.build()
            system.step(0)
            record = system.step(1, choice)
            responses.add(record.response)
        assert responses == {"a", "b"}

    def test_out_of_range_choice_rejected(self):
        system = self._spec().build()
        with pytest.raises(SchedulingError):
            system.step(0, choice=5)


class TestMisuseHang:
    def test_hanging_object_blocks_process(self):
        def greedy():
            yield invoke("c", "propose", 1)
            yield invoke("c", "propose", 2)
            return "done"

        spec = SystemSpec(
            {"c": NConsensusSpec(1, hang_on_misuse=True)}, [greedy]
        )
        system = spec.build()
        system.step(0)
        record = system.step(0)  # second propose exceeds the budget
        assert record.n_outcomes == 0
        assert system.processes[0].status is ProcessStatus.BLOCKED
        assert system.is_quiescent()

    def test_raising_object_propagates(self):
        def greedy():
            yield invoke("c", "propose", 1)
            yield invoke("c", "propose", 2)

        spec = SystemSpec({"c": NConsensusSpec(1)}, [greedy])
        system = spec.build()
        system.step(0)
        from repro.errors import IllegalOperationError

        with pytest.raises(IllegalOperationError):
            system.step(0)


class TestRunAndReplay:
    def test_run_to_quiescence(self):
        execution = reader_writer_spec().run(RoundRobinScheduler())
        assert execution.all_done()
        assert execution.outputs == {0: "wrote", 1: "w"}

    def test_replay_reproduces_decisions(self):
        spec = reader_writer_spec()
        execution = spec.run(RoundRobinScheduler())
        replayed = spec.replay(execution.decisions).finalize()
        assert replayed.outputs == execution.outputs
        assert replayed.schedule == execution.schedule

    def test_max_steps_stops_early(self):
        def spinner():
            while True:
                yield invoke("r", "read")

        spec = SystemSpec({"r": RegisterSpec()}, [spinner])
        execution = spec.run(RoundRobinScheduler(), max_steps=10)
        assert len(execution) == 10
        assert execution.statuses[0] is ProcessStatus.POISED

    def test_crash_removes_process(self):
        spec = reader_writer_spec()
        system = spec.build()
        system.crash(0)
        system.step(1)
        execution = system.finalize()
        assert execution.statuses[0] is ProcessStatus.CRASHED
        assert execution.outputs[1] == "init"
