"""Unit tests for the process abstraction."""

import pytest

from repro.errors import ProtocolError
from repro.runtime.ops import Annotation, invoke
from repro.runtime.process import Process, ProcessStatus


def writer_program():
    yield invoke("r", "write", 1)
    value = yield invoke("r", "read")
    return value


class TestPriming:
    def test_starts_pending(self):
        process = Process(0, writer_program)
        assert process.status is ProcessStatus.PENDING
        assert process.pending_operation is None

    def test_prime_exposes_first_operation(self):
        process = Process(0, writer_program)
        process.prime()
        assert process.status is ProcessStatus.POISED
        assert process.pending_operation == invoke("r", "write", 1)

    def test_prime_is_idempotent(self):
        process = Process(0, writer_program)
        process.prime()
        process.prime()
        assert process.pending_operation == invoke("r", "write", 1)

    def test_program_without_steps_finishes_on_prime(self):
        def silent():
            return 7
            yield  # pragma: no cover

        process = Process(0, silent)
        process.prime()
        assert process.status is ProcessStatus.DONE
        assert process.output == 7

    def test_non_generator_factory_rejected(self):
        process = Process(0, lambda: 42)
        with pytest.raises(ProtocolError, match="generator"):
            process.prime()


class TestDelivery:
    def test_deliver_advances_to_next_operation(self):
        process = Process(0, writer_program)
        process.prime()
        process.deliver(None)
        assert process.pending_operation == invoke("r", "read")

    def test_response_reaches_program(self):
        process = Process(0, writer_program)
        process.prime()
        process.deliver(None)
        process.deliver("stored")
        assert process.status is ProcessStatus.DONE
        assert process.output == "stored"

    def test_steps_are_counted(self):
        process = Process(0, writer_program)
        process.prime()
        process.deliver(None)
        process.deliver("x")
        assert process.steps_taken == 2

    def test_deliver_without_priming_rejected(self):
        process = Process(0, writer_program)
        with pytest.raises(ProtocolError):
            process.deliver(None)

    def test_deliver_after_done_rejected(self):
        process = Process(0, writer_program)
        process.prime()
        process.deliver(None)
        process.deliver("x")
        with pytest.raises(ProtocolError):
            process.deliver(None)


class TestAnnotations:
    def test_annotations_consumed_without_steps(self):
        def annotated():
            yield Annotation("mark", "before")
            yield invoke("r", "read")
            yield Annotation("mark", "after")
            return None

        process = Process(0, annotated)
        process.prime()
        assert [a.payload for a in process.fresh_annotations] == ["before"]
        assert process.pending_operation == invoke("r", "read")
        process.fresh_annotations.clear()
        process.deliver(0)
        assert [a.payload for a in process.fresh_annotations] == ["after"]
        assert process.status is ProcessStatus.DONE

    def test_yielding_garbage_rejected(self):
        def bad():
            yield "not an operation"

        process = Process(0, bad)
        with pytest.raises(ProtocolError, match="may only"):
            process.prime()


class TestCrashAndBlock:
    def test_crash_stops_process(self):
        process = Process(0, writer_program)
        process.prime()
        process.crash()
        assert process.status is ProcessStatus.CRASHED
        assert process.pending_operation is None
        assert not process.is_live

    def test_crash_after_done_is_noop(self):
        def silent():
            return 1
            yield  # pragma: no cover

        process = Process(0, silent)
        process.prime()
        process.crash()
        assert process.status is ProcessStatus.DONE

    def test_block_parks_forever(self):
        process = Process(0, writer_program)
        process.prime()
        process.block()
        assert process.status is ProcessStatus.BLOCKED
        assert not process.is_live
