"""Unit tests for execution traces and step records."""

from repro.algorithms.helpers import build_spec
from repro.objects.counter import CounterSpec
from repro.objects.register import RegisterSpec
from repro.runtime.execution import Execution, StepRecord
from repro.runtime.ops import invoke
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import ScriptedScheduler


def sample_execution():
    def program(pid, value):
        yield invoke("c", "inc")
        seen = yield invoke("c", "read")
        return seen

    spec = build_spec({"c": CounterSpec()}, program, ["a", "b"])
    return spec.run(ScriptedScheduler([0, 1, 0, 1]))


class TestDerivedViews:
    def test_schedule(self):
        execution = sample_execution()
        assert execution.schedule == [0, 1, 0, 1]

    def test_decisions_include_choices(self):
        execution = sample_execution()
        assert execution.decisions == [(0, 0), (1, 0), (0, 0), (1, 0)]

    def test_steps_by(self):
        execution = sample_execution()
        assert [s.index for s in execution.steps_by(0)] == [0, 2]

    def test_operations_on(self):
        execution = sample_execution()
        assert len(execution.operations_on("c")) == 4
        assert execution.operations_on("nothing") == []

    def test_distinct_outputs(self):
        execution = sample_execution()
        assert execution.distinct_outputs() == {2}

    def test_finished_pids_and_all_done(self):
        execution = sample_execution()
        assert execution.finished_pids() == [0, 1]
        assert execution.all_done()

    def test_max_steps_per_process(self):
        execution = sample_execution()
        assert execution.max_steps_per_process() == 2

    def test_len(self):
        assert len(sample_execution()) == 4


class TestRendering:
    def test_step_record_str(self):
        record = StepRecord(0, 1, invoke("r", "write", 5), None)
        assert "#0 p1: r.write(5) -> None" in str(record)

    def test_nondeterministic_step_marks_choice(self):
        record = StepRecord(3, 0, invoke("sc", "propose", "a"), "a", choice=1, n_outcomes=3)
        assert "[choice 1/3]" in str(record)

    def test_render_full(self):
        execution = sample_execution()
        text = execution.render()
        assert "#0 p0: c.inc() -> None" in text
        assert "p0: done -> 2" in text

    def test_render_truncated(self):
        execution = sample_execution()
        text = execution.render(limit=1)
        assert "3 more steps" in text


class TestEmptyExecution:
    def test_defaults(self):
        execution = Execution()
        assert execution.schedule == []
        assert execution.distinct_outputs() == set()
        assert execution.max_steps_per_process() == 0
        assert not execution.all_done() or execution.statuses == {}
