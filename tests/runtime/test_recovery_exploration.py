"""Tests for the crash-recovery adversary: ``RECOVER_CHOICE`` decisions,
``merge_fault_decisions``, amnesia semantics, and explorer branching with
``max_recoveries``."""

import pytest

from repro.objects.register import RegisterSpec
from repro.runtime.execution import (
    CRASH_CHOICE,
    RECOVER_CHOICE,
    merge_fault_decisions,
)
from repro.runtime.explorer import Explorer
from repro.runtime.ops import invoke
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import ScriptedScheduler
from repro.runtime.system import SystemSpec

FAULTS = (CRASH_CHOICE, RECOVER_CHOICE)


def two_step_spec(n_processes: int = 2):
    def program(pid):
        def run():
            yield invoke("r", "write", pid)
            seen = yield invoke("r", "read")
            return seen

        return run

    return SystemSpec({"r": RegisterSpec()}, [program(p) for p in range(n_processes)])


class TestSentinels:
    def test_recover_choice_is_distinct_negative_sentinel(self):
        assert RECOVER_CHOICE == -2
        assert RECOVER_CHOICE != CRASH_CHOICE
        assert RECOVER_CHOICE < 0  # never a real outcome choice


class TestMergeFaultDecisions:
    def test_crash_precedes_recovery_at_same_index(self):
        merged = merge_fault_decisions(
            [(1, 0)], crashes=[(0, 0)], recoveries=[(0, 0)]
        )
        assert merged == [(0, CRASH_CHOICE), (0, RECOVER_CHOICE), (1, 0)]

    def test_same_pid_chain_sequences_by_liveness(self):
        # crash p0, recover p0, crash p0 again — all between the same two
        # steps.  A naive crashes-first merge would re-crash a dead pid.
        merged = merge_fault_decisions(
            [], crashes=[(0, 0), (0, 0)], recoveries=[(0, 0)]
        )
        assert merged == [
            (0, CRASH_CHOICE),
            (0, RECOVER_CHOICE),
            (0, CRASH_CHOICE),
        ]

    def test_cross_pid_faults_drain_in_record_order(self):
        merged = merge_fault_decisions(
            [(2, 0)], crashes=[(0, 0), (0, 1)], recoveries=[(0, 1)]
        )
        assert merged == [
            (0, CRASH_CHOICE),
            (1, CRASH_CHOICE),
            (1, RECOVER_CHOICE),
            (2, 0),
        ]

    def test_recovery_of_never_crashed_pid_raises(self):
        with pytest.raises(ValueError, match="not.*crashed"):
            merge_fault_decisions([(0, 0)], crashes=[], recoveries=[(0, 1)])

    def test_double_crash_raises(self):
        with pytest.raises(ValueError, match="already crashed"):
            merge_fault_decisions(
                [], crashes=[(0, 0), (0, 0)], recoveries=[]
            )


class TestRecoverySemantics:
    def test_amnesia_restarts_program_but_keeps_shared_state(self):
        script = [
            (0, 0),               # p0 writes 0
            (0, CRASH_CHOICE),
            (0, RECOVER_CHOICE),
            (1, 0), (1, 0),       # p1 writes 1, reads 1
            (0, 0), (0, 0),       # reborn p0 re-runs: writes 0, reads 0
        ]
        execution = two_step_spec().run(ScriptedScheduler(script))
        assert execution.outputs == {0: 0, 1: 1}
        assert execution.statuses[0] is ProcessStatus.DONE
        assert execution.crashes == [(1, 0)]
        assert execution.recoveries == [(1, 0)]
        assert execution.recovered_pids() == [0]
        # The reborn process re-did its write from scratch: the register
        # saw p0's write twice (restart), not a resumed continuation.
        writes = [s for s in execution.steps if s.operation.method == "write"]
        assert [s.pid for s in writes] == [0, 1, 0]

    def test_recover_is_noop_on_live_process(self):
        system = two_step_spec().replay([(0, 0)])
        system.recover(0)  # running, not crashed
        assert system.trace.recoveries == []

    def test_recover_is_noop_on_done_process(self):
        system = two_step_spec().replay([(0, 0), (0, 0)])
        system.recover(0)
        assert system.trace.recoveries == []
        assert system.trace.outputs[0] == 0

    def test_full_decisions_replay_reproduces_recoveries(self):
        script = [
            (0, 0),
            (0, CRASH_CHOICE),
            (0, RECOVER_CHOICE),
            (1, 0), (1, 0),
            (0, 0), (0, 0),
        ]
        original = two_step_spec().run(ScriptedScheduler(script))
        replayed = two_step_spec().replay(original.full_decisions).finalize()
        assert replayed.full_decisions == original.full_decisions
        assert replayed.recoveries == original.recoveries
        assert replayed.statuses == original.statuses
        assert replayed.outputs == original.outputs


class TestRecoveryBranching:
    def test_zero_recoveries_matches_crash_only_enumeration(self):
        crash_only = {
            tuple(e.full_decisions)
            for e in Explorer(two_step_spec(), max_crashes=1).executions()
        }
        with_mode = {
            tuple(e.full_decisions)
            for e in Explorer(
                two_step_spec(), max_crashes=1, max_recoveries=0
            ).executions()
        }
        assert crash_only == with_mode == {
            tuple(e.full_decisions)
            for e in Explorer(
                two_step_spec(), max_crashes=1, max_recoveries=1
            ).executions()
            if not e.recoveries
        }

    def test_recovery_requires_a_prior_crash(self):
        explorer = Explorer(two_step_spec(), max_crashes=1, max_recoveries=1)
        saw_recovery = False
        for execution in explorer.executions():
            crashed = set()
            for pid, choice in execution.full_decisions:
                if choice == CRASH_CHOICE:
                    assert pid not in crashed
                    crashed.add(pid)
                elif choice == RECOVER_CHOICE:
                    saw_recovery = True
                    assert pid in crashed
                    crashed.discard(pid)
        assert saw_recovery

    def test_recovered_process_can_finish(self):
        finished_after_rebirth = [
            e
            for e in Explorer(
                two_step_spec(), max_crashes=1, max_recoveries=1
            ).executions()
            if e.recoveries
            and all(
                e.statuses[pid] is ProcessStatus.DONE
                for pid in e.recovered_pids()
            )
        ]
        assert finished_after_rebirth

    def test_no_duplicate_executions(self):
        seen = set()
        explorer = Explorer(two_step_spec(), max_crashes=2, max_recoveries=2)
        for execution in explorer.executions():
            key = tuple(execution.full_decisions)
            assert key not in seen, f"duplicate execution {key}"
            seen.add(key)

    def test_commuting_fault_orders_explored_once(self):
        """Canonical fault ordering (non-decreasing pids within a run of
        consecutive fault decisions) prunes commuting permutations: every
        (steps, crash records, recovery records) triple appears exactly
        once even with three processes and mixed fault budgets."""
        seen = set()
        explorer = Explorer(two_step_spec(3), max_crashes=2, max_recoveries=1)
        for execution in explorer.executions():
            key = (
                tuple(execution.decisions),
                tuple(execution.crashes),
                tuple(execution.recoveries),
            )
            assert key not in seen, f"duplicate execution {key}"
            seen.add(key)

    def test_recoveries_injected_stat_counts_branches(self):
        explorer = Explorer(two_step_spec(), max_crashes=1, max_recoveries=1)
        total = sum(len(e.recoveries) for e in explorer.executions())
        assert explorer.stats.recoveries_injected > 0
        assert total > 0

    def test_max_recoveries_caps_revivals(self):
        explorer = Explorer(two_step_spec(), max_crashes=2, max_recoveries=1)
        for execution in explorer.executions():
            assert len(execution.recoveries) <= 1

    def test_deterministic_enumeration_order(self):
        first = [
            tuple(e.full_decisions)
            for e in Explorer(
                two_step_spec(), max_crashes=1, max_recoveries=1
            ).executions()
        ]
        second = [
            tuple(e.full_decisions)
            for e in Explorer(
                two_step_spec(), max_crashes=1, max_recoveries=1
            ).executions()
        ]
        assert first == second
