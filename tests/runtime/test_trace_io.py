"""Tests for execution-trace serialization."""

import json

import pytest

from repro.algorithms.helpers import build_spec
from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.errors import ProtocolError
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.trace_io import (
    FORMAT,
    load_trace_json,
    replay_trace,
    trace_to_dict,
    trace_to_json,
)


def family_fixture():
    inputs = ["a", "b", "c", "d", "e", "f"]
    return set_consensus_spec(2, 1, inputs)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(7))
        trace = trace_to_dict(execution, label="witness")
        assert trace["format"] == FORMAT
        assert trace["label"] == "witness"
        replayed = replay_trace(family_fixture(), trace)
        assert replayed.outputs == execution.outputs
        assert replayed.schedule == execution.schedule

    def test_json_round_trip(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(11))
        payload = trace_to_json(execution)
        json.loads(payload)  # valid JSON
        replayed = load_trace_json(family_fixture(), payload)
        assert replayed.outputs == execution.outputs

    def test_nondeterministic_choices_survive(self):
        from repro.algorithms.set_consensus_transfer import transfer_spec

        spec = transfer_spec(3, 2, ["a", "b", "c", "d"])
        execution = spec.run(RandomScheduler(3))
        trace = trace_to_dict(execution)
        replayed = replay_trace(
            transfer_spec(3, 2, ["a", "b", "c", "d"]), trace
        )
        assert replayed.outputs == execution.outputs


class TestGuards:
    def test_format_marker_checked(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)
        trace["format"] = "something-else"
        with pytest.raises(ProtocolError, match="unsupported trace format"):
            replay_trace(spec, trace)

    def test_process_count_checked(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)

        def tiny(pid, value):
            yield invoke("r", "read")
            return value

        other = build_spec({"r": RegisterSpec()}, tiny, ["x"])
        with pytest.raises(ProtocolError, match="processes"):
            replay_trace(other, trace)

    def test_spec_drift_detected(self):
        """Replaying against a system with different inputs changes the
        outcome fingerprint and is rejected."""
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)
        drifted = set_consensus_spec(2, 1, ["q", "r", "s", "t", "u", "v"])
        with pytest.raises(ProtocolError, match="diverges"):
            replay_trace(drifted, trace)

    def test_fingerprint_optional(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)
        del trace["fingerprint"]
        replayed = replay_trace(spec, trace)
        assert replayed.outputs == execution.outputs
