"""Tests for execution-trace serialization."""

import json

import pytest

from repro.algorithms.helpers import build_spec
from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.errors import ProtocolError
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.scheduler import (
    CrashingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)
from repro.runtime.trace_io import (
    FORMAT,
    describe_scheduler,
    load_trace_json,
    replay_trace,
    trace_to_dict,
    trace_to_json,
)


def family_fixture():
    inputs = ["a", "b", "c", "d", "e", "f"]
    return set_consensus_spec(2, 1, inputs)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(7))
        trace = trace_to_dict(execution, label="witness")
        assert trace["format"] == FORMAT
        assert trace["label"] == "witness"
        replayed = replay_trace(family_fixture(), trace)
        assert replayed.outputs == execution.outputs
        assert replayed.schedule == execution.schedule

    def test_json_round_trip(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(11))
        payload = trace_to_json(execution)
        json.loads(payload)  # valid JSON
        replayed = load_trace_json(family_fixture(), payload)
        assert replayed.outputs == execution.outputs

    def test_nondeterministic_choices_survive(self):
        from repro.algorithms.set_consensus_transfer import transfer_spec

        spec = transfer_spec(3, 2, ["a", "b", "c", "d"])
        execution = spec.run(RandomScheduler(3))
        trace = trace_to_dict(execution)
        replayed = replay_trace(
            transfer_spec(3, 2, ["a", "b", "c", "d"]), trace
        )
        assert replayed.outputs == execution.outputs


class TestMetadata:
    def test_meta_records_scheduler_and_step_count(self):
        spec = family_fixture()
        scheduler = RandomScheduler(7)
        execution = spec.run(scheduler)
        trace = trace_to_dict(execution, scheduler=scheduler)
        assert trace["meta"]["scheduler"] == "RandomScheduler(seed=7)"
        assert trace["meta"]["monotonic_steps"] == len(execution.steps)

    def test_meta_round_trips_through_json(self):
        spec = family_fixture()
        scheduler = RandomScheduler(5)
        execution = spec.run(scheduler)
        payload = trace_to_json(execution, scheduler=scheduler)
        parsed = json.loads(payload)
        assert parsed["meta"]["scheduler"] == "RandomScheduler(seed=5)"
        replayed = load_trace_json(family_fixture(), payload)
        assert replayed.outputs == execution.outputs

    def test_meta_absent_without_scheduler(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)
        assert "scheduler" not in trace["meta"]
        assert trace["meta"]["monotonic_steps"] == len(execution.steps)

    def test_unknown_keys_ignored_on_read(self):
        """Forward compatibility within repro-trace/1: readers skip keys
        they do not understand."""
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)
        trace["meta"]["future_extension"] = {"nested": True}
        trace["another_future_key"] = 42
        replayed = replay_trace(family_fixture(), trace)
        assert replayed.outputs == execution.outputs

    def test_old_traces_without_meta_still_load(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)
        del trace["meta"]
        replayed = replay_trace(family_fixture(), trace)
        assert replayed.outputs == execution.outputs

    def test_describe_scheduler_variants(self):
        assert describe_scheduler(RoundRobinScheduler()) == "RoundRobinScheduler"
        assert describe_scheduler(RandomScheduler(3)) == "RandomScheduler(seed=3)"
        assert describe_scheduler(ScriptedScheduler([0, 1])) == (
            "ScriptedScheduler(len=2)"
        )
        assert describe_scheduler(
            CrashingScheduler(RandomScheduler(9), {0: 5})
        ) == "CrashingScheduler({p0@5}, base=RandomScheduler(seed=9))"

        class Bare:
            pass

        assert describe_scheduler(Bare()) == "Bare"


class TestRecoveries:
    def election_run(self):
        from repro.algorithms.election import announce_election_spec
        from repro.runtime.execution import CRASH_CHOICE, RECOVER_CHOICE

        script = [
            (0, 0),
            (0, CRASH_CHOICE),
            (0, RECOVER_CHOICE),
            (0, 0), (0, 0),
            (1, 0), (1, 0),
        ]
        spec = announce_election_spec(2)
        return spec, spec.run(ScriptedScheduler(script))

    def test_recoveries_round_trip(self):
        spec, execution = self.election_run()
        trace = trace_to_dict(execution, label="zero-leader")
        assert trace["recoveries"] == [[1, 0]]
        from repro.algorithms.election import announce_election_spec

        replayed = replay_trace(announce_election_spec(2), trace)
        assert replayed.recoveries == execution.recoveries
        assert replayed.crashes == execution.crashes
        assert replayed.outputs == execution.outputs == {0: "F", 1: "F"}
        assert replayed.statuses == execution.statuses

    def test_recovery_free_traces_carry_no_key(self):
        """Files from recovery-free runs are byte-identical to the ones
        older code wrote: the ``recoveries`` key appears only when
        non-empty."""
        spec = family_fixture()
        execution = spec.run(RandomScheduler(3))
        trace = trace_to_dict(execution)
        assert "recoveries" not in trace

    def test_stale_fingerprint_with_recoveries_rejected(self):
        """Strict read: a trace carrying recovery records whose
        fingerprint no longer matches the replayed outcome is refused —
        silently resurrecting processes against a drifted spec would be
        worse than failing."""
        spec, execution = self.election_run()
        trace = trace_to_dict(execution)
        trace["fingerprint"] = "0:done:'L'|1:done:'F'"
        from repro.algorithms.election import announce_election_spec

        with pytest.raises(ProtocolError, match="diverges"):
            replay_trace(announce_election_spec(2), trace)

    def test_recovery_of_never_crashed_pid_rejected(self):
        """A corrupt trace whose recoveries reference a pid with no prior
        crash fails with a clear format error, not a replay-time crash."""
        spec, execution = self.election_run()
        trace = trace_to_dict(execution)
        del trace["crashes"]
        from repro.algorithms.election import announce_election_spec

        with pytest.raises(ProtocolError, match="internally inconsistent"):
            replay_trace(announce_election_spec(2), trace)

    def test_recovery_records_must_be_consistent_even_unfingerprinted(self):
        spec, execution = self.election_run()
        trace = trace_to_dict(execution)
        del trace["crashes"]
        del trace["fingerprint"]
        from repro.algorithms.election import announce_election_spec

        with pytest.raises(ProtocolError, match="internally inconsistent"):
            replay_trace(announce_election_spec(2), trace)


class TestGuards:
    def test_format_marker_checked(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)
        trace["format"] = "something-else"
        with pytest.raises(ProtocolError, match="unsupported trace format"):
            replay_trace(spec, trace)

    def test_process_count_checked(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)

        def tiny(pid, value):
            yield invoke("r", "read")
            return value

        other = build_spec({"r": RegisterSpec()}, tiny, ["x"])
        with pytest.raises(ProtocolError, match="processes"):
            replay_trace(other, trace)

    def test_spec_drift_detected(self):
        """Replaying against a system with different inputs changes the
        outcome fingerprint and is rejected."""
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)
        drifted = set_consensus_spec(2, 1, ["q", "r", "s", "t", "u", "v"])
        with pytest.raises(ProtocolError, match="diverges"):
            replay_trace(drifted, trace)

    def test_fingerprint_optional(self):
        spec = family_fixture()
        execution = spec.run(RandomScheduler(1))
        trace = trace_to_dict(execution)
        del trace["fingerprint"]
        replayed = replay_trace(spec, trace)
        assert replayed.outputs == execution.outputs
