"""Tests for crash-adversary branching in the explorer."""

import math

import pytest

from repro.faults.budget import Budget
from repro.faults.verdict import Verdict
from repro.objects.register import RegisterSpec
from repro.runtime.execution import CRASH_CHOICE
from repro.runtime.explorer import Explorer
from repro.runtime.ops import invoke
from repro.runtime.process import ProcessStatus
from repro.runtime.system import SystemSpec


def one_step_spec(n_processes: int):
    def program(pid):
        def run():
            yield invoke("r", "write", pid)
            return pid

        return run

    return SystemSpec({"r": RegisterSpec()}, [program(p) for p in range(n_processes)])


def two_step_spec(n_processes: int = 2):
    def program(pid):
        def run():
            yield invoke("r", "write", pid)
            seen = yield invoke("r", "read")
            return seen

        return run

    return SystemSpec({"r": RegisterSpec()}, [program(p) for p in range(n_processes)])


class TestCrashBranching:
    def test_zero_crashes_matches_plain_enumeration(self):
        plain = {
            tuple(e.full_decisions)
            for e in Explorer(one_step_spec(3)).executions()
        }
        with_mode = {
            tuple(e.full_decisions)
            for e in Explorer(one_step_spec(3), max_crashes=0).executions()
        }
        assert plain == with_mode == {
            tuple(e.full_decisions)
            for e in Explorer(one_step_spec(3), max_crashes=1).executions()
            if not e.crashes
        }

    def test_crash_free_executions_still_factorial(self):
        explorer = Explorer(one_step_spec(3), max_crashes=1)
        crash_free = [e for e in explorer.executions() if not e.crashes]
        assert len(crash_free) == math.factorial(3)

    def test_crashed_process_never_steps_again(self):
        for execution in Explorer(two_step_spec(), max_crashes=2).executions():
            for crash_at, pid in execution.crashes:
                assert execution.statuses[pid] is ProcessStatus.CRASHED
                later = [s.pid for s in execution.steps if s.index >= crash_at]
                assert pid not in later

    def test_no_duplicate_executions_with_two_crashes(self):
        seen = set()
        for execution in Explorer(two_step_spec(), max_crashes=2).executions():
            key = tuple(execution.full_decisions)
            assert key not in seen, f"duplicate execution {key}"
            seen.add(key)

    def test_crashable_pids_limits_victims(self):
        explorer = Explorer(one_step_spec(3), max_crashes=3, crashable_pids={1})
        for execution in explorer.executions():
            assert set(execution.crashed_pids()) <= {1}

    def test_faults_injected_counts_crash_branches(self):
        explorer = Explorer(one_step_spec(2), max_crashes=1)
        crashed = sum(
            len(e.crashes) for e in explorer.executions()
        )
        assert explorer.stats.faults_injected == crashed
        assert crashed > 0

    def test_crash_branches_ignore_pid_filter(self):
        """Pinning the schedule to pid 0 must still branch on crashing
        every enabled process — pid_filter restricts *stepping* only."""

        def pin_zero(system, enabled):
            return [p for p in enabled if p == 0] or enabled

        explorer = Explorer(
            one_step_spec(2), pid_filter=pin_zero, max_crashes=1, strict=False
        )
        victims = set()
        for execution in explorer.executions():
            victims.update(execution.crashed_pids())
        assert 1 in victims


class TestCheckVerdict:
    def test_proved(self):
        verdict, witness, reason = Explorer(one_step_spec(2)).check_verdict(
            lambda e: e.all_done()
        )
        assert verdict is Verdict.PROVED
        assert witness is None

    def test_refuted_with_witness(self):
        explorer = Explorer(one_step_spec(2), max_crashes=1)
        verdict, witness, reason = explorer.check_verdict(
            lambda e: not e.crashes
        )
        assert verdict is Verdict.REFUTED
        assert witness is not None and witness.crashes

    def test_inconclusive_under_budget(self):
        budget = Budget(max_steps=3)
        explorer = Explorer(one_step_spec(3), budget=budget)
        verdict, witness, reason = explorer.check_verdict(lambda e: True)
        assert verdict is Verdict.INCONCLUSIVE
        assert explorer.interrupted
        assert reason


class TestReplayOfCrashDecisions:
    def test_full_decisions_replay_reproduces_crashes(self):
        explorer = Explorer(two_step_spec(), max_crashes=1)
        samples = [e for e in explorer.executions() if e.crashes][:5]
        assert samples
        for original in samples:
            replayed = two_step_spec().replay(original.full_decisions).finalize()
            assert replayed.full_decisions == original.full_decisions
            assert replayed.statuses == original.statuses
            assert replayed.outputs == original.outputs

    def test_crash_choice_is_negative_sentinel(self):
        assert CRASH_CHOICE == -1
