"""Unit tests for the exhaustive explorer (bounded model checking)."""

import math

import pytest

from repro.errors import ExplorationLimitError
from repro.objects.register import RegisterSpec
from repro.objects.set_consensus import SetConsensusSpec
from repro.runtime.explorer import (
    Explorer,
    check_all_executions,
    explore_executions,
    find_execution,
)
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def one_step_spec(n_processes: int):
    """Every process writes its pid once: n! schedules."""

    def program(pid):
        def run():
            yield invoke("r", "write", pid)
            return pid

        return run

    return SystemSpec({"r": RegisterSpec()}, [program(p) for p in range(n_processes)])


def race_spec():
    """Two processes write then read; read results expose the interleaving."""

    def program(pid):
        def run():
            yield invoke("r", "write", pid)
            seen = yield invoke("r", "read")
            return seen

        return run

    return SystemSpec({"r": RegisterSpec()}, [program(0), program(1)])


class TestEnumeration:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_counts_factorial_schedules(self, n):
        executions = list(explore_executions(one_step_spec(n)))
        assert len(executions) == math.factorial(n)

    def test_all_executions_are_maximal(self):
        for execution in explore_executions(race_spec()):
            assert execution.all_done()
            assert len(execution) == 4

    def test_distinct_interleavings_distinct_outputs(self):
        outcomes = {
            tuple(sorted(e.outputs.items()))
            for e in explore_executions(race_spec())
        }
        # p reads own write unless the other overwrote in between.
        assert (
            tuple(sorted({0: 0, 1: 1}.items())) in outcomes
        )  # fully serial both read own? no: later writer overwrites
        assert len(outcomes) >= 2

    def test_nondeterministic_objects_branch(self):
        def proposer(value):
            def run():
                decision = yield invoke("sc", "propose", value)
                return decision

            return run

        spec = SystemSpec(
            {"sc": SetConsensusSpec(2, 2)}, [proposer("a"), proposer("b")]
        )
        outcomes = {
            tuple(sorted(e.outputs.items()))
            for e in explore_executions(spec)
        }
        # The second proposer may adopt or keep its own value.
        assert (tuple(sorted({0: "a", 1: "a"}.items()))) in outcomes
        assert (tuple(sorted({0: "a", 1: "b"}.items()))) in outcomes


class TestCheckAndFind:
    def test_check_all_passes(self):
        assert check_all_executions(one_step_spec(3), lambda e: e.all_done()) is None

    def test_check_all_returns_witness(self):
        witness = check_all_executions(
            race_spec(), lambda e: e.outputs[0] == 0
        )
        assert witness is not None
        assert witness.outputs[0] == 1  # p1's write overwrote before p0 read

    def test_witness_replays(self):
        spec = race_spec()
        witness = check_all_executions(spec, lambda e: e.outputs[0] == 0)
        replayed = spec.replay(witness.decisions).finalize()
        assert replayed.outputs == witness.outputs

    def test_find_existence(self):
        found = find_execution(race_spec(), lambda e: e.outputs == {0: 1, 1: 1})
        assert found is not None

    def test_find_returns_none_when_impossible(self):
        assert (
            find_execution(race_spec(), lambda e: e.outputs == {0: 9, 1: 9}) is None
        )


class TestBounds:
    def test_depth_bound_strict_raises(self):
        def spinner():
            while True:
                yield invoke("r", "read")

        spec = SystemSpec({"r": RegisterSpec()}, [spinner])
        with pytest.raises(ExplorationLimitError):
            list(explore_executions(spec, max_depth=5))

    def test_depth_bound_lenient_truncates(self):
        def spinner():
            while True:
                yield invoke("r", "read")

        spec = SystemSpec({"r": RegisterSpec()}, [spinner])
        explorer = Explorer(spec, max_depth=5, strict=False)
        executions = list(explorer.executions())
        assert len(executions) == 1
        assert explorer.stats.truncated == 1

    def test_statistics_populated(self):
        explorer = Explorer(one_step_spec(3))
        list(explorer.executions())
        assert explorer.stats.executions == 6
        assert explorer.stats.max_depth_seen == 3
        assert explorer.stats.steps_replayed > 0

    def test_on_path_vs_replayed_accounting(self):
        """The decision tree of one_step_spec(3) has 1+3+6+6 = 16 nodes.
        Each non-root node contributes exactly one first-time (on-path)
        step; total executed steps are sum(depth) over nodes = 33, so 18
        are redundant replays of earlier prefix decisions."""
        explorer = Explorer(one_step_spec(3))
        list(explorer.executions())
        stats = explorer.stats
        assert stats.steps_on_path == 15
        assert stats.steps_replayed == 18
        assert stats.steps_total == 33
        assert stats.replay_overhead == pytest.approx(18 / 15)

    def test_statistics_merge_includes_on_path(self):
        first = Explorer(one_step_spec(2))
        list(first.executions())
        second = Explorer(one_step_spec(2))
        list(second.executions())
        merged = first.stats
        merged.merge(second.stats)
        assert merged.steps_on_path == 2 * second.stats.steps_on_path
        assert merged.steps_replayed == 2 * second.stats.steps_replayed


class TestPidFilter:
    def test_filter_prunes_branches(self):
        # Only allow ascending pid order: exactly one schedule survives.
        def ascending_only(system, enabled):
            return [min(enabled)] if enabled else []

        explorer = Explorer(one_step_spec(3), pid_filter=ascending_only)
        executions = list(explorer.executions())
        assert len(executions) == 1
        assert executions[0].schedule == [0, 1, 2]


class TestHeartbeat:
    """The explore_heartbeat telemetry pulse from the DFS loop."""

    def collect(self, explorer):
        from repro.obs import events

        beats = []

        def listen(name, fields):
            if name == "explore_heartbeat":
                beats.append(dict(fields))

        events.subscribe(listen)
        try:
            list(explorer.executions())
        finally:
            events.unsubscribe(listen)
        return beats

    def test_silent_when_bus_disabled(self):
        explorer = Explorer(one_step_spec(2), heartbeat_interval=0.0)
        list(explorer.executions())  # must not raise, and nothing to emit to

    def test_one_beat_per_execution_at_zero_interval(self):
        explorer = Explorer(one_step_spec(2), heartbeat_interval=0.0)
        beats = self.collect(explorer)
        assert len(beats) == 2  # 2! schedules
        assert beats[-1]["executions"] == 2
        assert beats[-1]["frontier"] == 0

    def test_beat_carries_observables_and_estimates(self):
        explorer = Explorer(one_step_spec(3), heartbeat_interval=0.0)
        beats = self.collect(explorer)
        first, last = beats[0], beats[-1]
        for key in ("executions", "frontier", "frontier_depths",
                    "mean_branch", "mean_leaf_depth", "elapsed",
                    "max_depth_seen", "faults_injected"):
            assert key in first, key
        assert first["frontier"] > 0
        assert all(
            isinstance(d, int) and isinstance(c, int)
            for d, c in first["frontier_depths"].items()
        )
        # Later beats have branch statistics, so remaining is estimable
        # and shrinks to zero by the final beat.
        assert last["remaining_estimate"] == 0.0
        assert last["coverage"] == 1.0

    def test_long_interval_stays_quiet(self):
        explorer = Explorer(one_step_spec(3), heartbeat_interval=3600.0)
        beats = self.collect(explorer)
        assert beats == []

    def test_run_id_lands_in_checkpoint(self, tmp_path):
        from repro.faults.checkpoint import read_checkpoint

        path = str(tmp_path / "ck.jsonl")
        explorer = Explorer(one_step_spec(2), checkpoint_path=path)
        explorer.run_id = "20260101T000000-abc123"
        list(explorer.executions())
        assert read_checkpoint(path).run_id == "20260101T000000-abc123"
