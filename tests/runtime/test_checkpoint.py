"""Checkpoint/resume tests: round-trip, corruption, and the resume
count-equality guarantee (resumed run visits exactly the remaining
executions)."""

import json

import pytest

from repro.errors import ExplorationLimitError, ProtocolError
from repro.faults.budget import Budget
from repro.faults.checkpoint import (
    FORMAT,
    Checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.objects.register import RegisterSpec
from repro.runtime.explorer import Explorer
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def steps_spec(n_processes: int = 3, n_steps: int = 2):
    def program(pid):
        def run():
            for _ in range(n_steps):
                yield invoke("r", "write", pid)
            return pid

        return run

    return SystemSpec({"r": RegisterSpec()}, [program(p) for p in range(n_processes)])


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "cp.jsonl")
        frontier = [[(0, 0)], [(0, 0), (1, -1)], []]
        write_checkpoint(
            path,
            n_processes=3,
            frontier=frontier,
            executions=17,
            max_depth=60,
            max_crashes=1,
            stats={"nodes": 99},
            spec={"task": "consensus", "n": 3},
        )
        checkpoint = read_checkpoint(path)
        assert checkpoint.n_processes == 3
        assert checkpoint.frontier == frontier
        assert checkpoint.executions == 17
        assert checkpoint.max_depth == 60
        assert checkpoint.max_crashes == 1
        assert checkpoint.stats == {"nodes": 99}
        assert checkpoint.spec == {"task": "consensus", "n": 3}
        assert not checkpoint.done

    def test_max_recoveries_round_trips(self, tmp_path):
        path = str(tmp_path / "cp.jsonl")
        write_checkpoint(
            path,
            n_processes=2,
            frontier=[[(0, 0), (0, -1), (0, -2)]],
            executions=3,
            max_crashes=1,
            max_recoveries=1,
        )
        checkpoint = read_checkpoint(path)
        assert checkpoint.max_crashes == 1
        assert checkpoint.max_recoveries == 1
        assert checkpoint.frontier == [[(0, 0), (0, -1), (0, -2)]]

    def test_legacy_v1_checkpoint_still_reads(self, tmp_path):
        """Files written before the recovery model (repro-checkpoint/1)
        load with max_recoveries=0 — their frontier was enumerated with
        no recovery branches, so resuming recovery-free is exact."""
        path = tmp_path / "cp.jsonl"
        header = {
            "format": "repro-checkpoint/1",
            "n_processes": 2,
            "frontier": 1,
            "executions": 4,
            "max_crashes": 1,
        }
        path.write_text(
            json.dumps(header) + "\n"
            + json.dumps({"prefix": [[0, 0], [1, -1]]}) + "\n"
        )
        checkpoint = read_checkpoint(str(path))
        assert checkpoint.max_crashes == 1
        assert checkpoint.max_recoveries == 0
        assert checkpoint.frontier == [[(0, 0), (1, -1)]]

    def test_execset_digest_round_trips(self, tmp_path):
        """The header carries the execution-set digest-so-far, so a
        resumed run's merged digest is well-defined."""
        path = str(tmp_path / "cp.jsonl")
        state = {"digest": "ab" * 32, "records": 17}
        write_checkpoint(
            path, n_processes=2, frontier=[[(0, 0)]], execset=state
        )
        assert read_checkpoint(path).execset == state

    def test_header_without_execset_reads_none(self, tmp_path):
        """Checkpoints from before the execset format (and any header
        with a malformed entry) resume with no base digest — the diff
        side then reports the merged claim as partial, not an error."""
        path = str(tmp_path / "cp.jsonl")
        write_checkpoint(path, n_processes=2, frontier=[[(0, 0)]])
        assert read_checkpoint(path).execset is None
        header = json.loads((tmp_path / "cp.jsonl").read_text().splitlines()[0])
        header["execset"] = "not-a-dict"
        lines = (tmp_path / "cp.jsonl").read_text().splitlines()
        (tmp_path / "cp.jsonl").write_text(
            "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        )
        assert read_checkpoint(path).execset is None

    def test_empty_frontier_is_done(self, tmp_path):
        path = str(tmp_path / "cp.jsonl")
        write_checkpoint(path, n_processes=2, frontier=[], executions=6)
        checkpoint = read_checkpoint(path)
        assert checkpoint.done
        assert checkpoint.executions == 6

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "cp.jsonl")
        write_checkpoint(path, n_processes=2, frontier=[[(0, 0)]])
        write_checkpoint(path, n_processes=2, frontier=[])
        assert read_checkpoint(path).done
        # No temp debris left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["cp.jsonl"]


class TestCorruption:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        path.write_text("")
        with pytest.raises(ProtocolError, match="empty"):
            read_checkpoint(str(path))

    def test_garbage_header(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ProtocolError, match="corrupt header"):
            read_checkpoint(str(path))

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        path.write_text(json.dumps({"format": "something/9"}) + "\n")
        with pytest.raises(ProtocolError, match="unsupported format"):
            read_checkpoint(str(path))

    def test_corrupt_frontier_line(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        header = {"format": FORMAT, "n_processes": 2, "frontier": 1}
        path.write_text(json.dumps(header) + "\n{broken\n")
        with pytest.raises(ProtocolError, match="frontier line 2"):
            read_checkpoint(str(path))

    def test_truncated_frontier_detected(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        header = {"format": FORMAT, "n_processes": 2, "frontier": 2}
        path.write_text(
            json.dumps(header) + "\n" + json.dumps({"prefix": [[0, 0]]}) + "\n"
        )
        with pytest.raises(ProtocolError, match="incomplete"):
            read_checkpoint(str(path))


class TestResume:
    def full_enumeration(self):
        return {
            tuple(e.full_decisions) for e in Explorer(steps_spec()).executions()
        }

    def test_resume_visits_exactly_the_remaining_executions(self, tmp_path):
        path = str(tmp_path / "cp.jsonl")
        everything = self.full_enumeration()

        interrupted = Explorer(
            steps_spec(), budget=Budget(max_steps=200), checkpoint_path=path
        )
        visited = {tuple(e.full_decisions) for e in interrupted.executions()}
        assert interrupted.interrupted
        assert 0 < len(visited) < len(everything)

        checkpoint = read_checkpoint(path)
        assert not checkpoint.done
        assert checkpoint.executions == len(visited)

        resumed = Explorer.from_checkpoint(steps_spec(), checkpoint)
        remaining = {tuple(e.full_decisions) for e in resumed.executions()}
        assert not resumed.interrupted
        assert visited | remaining == everything
        assert not (visited & remaining)
        assert resumed.total_executions == len(everything)

    def test_resume_with_crashes(self, tmp_path):
        path = str(tmp_path / "cp.jsonl")
        spec = steps_spec(n_processes=2, n_steps=2)
        everything = {
            tuple(e.full_decisions)
            for e in Explorer(spec, max_crashes=1).executions()
        }
        interrupted = Explorer(
            spec,
            max_crashes=1,
            budget=Budget(max_steps=100),
            checkpoint_path=path,
        )
        visited = {tuple(e.full_decisions) for e in interrupted.executions()}
        assert interrupted.interrupted
        checkpoint = read_checkpoint(path)
        # max_crashes is restored from the checkpoint when not overridden.
        resumed = Explorer.from_checkpoint(spec, checkpoint)
        assert resumed.max_crashes == 1
        remaining = {tuple(e.full_decisions) for e in resumed.executions()}
        assert visited | remaining == everything
        assert not (visited & remaining)

    def test_resume_with_recoveries(self, tmp_path):
        """The count-equality guarantee holds with recovery branches: an
        interrupted crash-recovery walk plus its resume visit exactly the
        executions of one uninterrupted walk."""
        path = str(tmp_path / "cp.jsonl")
        spec = steps_spec(n_processes=2, n_steps=2)
        everything = {
            tuple(e.full_decisions)
            for e in Explorer(
                spec, max_crashes=1, max_recoveries=1
            ).executions()
        }
        assert any(
            choice == -2 for full in everything for _pid, choice in full
        )
        interrupted = Explorer(
            spec,
            max_crashes=1,
            max_recoveries=1,
            budget=Budget(max_steps=150),
            checkpoint_path=path,
        )
        visited = {tuple(e.full_decisions) for e in interrupted.executions()}
        assert interrupted.interrupted
        checkpoint = read_checkpoint(path)
        resumed = Explorer.from_checkpoint(spec, checkpoint)
        # max_recoveries restored from the checkpoint when not overridden.
        assert resumed.max_recoveries == 1
        remaining = {tuple(e.full_decisions) for e in resumed.executions()}
        assert visited | remaining == everything
        assert not (visited & remaining)
        assert resumed.total_executions == len(everything)

    def test_from_checkpoint_validates_process_count(self):
        checkpoint = Checkpoint(n_processes=5, frontier=[[]])
        with pytest.raises(ExplorationLimitError, match="processes"):
            Explorer.from_checkpoint(steps_spec(), checkpoint)

    def test_resuming_finished_checkpoint_yields_nothing(self, tmp_path):
        path = str(tmp_path / "cp.jsonl")
        explorer = Explorer(steps_spec(), checkpoint_path=path)
        total = len(list(explorer.executions()))
        checkpoint = read_checkpoint(path)
        assert checkpoint.done
        resumed = Explorer.from_checkpoint(steps_spec(), checkpoint)
        assert list(resumed.executions()) == []
        assert resumed.total_executions == total
