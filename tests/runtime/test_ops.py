"""Unit tests for the step/annotation vocabulary."""

from repro.runtime.ops import (
    Annotation,
    Operation,
    call_marker,
    invoke,
    return_marker,
)


class TestOperation:
    def test_invoke_builds_operation(self):
        op = invoke("r", "write", 3)
        assert op == Operation("r", "write", (3,))

    def test_args_default_empty(self):
        assert Operation("r", "read").args == ()

    def test_operations_are_hashable(self):
        assert len({invoke("r", "read"), invoke("r", "read")}) == 1

    def test_distinct_args_distinct_operations(self):
        assert invoke("r", "write", 1) != invoke("r", "write", 2)

    def test_str_rendering(self):
        assert str(invoke("q", "enqueue", "x")) == "q.enqueue('x')"

    def test_multi_arg_rendering(self):
        assert str(invoke("a", "write", 0, 5)) == "a.write(0, 5)"


class TestAnnotation:
    def test_call_marker_payload(self):
        marker = call_marker("snap", "scan")
        assert marker.kind == "call"
        assert marker.payload == ("snap", "scan", ())

    def test_call_marker_with_args(self):
        marker = call_marker("snap", "update", 2, "v")
        assert marker.payload == ("snap", "update", (2, "v"))

    def test_return_marker(self):
        marker = return_marker(42)
        assert marker.kind == "return"
        assert marker.payload == 42

    def test_free_form_annotation(self):
        note = Annotation("trace", {"round": 1})
        assert note.kind == "trace"
        assert note.payload == {"round": 1}
