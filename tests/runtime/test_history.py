"""Unit tests for history extraction and real-time precedence."""

import pytest

from repro.errors import ProtocolError
from repro.objects.register import RegisterSpec
from repro.runtime.history import History, HistoryEvent, history_from_execution
from repro.runtime.ops import call_marker, invoke, return_marker
from repro.runtime.scheduler import RoundRobinScheduler, ScriptedScheduler
from repro.runtime.system import SystemSpec


def annotated_spec():
    """Two processes perform one logical 'transfer' op each, implemented
    as two register steps.  A warm-up read precedes the logical call so
    that operation intervals begin when the process is first scheduled
    (annotations emitted at priming are timestamped 0 for everyone)."""

    def program(pid):
        def run():
            yield invoke("r", "read")  # warm-up
            yield call_marker("bank", "transfer", pid)
            yield invoke("r", "write", pid)
            seen = yield invoke("r", "read")
            yield return_marker(seen)
            return seen

        return run

    return SystemSpec({"r": RegisterSpec()}, [program(0), program(1)])


class TestExtraction:
    def test_complete_operations_extracted(self):
        execution = annotated_spec().run(RoundRobinScheduler())
        history = history_from_execution(execution)
        assert len(history) == 2
        assert not history.pending
        assert {e.method for e in history} == {"transfer"}

    def test_event_fields(self):
        execution = annotated_spec().run(ScriptedScheduler([0, 0, 0, 1, 1, 1]))
        history = history_from_execution(execution)
        first = history.events[0]
        assert first.pid == 0
        assert first.obj == "bank"
        assert first.args == (0,)
        assert first.response == 0
        assert first.invoked_at == 1
        assert first.responded_at == 3

    def test_sequential_schedule_detected(self):
        execution = annotated_spec().run(ScriptedScheduler([0, 0, 0, 1, 1, 1]))
        history = history_from_execution(execution)
        assert history.is_sequential()

    def test_overlapping_schedule_detected(self):
        execution = annotated_spec().run(ScriptedScheduler([0, 1, 0, 1, 0, 1]))
        history = history_from_execution(execution)
        assert not history.is_sequential()

    def test_unfinished_operation_is_pending(self):
        execution = annotated_spec().replay([(0, 0), (0, 0)]).finalize()
        history = history_from_execution(execution)
        pending = [e for e in history if e.is_pending]
        assert len(pending) == 1  # p0 called, not returned; p1 never called

    def test_nested_call_rejected(self):
        def bad():
            yield call_marker("x", "op")
            yield call_marker("x", "op2")
            yield invoke("r", "read")

        spec = SystemSpec({"r": RegisterSpec()}, [bad])
        execution = spec.run(RoundRobinScheduler())
        with pytest.raises(ProtocolError, match="nested"):
            history_from_execution(execution)

    def test_orphan_return_rejected(self):
        def bad():
            yield return_marker(1)
            yield invoke("r", "read")

        spec = SystemSpec({"r": RegisterSpec()}, [bad])
        execution = spec.run(RoundRobinScheduler())
        with pytest.raises(ProtocolError, match="without a matching"):
            history_from_execution(execution)


class TestPrecedence:
    def _event(self, pid, invoked, responded):
        return HistoryEvent(
            pid=pid,
            obj="o",
            method="m",
            args=(),
            response=None,
            invoked_at=invoked,
            responded_at=responded,
        )

    def test_disjoint_intervals_ordered(self):
        a = self._event(0, 0, 2)
        b = self._event(1, 3, 5)
        assert a.precedes(b)
        assert not b.precedes(a)

    def test_touching_intervals_ordered(self):
        a = self._event(0, 0, 2)
        b = self._event(1, 2, 4)
        assert a.precedes(b)

    def test_overlapping_intervals_unordered(self):
        a = self._event(0, 0, 3)
        b = self._event(1, 2, 5)
        assert not a.precedes(b)
        assert not b.precedes(a)

    def test_pending_precedes_nothing(self):
        a = self._event(0, 0, None)
        b = self._event(1, 5, 6)
        assert not a.precedes(b)

    def test_for_object_filters(self):
        history = History(
            [self._event(0, 0, 1), self._event(1, 2, 3)]
        )
        assert len(history.for_object("o")) == 2
        assert len(history.for_object("other")) == 0
