"""Tests for the crash-resilience auditor."""

import pytest

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.immediate_snapshot import immediate_snapshot_spec
from repro.algorithms.safe_agreement import consensus_spec as safe_agreement_spec
from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.analysis.resilience import check_resilience
from repro.tasks import ConsensusTask, KSetConsensusTask
from repro.tasks.immediate_snapshot import ImmediateSnapshotTask


class TestWaitFreeProtocolsAreResilient:
    def test_family_protocol_max_resilience(self):
        """The ring protocol is wait-free, hence (n-1)-resilient."""
        inputs = ["a", "b", "c"]
        spec = set_consensus_spec(1, 1, inputs)
        report = check_resilience(
            spec, KSetConsensusTask(2), inputs_dict(inputs), max_failures=2,
            max_depth=10,
        )
        assert report.resilient, report.summary()
        # 1 + 3 + 3 crash sets of size 0/1/2.
        assert report.crash_sets_checked == 7

    def test_immediate_snapshot_resilient(self):
        inputs = ["a", "b"]
        spec = immediate_snapshot_spec(inputs)
        report = check_resilience(
            spec, ImmediateSnapshotTask(), inputs_dict(inputs), max_failures=1,
            max_depth=30,
        )
        assert report.resilient, report.summary()

    def test_summary_text(self):
        inputs = ["a", "b"]
        spec = immediate_snapshot_spec(inputs)
        report = check_resilience(
            spec, ImmediateSnapshotTask(), inputs_dict(inputs), max_failures=0,
            max_depth=30,
        )
        assert "0-resilient" in report.summary()


class TestBlockingProtocolsAreNot:
    def test_safe_agreement_flagged_even_without_crashes(self):
        """Safe agreement is not wait-free at all: even with zero
        crashes, the adversary can park one participant at level 1 and
        let the other spin on its scans forever.  The auditor flags the
        empty crash set with a starvation witness — exactly the 'unsafe
        section' semantics."""
        spec = safe_agreement_spec(2, ["a", "b"])
        report = check_resilience(
            spec, ConsensusTask(), {0: "a", 1: "b"}, max_failures=1,
            max_depth=40,
        )
        assert not report.resilient
        crash_set, reason, _witness = report.failures[0]
        assert crash_set == frozenset()
        assert "starved" in reason

    def test_waiting_protocol_starves(self):
        """A protocol that genuinely waits for a peer's write fails the
        audit with a starvation witness."""
        from repro.algorithms.helpers import build_spec
        from repro.objects.register import RegisterSpec
        from repro.runtime.ops import invoke

        def program(pid, value):
            yield invoke(f"r{pid}", "write", value)
            while True:
                other = yield invoke(f"r{1 - pid}", "read")
                if other is not None:
                    break
            return min(value, other)

        spec = build_spec(
            {"r0": RegisterSpec(), "r1": RegisterSpec()}, program, ["a", "b"]
        )
        report = check_resilience(
            spec, ConsensusTask(), {0: "a", 1: "b"}, max_failures=1,
            max_depth=30,
        )
        assert not report.resilient
        crash_set, reason, witness = report.failures[0]
        assert "starved" in reason
        assert witness is not None


class TestParameterValidation:
    def test_bad_failure_count(self):
        inputs = ["a", "b"]
        spec = immediate_snapshot_spec(inputs)
        with pytest.raises(ValueError):
            check_resilience(
                spec, ImmediateSnapshotTask(), inputs_dict(inputs), max_failures=2
            )
