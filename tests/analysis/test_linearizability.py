"""Unit tests for the Wing–Gong checker on hand-crafted histories."""

import pytest

from repro.analysis.linearizability import (
    check_linearizable,
    is_linearizable,
    linearization_of,
)
from repro.errors import NotLinearizableError
from repro.objects.queue_stack import QueueSpec
from repro.objects.register import RegisterSpec
from repro.objects.set_consensus import SetConsensusSpec
from repro.runtime.history import History, HistoryEvent


def ev(pid, method, args, response, invoked, responded):
    return HistoryEvent(
        pid=pid,
        obj="o",
        method=method,
        args=tuple(args),
        response=response,
        invoked_at=invoked,
        responded_at=responded,
    )


class TestRegisterHistories:
    def test_sequential_history(self):
        history = History([
            ev(0, "write", ["a"], None, 0, 1),
            ev(1, "read", [], "a", 2, 3),
        ])
        assert is_linearizable(history, RegisterSpec())

    def test_stale_read_rejected(self):
        """Read returns the old value after a write completed: no order
        satisfies both real time and the spec."""
        history = History([
            ev(0, "write", ["a"], None, 0, 1),
            ev(1, "read", [], None, 2, 3),  # reads initial None too late
        ])
        assert not is_linearizable(history, RegisterSpec())

    def test_concurrent_read_may_go_either_way(self):
        concurrent_old = History([
            ev(0, "write", ["a"], None, 0, 5),
            ev(1, "read", [], None, 1, 2),
        ])
        concurrent_new = History([
            ev(0, "write", ["a"], None, 0, 5),
            ev(1, "read", [], "a", 1, 2),
        ])
        assert is_linearizable(concurrent_old, RegisterSpec())
        assert is_linearizable(concurrent_new, RegisterSpec())

    def test_future_read_rejected(self):
        history = History([
            ev(1, "read", [], "a", 0, 1),
            ev(0, "write", ["a"], None, 2, 3),
        ])
        assert not is_linearizable(history, RegisterSpec())

    def test_initial_state_override(self):
        history = History([ev(0, "read", [], "boot", 0, 1)])
        assert not is_linearizable(history, RegisterSpec())
        assert is_linearizable(history, RegisterSpec(), initial_state="boot")


class TestQueueHistories:
    def test_fifo_respected(self):
        history = History([
            ev(0, "enqueue", ["a"], None, 0, 1),
            ev(0, "enqueue", ["b"], None, 2, 3),
            ev(1, "dequeue", [], "a", 4, 5),
            ev(1, "dequeue", [], "b", 6, 7),
        ])
        assert is_linearizable(history, QueueSpec())

    def test_fifo_violation_rejected(self):
        history = History([
            ev(0, "enqueue", ["a"], None, 0, 1),
            ev(0, "enqueue", ["b"], None, 2, 3),
            ev(1, "dequeue", [], "b", 4, 5),
            ev(1, "dequeue", [], "a", 6, 7),
        ])
        assert not is_linearizable(history, QueueSpec())

    def test_concurrent_enqueues_commute(self):
        history = History([
            ev(0, "enqueue", ["a"], None, 0, 10),
            ev(1, "enqueue", ["b"], None, 0, 10),
            ev(0, "dequeue", [], "b", 11, 12),
            ev(1, "dequeue", [], "a", 13, 14),
        ])
        assert is_linearizable(history, QueueSpec())


class TestPendingOperations:
    def test_pending_op_may_take_effect(self):
        history = History([
            ev(0, "write", ["a"], None, 0, None),  # pending write
            ev(1, "read", [], "a", 1, 2),
        ])
        assert is_linearizable(history, RegisterSpec())

    def test_pending_op_may_be_dropped(self):
        history = History([
            ev(0, "write", ["a"], None, 0, None),
            ev(1, "read", [], None, 1, 2),
        ])
        assert is_linearizable(history, RegisterSpec())

    def test_empty_history(self):
        assert is_linearizable(History([]), RegisterSpec())


class TestNondeterministicSpecs:
    def test_any_witnessed_outcome_accepted(self):
        history = History([
            ev(0, "propose", ["a"], "a", 0, 1),
            ev(1, "propose", ["b"], "b", 2, 3),
        ])
        assert is_linearizable(history, SetConsensusSpec(3, 2))

    def test_overfull_adoption_rejected(self):
        """Three distinct responses from a (3, 2) object cannot happen."""
        history = History([
            ev(0, "propose", ["a"], "a", 0, 1),
            ev(1, "propose", ["b"], "b", 2, 3),
            ev(2, "propose", ["c"], "c", 4, 5),
        ])
        assert not is_linearizable(history, SetConsensusSpec(3, 2))


class TestInterface:
    def test_linearization_order_returned(self):
        history = History([
            ev(1, "read", [], "a", 4, 5),
            ev(0, "write", ["a"], None, 0, 1),
        ])
        order = linearization_of(history, RegisterSpec())
        assert [e.method for e in order] == ["write", "read"]

    def test_check_raises_with_history(self):
        history = History([ev(0, "read", [], "ghost", 0, 1)])
        with pytest.raises(NotLinearizableError) as exc:
            check_linearizable(history, RegisterSpec())
        assert exc.value.history is history
