"""Tests for state-space analysis tools."""

import pytest

from repro.analysis.statespace import (
    NONE_STATE,
    state_graph,
    summarize_state_space,
    verify_determinism,
)
from repro.core.family import HierarchyObjectSpec
from repro.objects.register import RegisterSpec
from repro.objects.rmw import TestAndSetSpec
from repro.objects.set_consensus import SetConsensusSpec


REGISTER_OPS = [("write", ("a",)), ("write", ("b",)), ("read", ())]


class TestStateGraph:
    def test_register_graph_shape(self):
        graph = state_graph(RegisterSpec(), REGISTER_OPS)
        assert set(graph.nodes) == {NONE_STATE, "a", "b"}
        # From every state: write a, write b, read (self-loop) = 3 edges.
        assert graph.number_of_edges() == 9

    def test_edge_attributes(self):
        graph = state_graph(RegisterSpec(), [("write", ("a",))])
        data = list(graph.get_edge_data(NONE_STATE, "a").values())[0]
        assert data["op"] == ("write", ("a",))
        assert data["response"] is None

    def test_tas_graph(self):
        graph = state_graph(TestAndSetSpec(), [("test_and_set", ())])
        assert set(graph.nodes) == {0, 1}
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 1)

    def test_nondeterministic_edges_enumerated(self):
        spec = SetConsensusSpec(3, 2)
        ops = [("propose", ("a",)), ("propose", ("b",))]
        graph = state_graph(spec, ops)
        initial = spec.initial_state()
        after_a = (frozenset({"a"}), 1)
        assert graph.has_edge(initial, after_a)
        # From after_a, proposing b branches into adopt and extend.
        targets = set(graph.successors(after_a))
        assert (frozenset({"a"}), 2) in targets
        assert (frozenset({"a", "b"}), 2) in targets


class TestVerifyDeterminism:
    def test_register_verified(self):
        report = verify_determinism(RegisterSpec(), REGISTER_OPS)
        assert report.deterministic
        assert report.states_checked == 3
        assert "deterministic over" in report.summary()

    def test_family_verified(self):
        spec = HierarchyObjectSpec(2, 1)
        ops = [
            ("invoke", (0, 0, "a")),
            ("invoke", (1, 0, "b")),
            ("invoke", (2, 1, "c")),
        ]
        report = verify_determinism(spec, ops)
        assert report.deterministic

    def test_set_consensus_refuted_with_witness(self):
        spec = SetConsensusSpec(3, 2)
        ops = [("propose", ("a",)), ("propose", ("b",))]
        report = verify_determinism(spec, ops)
        assert not report.deterministic
        state, (method, args) = report.witness
        assert method == "propose"
        assert "nondeterministic" in report.summary()

    def test_flags_agree_with_verification(self):
        """The declared `deterministic` attribute matches systematic
        verification across representative objects."""
        cases = [
            (RegisterSpec(), REGISTER_OPS),
            (TestAndSetSpec(), [("test_and_set", ()), ("read", ())]),
            (SetConsensusSpec(4, 2), [("propose", ("x",)), ("propose", ("y",))]),
            (
                HierarchyObjectSpec(1, 1),
                [("invoke", (0, 0, "a")), ("invoke", (1, 0, "b"))],
            ),
        ]
        for spec, ops in cases:
            report = verify_determinism(spec, ops)
            assert report.deterministic == spec.deterministic, type(spec).__name__


class TestSummaries:
    def test_register_summary(self):
        summary = summarize_state_space(RegisterSpec(), REGISTER_OPS)
        assert summary.states == 3
        assert summary.transitions == 9
        assert summary.depth == 1
        assert summary.sinks == 0

    def test_family_summary_has_sinks(self):
        """A one-shot object's fully-used states are sinks."""
        spec = HierarchyObjectSpec(1, 1)
        ops = [
            ("invoke", (0, 0, "a")),
            ("invoke", (1, 0, "b")),
            ("invoke", (2, 0, "c")),
        ]
        summary = summarize_state_space(spec, ops)
        assert summary.sinks >= 1
        assert summary.depth == 3

    def test_str_rendering(self):
        summary = summarize_state_space(RegisterSpec(), REGISTER_OPS)
        assert "3 states" in str(summary)
