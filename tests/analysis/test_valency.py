"""Tests for valency analysis: bivalence, criticality, counterexamples."""

import pytest

from repro.algorithms.helpers import build_spec
from repro.analysis.valency import (
    classify_valence,
    consensus_counterexample,
    find_critical_configuration,
)
from repro.objects.register import RegisterSpec
from repro.objects.rmw import TestAndSetSpec
from repro.objects.sticky import StickyRegisterSpec
from repro.runtime.ops import invoke


def tas_consensus_spec(inputs):
    """Correct 2-process consensus from test-and-set + registers."""

    def program(pid, value):
        yield invoke(f"v{pid}", "write", value)
        lost = yield invoke("t", "test_and_set")
        if lost == 0:
            return value
        other = yield invoke(f"v{1 - pid}", "read")
        return other

    return build_spec(
        {"t": TestAndSetSpec(), "v0": RegisterSpec(), "v1": RegisterSpec()},
        program,
        inputs,
    )


def naive_register_consensus_spec(inputs):
    """A doomed register-only 'consensus': write own, read other, take
    min — violates agreement under some schedule (FLP/Herlihy)."""

    def program(pid, value):
        yield invoke(f"v{pid}", "write", value)
        other = yield invoke(f"v{1 - pid}", "read")
        if other is None:
            return value
        return min(value, other)

    return build_spec(
        {"v0": RegisterSpec(), "v1": RegisterSpec()}, program, inputs
    )


def sticky_consensus_spec(inputs):
    def program(pid, value):
        decision = yield invoke("s", "propose", value)
        return decision

    return build_spec({"s": StickyRegisterSpec()}, program, inputs)


class TestClassifyValence:
    def test_tas_initial_configuration_is_bivalent(self):
        spec = tas_consensus_spec(["a", "b"])
        report = classify_valence(spec)
        assert report.valence == frozenset({"a", "b"})
        assert report.bivalent

    def test_sticky_becomes_univalent_after_one_step(self):
        spec = sticky_consensus_spec(["a", "b"])
        report = classify_valence(spec)
        assert report.bivalent
        # Every single step decides the winner: the initial config is
        # critical for the sticky register.
        assert report.critical

    def test_valence_after_prefix(self):
        spec = sticky_consensus_spec(["a", "b"])
        report = classify_valence(spec, prefix=[(1, 0)])
        assert report.valence == frozenset({"b"})
        assert not report.bivalent

    def test_children_cover_enabled_steps(self):
        spec = tas_consensus_spec(["a", "b"])
        report = classify_valence(spec)
        assert set(report.children) == {(0, 0), (1, 0)}


class TestCriticalConfiguration:
    def test_tas_protocol_has_critical_configuration(self):
        """The classical picture: walking bivalent children of a correct
        2-process consensus protocol terminates at a critical
        configuration whose pending steps hit the same TAS object."""
        spec = tas_consensus_spec(["a", "b"])
        report = find_critical_configuration(spec)
        assert report is not None
        assert report.critical
        system = spec.replay(report.prefix)
        pending = [system.pending_operation(pid) for pid in system.enabled_pids()]
        targets = {op.target for op in pending}
        assert targets == {"t"}  # both poised on the synchronization kernel

    def test_univalent_protocol_has_no_critical_configuration(self):
        """With equal inputs the protocol is univalent from the start."""
        spec = tas_consensus_spec(["same", "same"])
        assert find_critical_configuration(spec) is None


class TestConsensusCounterexample:
    def test_correct_protocol_has_none(self):
        spec = tas_consensus_spec(["a", "b"])
        assert consensus_counterexample(spec, {0: "a", 1: "b"}) is None

    def test_sticky_protocol_has_none(self):
        spec = sticky_consensus_spec(["a", "b"])
        assert consensus_counterexample(spec, {0: "a", 1: "b"}) is None

    def test_register_protocol_must_fail(self):
        """No wait-free register-only consensus exists: the checker finds
        the violating schedule for this concrete attempt."""
        spec = naive_register_consensus_spec(["b", "a"])
        witness = consensus_counterexample(spec, {0: "b", 1: "a"})
        assert witness is not None
        # Replay confirms: both ran to completion yet disagreed.
        replayed = spec.replay(witness.decisions).finalize()
        assert len(set(replayed.outputs.values())) == 2

    def test_validity_violations_detected(self):
        def program(pid, value):
            yield invoke("r", "read")
            return "made-up"

        spec = build_spec({"r": RegisterSpec()}, program, ["a", "b"])
        witness = consensus_counterexample(spec, {0: "a", 1: "b"})
        assert witness is not None
