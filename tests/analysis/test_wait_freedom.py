"""Tests for the wait-freedom auditor."""

import pytest

from repro.algorithms.helpers import build_spec
from repro.algorithms.safe_agreement import consensus_spec as safe_agreement_spec
from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.analysis.wait_freedom import audit_wait_freedom, sample_wait_freedom
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke


class TestExhaustiveAudit:
    def test_family_protocol_is_wait_free_with_exact_bound(self):
        inputs = ["a", "b", "c"]
        spec = set_consensus_spec(1, 1, inputs)
        report = audit_wait_freedom(spec, max_depth=10)
        assert report.wait_free
        assert report.exhaustive
        assert report.step_bound == 1  # one invoke per process
        assert report.executions_checked == 6

    def test_two_step_protocol_bound(self):
        def program(pid, value):
            yield invoke("r", "write", value)
            seen = yield invoke("r", "read")
            return seen

        spec = build_spec({"r": RegisterSpec()}, program, ["a", "b"])
        report = audit_wait_freedom(spec)
        assert report.wait_free
        assert report.step_bound == 2
        assert report.per_process_bounds == {0: 2, 1: 2}

    def test_safe_agreement_refuted_with_witness(self):
        """Safe agreement spins while a peer is parked at level 1: the
        auditor must produce a starvation witness, not a bound."""
        spec = safe_agreement_spec(2, ["a", "b"])
        report = audit_wait_freedom(spec, max_depth=25)
        assert not report.wait_free
        assert report.witness is not None
        assert "NOT wait-free" in report.summary()

    def test_witness_replays(self):
        spec = safe_agreement_spec(2, ["a", "b"])
        report = audit_wait_freedom(spec, max_depth=25)
        replayed = spec.replay(report.witness.decisions).finalize()
        assert replayed.schedule == report.witness.schedule


class TestSampledAudit:
    def test_large_family_instance(self):
        inputs = [f"v{i}" for i in range(12)]
        spec = set_consensus_spec(2, 2, inputs[:8])
        report = sample_wait_freedom(spec, seeds=range(60))
        assert report.wait_free
        assert not report.exhaustive
        assert report.step_bound == 1

    def test_spinner_detected(self):
        def program(pid, value):
            while True:
                yield invoke("r", "read")

        spec = build_spec({"r": RegisterSpec()}, program, ["x"])
        report = sample_wait_freedom(spec, seeds=range(3), max_steps=100)
        assert not report.wait_free

    def test_summary_mentions_bound(self):
        def program(pid, value):
            yield invoke("r", "write", value)
            return value

        spec = build_spec({"r": RegisterSpec()}, program, ["x", "y"])
        report = sample_wait_freedom(spec, seeds=range(5))
        assert "1 steps per process" in report.summary()
