"""Tests for commute-or-overwrite certificates across the object zoo.

The certificate must *hold* for consensus-number-1 objects (that is
Herlihy's impossibility argument) and *fail with informative witnesses*
for everything stronger — including the paper's family, where the failure
must sit exactly on same-group installs.
"""

import pytest

from repro.analysis.commutativity import (
    commute_or_overwrite_certificate,
    reachable_states,
)
from repro.core.family import HierarchyObjectSpec
from repro.objects.counter import CounterSpec
from repro.objects.queue_stack import QueueSpec
from repro.objects.register import RegisterSpec
from repro.objects.rmw import CompareAndSwapSpec, SwapSpec, TestAndSetSpec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.objects.sticky import StickyRegisterSpec


class TestReachableStates:
    def test_register_states(self):
        states = reachable_states(
            RegisterSpec(), [("write", ("a",)), ("write", ("b",)), ("read", ())]
        )
        assert set(states) == {None, "a", "b"}

    def test_budget_enforced(self):
        with pytest.raises(MemoryError):
            reachable_states(
                CounterSpec(), [("inc", ())], max_states=5
            )

    def test_misuse_branches_skipped(self):
        spec = HierarchyObjectSpec(1, 1)
        ops = [("invoke", (0, 0, "a")), ("invoke", (1, 0, "b"))]
        states = reachable_states(spec, ops)
        assert len(states) >= 4  # initial, a-only, b-only, both


class TestCertifiedLevelOne:
    def test_register_certified(self):
        report = commute_or_overwrite_certificate(
            RegisterSpec(),
            [("write", ("a",)), ("write", ("b",)), ("read", ())],
        )
        assert report.certified, report.summary()

    def test_snapshot_certified(self):
        report = commute_or_overwrite_certificate(
            AtomicSnapshotSpec(2),
            [("update", (0, "a")), ("update", (1, "b")), ("scan", ())],
        )
        assert report.certified, report.summary()

    def test_counter_certified_on_truncated_region(self):
        # Counters have infinite state spaces: truncate and check the
        # explored region is clean (marked non-probative).
        report = commute_or_overwrite_certificate(
            CounterSpec(), [("inc", ()), ("read", ())], max_states=40,
            truncate=True,
        )
        assert report.certified
        assert report.truncated
        assert "TRUNCATED" in report.summary()


class TestFailuresLocateSynchronizationPower:
    def test_test_and_set_fails(self):
        report = commute_or_overwrite_certificate(
            TestAndSetSpec(), [("test_and_set", ()), ("read", ())]
        )
        assert not report.certified
        methods = {w.op_p[0] for w in report.witnesses} | {
            w.op_q[0] for w in report.witnesses
        }
        assert "test_and_set" in methods

    def test_swap_fails(self):
        report = commute_or_overwrite_certificate(
            SwapSpec(), [("swap", ("a",)), ("swap", ("b",)), ("read", ())]
        )
        assert not report.certified

    def test_queue_fails(self):
        report = commute_or_overwrite_certificate(
            QueueSpec(),
            [("enqueue", ("a",)), ("enqueue", ("b",)), ("dequeue", ())],
            max_states=200,
            truncate=True,
        )
        assert not report.certified

    def test_cas_fails(self):
        report = commute_or_overwrite_certificate(
            CompareAndSwapSpec(),
            [("compare_and_swap", (None, "a")), ("compare_and_swap", (None, "b"))],
        )
        assert not report.certified

    def test_sticky_register_fails(self):
        report = commute_or_overwrite_certificate(
            StickyRegisterSpec(), [("propose", ("a",)), ("propose", ("b",))]
        )
        assert not report.certified


class TestFamilyKernel:
    def test_family_fails_exactly_on_group_installs(self):
        """O(2, 1): the certificate's witnesses all involve two installs
        racing for the same untouched group — the n-consensus kernel."""
        spec = HierarchyObjectSpec(2, 1)
        ops = [
            ("invoke", (0, 0, "a")),
            ("invoke", (0, 1, "b")),
            ("invoke", (1, 0, "c")),
        ]
        report = commute_or_overwrite_certificate(spec, ops, max_witnesses=50)
        assert not report.certified
        for witness in report.witnesses:
            group_p = witness.op_p[1][0]
            group_q = witness.op_q[1][0]
            winners = witness.state[0]
            if group_p == group_q:
                # Same group: must be racing an untouched group.
                assert winners[group_p] is None
            else:
                # Cross-group failures are the snapshot coupling: one op
                # installs the other's successor group.
                assert {group_p, group_q} == {0, 1}

    def test_wrn_like_bottom_case(self):
        """n = 1: no same-group racing is possible with distinct one-shot
        ports, but adjacent-group installs still couple via the frozen
        snapshot (the WRN phenomenon); the certificate reports exactly
        those."""
        spec = HierarchyObjectSpec(1, 1)
        ops = [
            ("invoke", (0, 0, "a")),
            ("invoke", (1, 0, "b")),
            ("invoke", (2, 0, "c")),
        ]
        report = commute_or_overwrite_certificate(spec, ops, max_witnesses=50)
        assert not report.certified
        for witness in report.witnesses:
            group_p = witness.op_p[1][0]
            group_q = witness.op_q[1][0]
            assert (group_p - group_q) % 3 in (1, 2)
