"""Unit and integration tests for the Common2 refutation (experiment E6)."""

import pytest

from repro.algorithms.consensus_from_n_consensus import (
    partition_set_consensus_spec as baseline_spec,
)
from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.core.common2 import common2_refutation, refutation_series
from repro.core.consensus_number import consensus_number_of
from repro.core.theorem import is_implementable
from repro.runtime.scheduler import RandomScheduler, SoloScheduler
from repro.tasks import KSetConsensusTask, check_task_random_schedules


class TestCertificate:
    def test_basic_certificate(self):
        cert = common2_refutation(1)
        assert cert.holds
        assert cert.system_size == 6
        assert cert.family_agreement == 2
        assert cert.common2_agreement == 3

    @pytest.mark.parametrize("k", range(1, 10))
    def test_holds_at_every_level(self, k):
        assert common2_refutation(k).holds

    def test_counterexample_has_consensus_number_two(self):
        cert = common2_refutation(2)
        assert consensus_number_of(cert.member.spec()) == 2

    def test_theorem_agrees(self):
        """The certificate is exactly a non-implementability instance of
        the set-consensus theorem: (2(k+2), k+1) not from (2, 1)."""
        for k in range(1, 6):
            assert not is_implementable(2 * (k + 2), k + 1, 2, 1)

    def test_series_gives_distinct_objects(self):
        series = refutation_series(5)
        assert len({cert.member for cert in series}) == 5

    def test_statement_mentions_common2(self):
        assert "Common2" in common2_refutation(1).statement()

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            common2_refutation(0)


class TestExecutableRefutation:
    """Run both sides at N = 6 (n = 2, k = 1): O(2,1) always <= 2 distinct
    decisions; 2-consensus partitioning is forced to 3."""

    INPUTS = ["a", "b", "c", "d", "e", "f"]

    def test_family_side_respects_two_agreement(self):
        spec = set_consensus_spec(2, 1, self.INPUTS)
        report = check_task_random_schedules(
            spec, KSetConsensusTask(2), inputs_dict(self.INPUTS), seeds=range(200)
        )
        assert report.ok, report.reason

    def test_common2_side_forced_to_three(self):
        spec = baseline_spec(2, self.INPUTS)
        execution = spec.run(SoloScheduler([0, 2, 4, 1, 3, 5]))
        assert len(execution.distinct_outputs()) == 3

    def test_common2_side_never_exceeds_three(self):
        spec = baseline_spec(2, self.INPUTS)
        for seed in range(100):
            execution = spec.run(RandomScheduler(seed))
            assert len(execution.distinct_outputs()) <= 3
