"""Unit tests for consensus-number accounting."""

import math

import pytest

from repro.core.consensus_number import (
    KNOWN_CONSENSUS_NUMBERS,
    consensus_number_of,
    is_sub_consensus,
)
from repro.core.family import HierarchyObjectSpec
from repro.errors import ReproError
from repro.objects.base import DeterministicObjectSpec
from repro.objects.consensus_object import NConsensusSpec
from repro.objects.counter import CounterSpec, DoorwaySpec
from repro.objects.queue_stack import QueueSpec, StackSpec
from repro.objects.register import ArraySpec, RegisterSpec
from repro.objects.rmw import (
    CompareAndSwapSpec,
    FetchAndAddSpec,
    SwapSpec,
    TestAndSetSpec,
)
from repro.objects.set_consensus import SetConsensusSpec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.objects.sticky import StickyBitSpec, StickyRegisterSpec


class TestClassicalValues:
    @pytest.mark.parametrize(
        "spec",
        [
            RegisterSpec(),
            ArraySpec(3),
            CounterSpec(),
            DoorwaySpec(),
            AtomicSnapshotSpec(3),
        ],
    )
    def test_level_one(self, spec):
        assert consensus_number_of(spec) == 1

    @pytest.mark.parametrize(
        "spec",
        [TestAndSetSpec(), SwapSpec(), FetchAndAddSpec(), QueueSpec(), StackSpec()],
    )
    def test_level_two(self, spec):
        assert consensus_number_of(spec) == 2

    @pytest.mark.parametrize(
        "spec",
        [CompareAndSwapSpec(), StickyBitSpec(), StickyRegisterSpec()],
    )
    def test_universal_objects(self, spec):
        assert consensus_number_of(spec) == math.inf

    def test_n_consensus_parameterized(self):
        assert consensus_number_of(NConsensusSpec(5)) == 5

    def test_set_consensus_j1_is_m_consensus(self):
        assert consensus_number_of(SetConsensusSpec(5, 1)) == 5

    def test_set_consensus_j2_is_level_one(self):
        assert consensus_number_of(SetConsensusSpec(5, 2)) == 1

    @pytest.mark.parametrize("n,k", [(1, 1), (2, 1), (2, 5), (4, 2)])
    def test_family_is_level_n(self, n, k):
        """The paper's headline: consensus number n at *every* level k."""
        assert consensus_number_of(HierarchyObjectSpec(n, k)) == n


class TestLookupMachinery:
    def test_unknown_spec_rejected(self):
        class Mystery(DeterministicObjectSpec):
            def initial_state(self):
                return None

            def do_poke(self, state):
                return None, state

        with pytest.raises(ReproError, match="no recorded consensus number"):
            consensus_number_of(Mystery())

    def test_subclasses_inherit_via_mro(self):
        class FancyQueue(QueueSpec):
            pass

        assert consensus_number_of(FancyQueue()) == 2

    def test_is_sub_consensus(self):
        assert is_sub_consensus(RegisterSpec(), 1)
        assert is_sub_consensus(HierarchyObjectSpec(2, 3), 2)
        assert not is_sub_consensus(HierarchyObjectSpec(3, 1), 2)
        assert not is_sub_consensus(CompareAndSwapSpec(), 100)

    def test_registry_covers_whole_zoo(self):
        from repro import objects as zoo

        for name in zoo.__all__:
            klass = getattr(zoo, name)
            if isinstance(klass, type) and name.endswith("Spec") and name not in (
                "ObjectSpec",
                "DeterministicObjectSpec",
            ):
                assert any(
                    k in KNOWN_CONSENSUS_NUMBERS for k in klass.__mro__
                ), f"{name} missing from the registry"
