"""Unit and property tests for the set-consensus implementability theorem."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theorem import (
    equivalent_power,
    implementability_conditions,
    is_implementable,
    max_agreement,
    min_agreement_needed,
    strictly_stronger,
)

# Strategy for legal (m, j) object parameters.
mj = st.tuples(st.integers(2, 20), st.integers(1, 19)).filter(lambda t: t[1] < t[0])


class TestMaxAgreement:
    def test_single_cohort(self):
        assert max_agreement(3, 3, 1) == 1

    def test_exact_multiple(self):
        assert max_agreement(6, 3, 1) == 2

    def test_remainder_below_j(self):
        # 7 processes from (3, 2): 2 cohorts x 2 + remainder min(1, 2) = 5.
        assert max_agreement(7, 3, 2) == 5

    def test_remainder_above_j(self):
        # 5 processes from (3, 1): 1 cohort + min(2, 1) = 2.
        assert max_agreement(5, 3, 1) == 2

    def test_fewer_processes_than_m(self):
        assert max_agreement(2, 5, 3) == 2  # trivial: everyone own value? min(2,3)=2

    def test_zero_processes(self):
        assert max_agreement(0, 3, 1) == 0

    def test_registers_equivalent_point(self):
        # (m, m-?) with j = m - 1 barely helps: N = m gives m - 1.
        assert max_agreement(4, 4, 3) == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            max_agreement(3, 2, 0)
        with pytest.raises(ValueError):
            max_agreement(3, 2, 3)
        with pytest.raises(ValueError):
            max_agreement(-1, 2, 1)

    def test_alias(self):
        assert min_agreement_needed(7, 3, 2) == max_agreement(7, 3, 2)

    @given(n=st.integers(0, 200), params=mj)
    def test_bounded_by_n_and_monotone_in_n(self, n, params):
        m, j = params
        value = max_agreement(n, m, j)
        assert 0 <= value <= n
        assert value <= max_agreement(n + 1, m, j) <= value + 1

    @given(n=st.integers(1, 200), params=mj)
    def test_paper_either_or_form(self, n, params):
        """The paper's either/or phrasing equals the closed form."""
        m, j = params
        full, remainder = divmod(n, m)
        expected = j * full + remainder if remainder <= j else j * (full + 1)
        assert max_agreement(n, m, j) == expected


class TestIsImplementable:
    def test_self_implementation(self):
        assert is_implementable(5, 2, 5, 2)

    def test_weakening_always_possible(self):
        assert is_implementable(5, 3, 5, 2)

    def test_strengthening_impossible(self):
        assert not is_implementable(5, 1, 5, 2)

    def test_k_at_least_n_trivial(self):
        assert is_implementable(3, 3, 100, 99)
        assert is_implementable(3, 5, 100, 99)

    def test_scaling_consensus(self):
        # 2-consensus gives ceil(N/2): (6, 3) yes, (6, 2) no.
        assert is_implementable(6, 3, 2, 1)
        assert not is_implementable(6, 2, 2, 1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            is_implementable(0, 1, 2, 1)

    @given(params=mj, n=st.integers(1, 60), k=st.integers(1, 59))
    def test_monotone_in_k(self, params, n, k):
        m, j = params
        if is_implementable(n, k, m, j):
            assert is_implementable(n, min(k + 1, n + 5), m, j)

    @given(a=mj, b=mj, c=mj)
    @settings(max_examples=200)
    def test_transitivity(self, a, b, c):
        """If A-power implements B's task and B-power implements C's task,
        A-power implements C's task — implementations compose."""
        (ma, ja), (mb, jb), (mc, jc) = a, b, c
        if is_implementable(mb, jb, ma, ja) and is_implementable(mc, jc, mb, jb):
            assert is_implementable(mc, jc, ma, ja)


class TestConditionsAndOrder:
    def test_explain_mentions_cohorts(self):
        verdict = implementability_conditions(7, 5, 3, 2)
        assert "cohorts" in verdict.explain()
        assert verdict.holds

    def test_needed_value(self):
        verdict = implementability_conditions(7, 4, 3, 2)
        assert verdict.needed == 5
        assert not verdict.holds

    def test_strictly_stronger_consensus_chain(self):
        # 3-consensus strictly stronger than 2-consensus.
        assert strictly_stronger(3, 1, 2, 1)
        assert not strictly_stronger(2, 1, 3, 1)

    def test_equivalence_of_scaled_copies(self):
        # (2, 1) and (4, 2): 2-consensus implements (4,2) (two cohorts);
        # (4, 2) implements (2, 1)?  max_agreement(2, 4, 2) = 2 > 1: no.
        assert is_implementable(4, 2, 2, 1)
        assert not is_implementable(2, 1, 4, 2)
        assert not equivalent_power(2, 1, 4, 2)

    def test_incomparable_pair_exists(self):
        # The partial order is genuinely partial.
        assert not is_implementable(5, 2, 7, 3) or not is_implementable(7, 3, 5, 2)
        found = False
        for (m1, j1) in [(5, 2), (7, 3), (3, 2)]:
            for (m2, j2) in [(7, 3), (4, 3), (2, 1)]:
                if (m1, j1) != (m2, j2):
                    if not is_implementable(m2, j2, m1, j1) and not is_implementable(
                        m1, j1, m2, j2
                    ):
                        found = True
        assert found

    @given(params=mj)
    def test_reflexivity(self, params):
        m, j = params
        assert is_implementable(m, j, m, j)
