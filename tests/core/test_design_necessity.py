"""Design-necessity regressions: weaken a load-bearing mechanism and
watch the explorer produce the counterexample.

DESIGN.md and the module docs claim two mechanisms are essential; these
tests keep those claims honest by implementing the weakened variants and
exhibiting their failures.
"""

from typing import Any, Tuple

import pytest

from repro.algorithms.helpers import build_spec
from repro.analysis.linearizability import is_linearizable
from repro.core.family import FamilyState, HierarchyObjectSpec
from repro.objects.consensus_object import NConsensusSpec
from repro.objects.rmw import TestAndSetSpec
from repro.runtime.explorer import explore_executions, find_execution
from repro.runtime.history import history_from_execution
from repro.runtime.ops import call_marker, invoke, return_marker


class LiveReadVariant(HierarchyObjectSpec):
    """The broken sibling of O(n, k): returns the successor group's
    *current* winner instead of the frozen install-time snapshot."""

    def do_invoke(
        self, state: FamilyState, group: int, slot: int, value: Any
    ) -> Tuple[Any, FamilyState]:
        (winner, _frozen), new_state = super().do_invoke(state, group, slot, value)
        winners, snapshots, used = new_state
        live_successor = winners[(group + 1) % self.groups]
        return (winner, live_successor), new_state


class TestFrozenSnapshotIsEssential:
    def test_live_read_variant_breaks_the_bound(self):
        """With live successor reads, late group members adopt the
        last-installed winner backwards around the ring: some schedule
        of the 6-process protocol produces 3 > k+1 = 2 decisions."""
        n, k = 2, 1
        spec = LiveReadVariant(n, k)
        inputs = [f"v{i}" for i in range(spec.ports)]

        def program(pid, value):
            group, slot = divmod(pid, n)
            winner, successor = yield invoke("O", "invoke", group, slot, value)
            return successor if successor is not None else winner

        system = build_spec({"O": spec}, program, inputs)
        witness = find_execution(
            system,
            lambda e: len(e.distinct_outputs()) > k + 1,
            max_depth=10,
        )
        assert witness is not None, "live-read variant unexpectedly safe"
        assert len(witness.distinct_outputs()) == 3

    def test_frozen_spec_has_no_such_execution(self):
        """The same search against the real object finds nothing — the
        freeze is exactly what closes the leak."""
        n, k = 2, 1
        spec = HierarchyObjectSpec(n, k)
        inputs = [f"v{i}" for i in range(spec.ports)]

        def program(pid, value):
            group, slot = divmod(pid, n)
            winner, snapshot = yield invoke("O", "invoke", group, slot, value)
            return snapshot if snapshot is not None else winner

        system = build_spec({"O": spec}, program, inputs)
        witness = find_execution(
            system,
            lambda e: len(e.distinct_outputs()) > k + 1,
            max_depth=10,
        )
        assert witness is None


def bare_tournament_spec():
    """Three processes, tournament WITHOUT the doorway (leaves 0, 1, 2 of
    a 4-leaf tree), annotated as TAS operations."""
    from repro.objects.register import RegisterSpec

    objects = {
        "t[0,0]": NConsensusSpec(2),
        "t[0,1]": NConsensusSpec(2),
        "t[1,0]": NConsensusSpec(2),
        "warm": RegisterSpec(),
    }

    def program(pid, leaf):
        # Warm-up step so the logical TAS interval starts when the
        # process is first scheduled, not at priming time.
        yield invoke("warm", "read")
        yield call_marker("tas", "test_and_set")
        position = leaf
        outcome = 0
        for level in range(2):
            position //= 2
            decided = yield invoke(f"t[{level},{position}]", "propose", leaf)
            if decided != leaf:
                outcome = 1
                break
        yield return_marker(outcome)
        return outcome

    return build_spec(objects, program, [0, 1, 2])


class TestDoorwayIsEssential:
    def test_bare_tournament_not_linearizable(self):
        """Some schedule lets a process lose and return before anyone
        wins, then a later starter wins — no first-wins order exists."""
        spec = bare_tournament_spec()
        reference = TestAndSetSpec()

        def violates(execution):
            history = history_from_execution(execution)
            return not is_linearizable(history, reference)

        witness = find_execution(spec, violates, max_depth=20)
        assert witness is not None, "bare tournament unexpectedly linearizable"

    def test_bare_tournament_still_elects_one_winner(self):
        """The weaker guarantee survives: exactly one WIN — which is why
        bare tournaments are fine for *election* but not for TAS."""
        spec = bare_tournament_spec()
        for execution in explore_executions(spec, max_depth=20):
            assert list(execution.outputs.values()).count(0) == 1
