"""Tests for the set-consensus ratio implications."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.power import family_agreement
from repro.core.ratio import (
    anchor_position,
    asymptotic_ratio,
    best_level_for,
    ratio_frontier,
    solves_ratio_task,
)

nk = st.tuples(st.integers(1, 5), st.integers(1, 5))


class TestAsymptoticRatio:
    def test_values(self):
        assert asymptotic_ratio(2, 1) == Fraction(2, 6)
        assert asymptotic_ratio(2, 2) == Fraction(3, 8)
        assert asymptotic_ratio(1, 1) == Fraction(2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            asymptotic_ratio(0, 1)

    @given(params=nk)
    def test_always_below_n_consensus(self, params):
        n, k = params
        assert asymptotic_ratio(n, k) < Fraction(1, n)

    @given(params=nk)
    def test_descending_chain_in_ratio(self, params):
        """Lower k = smaller ratio = stronger — matching the cover DP."""
        n, k = params
        assert asymptotic_ratio(n, k) < asymptotic_ratio(n, k + 1)

    @given(params=nk, total=st.integers(1, 200))
    @settings(max_examples=150)
    def test_ratio_is_the_cover_limit(self, params, total):
        """K(N)/N converges to the ratio from above (within one object's
        worth of slack)."""
        n, k = params
        ratio = asymptotic_ratio(n, k)
        value = family_agreement(n, k, total)
        assert value >= ratio * total - 1
        assert value <= ratio * total + (k + 2)


class TestSolvesRatioTask:
    def test_headline_tasks(self):
        assert solves_ratio_task(2, 1, 6, 2)
        assert not solves_ratio_task(2, 1, 6, 1)
        assert solves_ratio_task(2, 1, 12, 4)
        assert not solves_ratio_task(2, 1, 12, 3)

    def test_trivial_agreement(self):
        assert solves_ratio_task(2, 1, 3, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            solves_ratio_task(2, 1, 0, 1)


class TestBestLevelFor:
    def test_weakest_sufficient_level(self):
        # (6, 2): level 1 works; level 2 gives K_2(6)=3 > 2.
        assert best_level_for(2, 6, 2) == 1

    def test_easier_task_allows_weaker_level(self):
        # (8, 3): level 2 achieves exactly 3; level 3 gives 4.
        assert best_level_for(2, 8, 3) == 2

    def test_impossible_task(self):
        # (6, 1) is consensus for 6 processes: no level does that.
        assert best_level_for(2, 6, 1) is None

    def test_trivial_task(self):
        assert best_level_for(2, 4, 4, k_max=10) == 10


class TestFrontierAndAnchors:
    def test_frontier_shape(self):
        frontier = ratio_frontier(2, 4)
        assert len(frontier) == 4
        ratios = [point.ratio for point in frontier]
        assert ratios == sorted(ratios)  # descending chain: increasing ratio
        assert "(6, 2)-set consensus" in frontier[0].example_task

    def test_anchor_position_upper_bound(self):
        position = anchor_position(2, 1)
        assert position["family"] < position["n-consensus"]

    @given(params=nk)
    def test_crossover_rule(self, params):
        """ratio > 1/(n+1) iff k > n-1 — the documented reconstruction
        divergence."""
        n, k = params
        position = anchor_position(n, k)
        assert position["above_next_anchor"] == (k > n - 1)
