"""Protocol-level validation of the O(n, k) family (experiments E1/E2).

These are the paper's positive claims run under *every* schedule for small
parameters and under many random schedules for larger ones:

* E1 — consensus for n processes (consensus number >= n);
* E2 — (n(k+2), k+1)-set consensus with one object, including crash
  prefixes; tightness (the adversary can force exactly k+1); the
  partition/ratio extension matching the cover closed form.
"""

import pytest

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import (
    consensus_spec,
    partition_set_consensus_spec,
    set_consensus_spec,
    worst_case_agreement,
)
from repro.core.power import family_agreement
from repro.runtime.explorer import Explorer, explore_executions
from repro.runtime.scheduler import (
    CrashingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SoloScheduler,
)
from repro.tasks import (
    ConsensusTask,
    KSetConsensusTask,
    check_task_all_schedules,
    check_task_random_schedules,
)


def letters(count: int):
    return [chr(ord("a") + i) for i in range(count)]


class TestE1ConsensusLowerBound:
    @pytest.mark.parametrize("n,k", [(1, 1), (2, 1), (2, 2), (3, 1)])
    def test_consensus_all_schedules(self, n, k):
        inputs = letters(n)
        spec = consensus_spec(n, k, inputs)
        report = check_task_all_schedules(
            spec, ConsensusTask(), inputs_dict(inputs), max_depth=10
        )
        assert report.ok, report.reason

    def test_fewer_participants_also_agree(self):
        inputs = letters(2)
        spec = consensus_spec(3, 1, inputs)
        report = check_task_all_schedules(
            spec, ConsensusTask(), inputs_dict(inputs), max_depth=10
        )
        assert report.ok, report.reason

    def test_too_many_participants_rejected(self):
        with pytest.raises(ValueError):
            consensus_spec(2, 1, letters(3))

    def test_decision_is_first_writers_value(self):
        inputs = ["x", "y"]
        spec = consensus_spec(2, 1, inputs)
        execution = spec.run(SoloScheduler([1, 0]))
        assert set(execution.outputs.values()) == {"y"}


class TestE2SetConsensus:
    def test_full_occupancy_exhaustive_o21(self):
        """All 720 schedules of the 6-process O(2,1) protocol: always
        exactly <= 2 distinct decisions."""
        inputs = letters(6)
        spec = set_consensus_spec(2, 1, inputs)
        report = check_task_all_schedules(
            spec, KSetConsensusTask(2), inputs_dict(inputs), max_depth=10
        )
        assert report.ok, report.reason
        assert report.executions_checked == 720
        assert set(report.distinct_output_counts) <= {1, 2}

    def test_full_occupancy_exhaustive_o11(self):
        """n=1 (the WRN-like bottom case): 3 ports, 2-set consensus."""
        inputs = letters(3)
        spec = set_consensus_spec(1, 1, inputs)
        report = check_task_all_schedules(
            spec, KSetConsensusTask(2), inputs_dict(inputs), max_depth=10
        )
        assert report.ok, report.reason

    @pytest.mark.parametrize("n,k", [(2, 2), (3, 1), (2, 3), (4, 1)])
    def test_full_occupancy_randomized(self, n, k):
        ports = n * (k + 2)
        inputs = letters(ports)
        spec = set_consensus_spec(n, k, inputs)
        report = check_task_random_schedules(
            spec, KSetConsensusTask(k + 1), inputs_dict(inputs), seeds=range(200)
        )
        assert report.ok, report.reason

    def test_bound_is_tight(self):
        """The solo adversary in ring order forces exactly k+1 values."""
        inputs = letters(6)
        spec = set_consensus_spec(2, 1, inputs)
        # Ring-spread: pids 0,1,2 are slot 0 of groups 0,1,2.  Run the
        # installers in ascending group order so every snapshot misses,
        # then everyone else.
        execution = spec.run(SoloScheduler([0, 1, 2, 3, 4, 5]))
        assert len(execution.distinct_outputs()) == 2

    def test_crash_prefixes_respect_bound(self):
        """k-agreement holds even when processes crash mid-protocol."""
        inputs = letters(6)
        for crashed in range(6):
            spec = set_consensus_spec(2, 1, inputs)
            scheduler = CrashingScheduler(RandomScheduler(crashed), {crashed: 0})
            execution = spec.run(scheduler)
            decisions = set(execution.outputs.values())
            assert len(decisions) <= 2
            assert decisions <= set(inputs)

    def test_partial_occupancy_all_schedules(self):
        inputs = letters(4)
        spec = set_consensus_spec(2, 1, inputs)
        report = check_task_all_schedules(
            spec, KSetConsensusTask(2), inputs_dict(inputs), max_depth=10
        )
        assert report.ok, report.reason

    def test_occupancy_bounds_validated(self):
        with pytest.raises(ValueError):
            set_consensus_spec(2, 1, letters(2))  # below ring coverage
        with pytest.raises(ValueError):
            set_consensus_spec(2, 1, letters(7))  # above port count


class TestE2PartitionExtension:
    @pytest.mark.parametrize(
        "n,k,total",
        [(2, 1, 12), (2, 1, 9), (2, 1, 7), (1, 1, 5), (2, 2, 10), (3, 1, 8)],
    )
    def test_partition_respects_cover_bound_randomized(self, n, k, total):
        inputs = letters(total)
        spec = partition_set_consensus_spec(n, k, inputs)
        bound = worst_case_agreement(n, k, total)
        task = KSetConsensusTask(bound)
        report = check_task_random_schedules(
            spec, task, inputs_dict(inputs), seeds=range(150)
        )
        assert report.ok, report.reason

    def test_partition_bound_tight_for_full_blocks(self):
        """Two full rings run solo in ring order: exactly 2 + 2 values."""
        inputs = letters(12)
        spec = partition_set_consensus_spec(2, 1, inputs)
        execution = spec.run(SoloScheduler(list(range(12))))
        assert len(execution.distinct_outputs()) == family_agreement(2, 1, 12)

    def test_remainder_concentrates_when_small(self):
        # 8 = 6 + 2: remainder 2 <= n(k+1) = 4 concentrates into 1 group.
        inputs = letters(8)
        spec = partition_set_consensus_spec(2, 1, inputs)
        execution = spec.run(RoundRobinScheduler())
        assert len(execution.distinct_outputs()) <= family_agreement(2, 1, 8)

    def test_remainder_ring_spreads_when_large(self):
        # 11 = 6 + 5: remainder 5 > 4 ring-spreads, bound 2 + 2 = 4.
        inputs = letters(11)
        spec = partition_set_consensus_spec(2, 1, inputs)
        report = check_task_random_schedules(
            spec,
            KSetConsensusTask(family_agreement(2, 1, 11)),
            inputs_dict(inputs),
            seeds=range(100),
        )
        assert report.ok, report.reason

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            partition_set_consensus_spec(2, 1, [])


class TestBeatsNConsensusBaseline:
    def test_family_beats_partitioned_n_consensus(self):
        """The executable heart of the separation: at N = n(k+2), the
        family protocol never exceeds k+1 decisions, while the n-consensus
        partition protocol is *forced* to k+2 by the solo adversary."""
        from repro.algorithms.consensus_from_n_consensus import (
            partition_set_consensus_spec as baseline_spec,
        )

        inputs = letters(6)  # n=2, k=1: N = 6
        family = set_consensus_spec(2, 1, inputs)
        worst_family = 0
        for seed in range(100):
            execution = family.run(RandomScheduler(seed))
            worst_family = max(worst_family, len(execution.distinct_outputs()))
        assert worst_family <= 2

        baseline = baseline_spec(2, inputs)
        execution = baseline.run(SoloScheduler([0, 2, 4, 1, 3, 5]))
        assert len(execution.distinct_outputs()) == 3
