"""Tests for the open-questions frontier computations."""

from fractions import Fraction

import pytest

from repro.core.open_questions import (
    consensus_number_one_frontier,
    open_region_summary,
    power_fingerprint,
    ratio_gap,
    separation_is_tight,
)
from repro.core.power import family_profile, n_consensus_profile


class TestFingerprint:
    def test_identical_profiles_identical_fingerprints(self):
        a = power_fingerprint(family_profile(2, 1), 20)
        b = power_fingerprint(family_profile(2, 1), 20)
        assert a == b

    def test_distinct_levels_distinct_fingerprints(self):
        a = power_fingerprint(family_profile(2, 1), 20)
        b = power_fingerprint(family_profile(2, 2), 20)
        assert a != b

    def test_family_vs_consensus_distinct(self):
        family = power_fingerprint(family_profile(2, 1), 10)
        consensus = power_fingerprint(n_consensus_profile(2), 10)
        assert family != consensus
        assert all(f <= c for f, c in zip(family, consensus))


class TestConsensusOneFrontier:
    def test_frontier_values(self):
        frontier = consensus_number_one_frontier(3)
        assert frontier == [Fraction(2, 3), Fraction(3, 4), Fraction(4, 5)]

    def test_two_thirds_is_the_floor(self):
        frontier = consensus_number_one_frontier(32)
        assert min(frontier) == Fraction(2, 3)

    def test_ratio_gap_below_floor_is_open(self):
        gap = ratio_gap(Fraction(1, 2))
        assert gap == Fraction(2, 3) - Fraction(1, 2)

    def test_ratio_gap_at_floor_is_closed(self):
        assert ratio_gap(Fraction(2, 3)) is None


class TestSeparationTightness:
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_reconstruction_constant_is_minimal(self, n, k):
        assert separation_is_tight(n, k)


class TestSummary:
    def test_summary_shape(self):
        summary = open_region_summary()
        assert summary["two_thirds_reached"]
        assert summary["below_two_thirds_open"]
        assert summary["consensus1_best_ratio"] == Fraction(2, 3)
