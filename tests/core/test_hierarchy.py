"""Unit tests for the hierarchy graphs and strictness witnesses."""

import networkx as nx
import pytest

from repro.core.family import FamilyMember
from repro.core.hierarchy import (
    equivalence_classes,
    family_chain,
    family_hierarchy_graph,
    set_consensus_lattice,
    strictness_witness,
)
from repro.core.theorem import is_implementable


class TestStrictnessWitness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_witness_exists_at_every_level(self, n, k):
        level = strictness_witness(n, k)
        assert level.agreement_here < level.agreement_weaker
        assert level.agreement_here == k + 1
        assert level.agreement_weaker == k + 2

    def test_witness_system_size(self):
        level = strictness_witness(2, 1)
        assert level.witness_system_size == FamilyMember(2, 1).ports

    def test_certificate_text(self):
        text = strictness_witness(2, 1).certificate()
        assert "O(2,1) > O(2,2)" in text

    def test_chain_is_infinite_in_principle(self):
        """Truncated check of 'infinitely many levels': the witness
        construction succeeds for a long run of k."""
        chain = family_chain(2, 25)
        assert len(chain) == 25
        assert all(level.agreement_here == level.member.k + 1 for level in chain)


class TestFamilyGraph:
    def test_nodes_and_anchors(self):
        graph = family_hierarchy_graph(2, 3)
        assert "O(2,1)" in graph
        assert "O(2,3)" in graph
        assert "2-consensus" in graph
        assert "registers" in graph

    def test_chain_edges_carry_witnesses(self):
        graph = family_hierarchy_graph(2, 3)
        witness = graph.edges["O(2,1)", "O(2,2)"]["witness"]
        assert witness.agreement_here == 2

    def test_every_level_dominates_n_consensus(self):
        graph = family_hierarchy_graph(3, 3)
        for k in (1, 2, 3):
            assert graph.has_edge(f"O(3,{k})", "3-consensus")

    def test_graph_is_acyclic(self):
        graph = family_hierarchy_graph(2, 5)
        assert nx.is_directed_acyclic_graph(graph)

    def test_chain_is_a_path(self):
        graph = family_hierarchy_graph(2, 4)
        for k in (1, 2, 3):
            assert graph.has_edge(f"O(2,{k})", f"O(2,{k + 1})")
            assert not graph.has_edge(f"O(2,{k + 1})", f"O(2,{k})")


class TestSetConsensusLattice:
    def test_nodes(self):
        graph = set_consensus_lattice(4)
        assert "(2,1)-SC" in graph
        assert "(4,3)-SC" in graph

    def test_edges_match_theorem(self):
        graph = set_consensus_lattice(6)
        for u, v in graph.edges:
            mu, ju = graph.nodes[u]["m"], graph.nodes[u]["j"]
            mv, jv = graph.nodes[v]["m"], graph.nodes[v]["j"]
            assert is_implementable(mv, jv, mu, ju)

    def test_consensus_chain_present(self):
        graph = set_consensus_lattice(5)
        assert graph.has_edge("(3,1)-SC", "(2,1)-SC")
        assert not graph.has_edge("(2,1)-SC", "(3,1)-SC")

    def test_equivalence_classes_partition_nodes(self):
        classes = equivalence_classes(4)
        members = [node for cls in classes for node in cls]
        assert sorted(members) == sorted(set_consensus_lattice(4).nodes)

    def test_known_equivalence(self):
        """(2,1) and (4,2) are NOT equivalent (scaling loses nothing only
        one way); every class here is checked mutual."""
        classes = equivalence_classes(4)
        lookup = {node: i for i, cls in enumerate(classes) for node in cls}
        assert lookup["(2,1)-SC"] != lookup["(4,2)-SC"]
