"""Unit tests for the O(n, k) sequential specification."""

import pytest

from repro.core.family import FamilyMember, HierarchyObjectSpec
from repro.errors import IllegalOperationError


def fresh(n=2, k=1, **kwargs):
    spec = HierarchyObjectSpec(n, k, **kwargs)
    return spec, spec.initial_state()


class TestGeometry:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HierarchyObjectSpec(0, 1)
        with pytest.raises(ValueError):
            HierarchyObjectSpec(2, 0)

    @pytest.mark.parametrize("n,k", [(1, 1), (2, 1), (2, 3), (3, 2)])
    def test_groups_and_ports(self, n, k):
        spec = HierarchyObjectSpec(n, k)
        assert spec.groups == k + 2
        assert spec.ports == n * (k + 2)

    def test_port_enumeration_covers_all(self):
        spec = HierarchyObjectSpec(2, 1)
        ports = {spec.port(i) for i in range(spec.ports)}
        assert ports == {(g, s) for g in range(3) for s in range(2)}

    def test_port_out_of_range(self):
        spec = HierarchyObjectSpec(2, 1)
        with pytest.raises(ValueError):
            spec.port(6)


class TestInstallSemantics:
    def test_first_invocation_installs_winner(self):
        spec, state = fresh()
        (winner, snapshot), state = spec.apply_one(state, "invoke", (0, 0, "a"))
        assert winner == "a"
        assert snapshot is None

    def test_second_member_sees_same_pair(self):
        spec, state = fresh()
        _resp, state = spec.apply_one(state, "invoke", (0, 0, "a"))
        (winner, snapshot), state = spec.apply_one(state, "invoke", (0, 1, "b"))
        assert winner == "a"  # first write wins
        assert snapshot is None  # frozen at install, not re-read

    def test_snapshot_freezes_at_install(self):
        """Install group 1, then group 0: group 0's snapshot sees group 1;
        later installs of other groups never change it."""
        spec, state = fresh(2, 1)
        _resp, state = spec.apply_one(state, "invoke", (1, 0, "b"))
        (winner, snapshot), state = spec.apply_one(state, "invoke", (0, 0, "a"))
        assert (winner, snapshot) == ("a", "b")
        # Installing group 2 afterwards does not alter group 1's snapshot.
        _resp, state = spec.apply_one(state, "invoke", (2, 0, "c"))
        (winner1, snapshot1), state = spec.apply_one(state, "invoke", (1, 1, "x"))
        assert winner1 == "b"
        assert snapshot1 is None  # group 2 was empty when group 1 installed

    def test_ring_wraps_around(self):
        spec, state = fresh(2, 1)  # groups 0, 1, 2; successor of 2 is 0
        _resp, state = spec.apply_one(state, "invoke", (0, 0, "a"))
        (winner, snapshot), state = spec.apply_one(state, "invoke", (2, 0, "c"))
        assert (winner, snapshot) == ("c", "a")

    def test_install_order_determines_snapshots(self):
        spec, state = fresh(1, 1)  # 3 groups x 1 slot: WRN-like
        _r, state = spec.apply_one(state, "invoke", (0, 0, "a"))
        _r, state = spec.apply_one(state, "invoke", (1, 0, "b"))
        (w2, s2), state = spec.apply_one(state, "invoke", (2, 0, "c"))
        assert (w2, s2) == ("c", "a")  # sees the wrap predecessor... successor 0


class TestMisuse:
    def test_none_value_rejected(self):
        spec, state = fresh()
        with pytest.raises(IllegalOperationError):
            spec.apply_one(state, "invoke", (0, 0, None))

    @pytest.mark.parametrize("group,slot", [(-1, 0), (3, 0), (0, -1), (0, 2)])
    def test_port_bounds_enforced(self, group, slot):
        spec, state = fresh(2, 1)
        with pytest.raises(IllegalOperationError, match="out of range"):
            spec.apply_one(state, "invoke", (group, slot, "v"))

    def test_one_shot_port_reuse_rejected(self):
        spec, state = fresh()
        _r, state = spec.apply_one(state, "invoke", (0, 0, "a"))
        with pytest.raises(IllegalOperationError, match="used twice"):
            spec.apply_one(state, "invoke", (0, 0, "b"))

    def test_multi_shot_variant_allows_reuse(self):
        spec, state = fresh(one_shot=False)
        _r, state = spec.apply_one(state, "invoke", (0, 0, "a"))
        (winner, _s), state = spec.apply_one(state, "invoke", (0, 0, "b"))
        assert winner == "a"  # reuse allowed, first-write still sticky

    def test_is_deterministic(self):
        assert HierarchyObjectSpec(2, 1).deterministic


class TestFamilyMember:
    def test_data_sheet_fields(self):
        member = FamilyMember(2, 1)
        assert member.groups == 3
        assert member.ports == 6
        assert member.consensus_number == 2
        assert (member.task.m, member.task.j) == (6, 2)
        assert member.separation_system_size == 5
        assert member.paper_separation_system_size == 5  # 2*1+2+1

    def test_paper_constant_formula(self):
        member = FamilyMember(3, 4)
        assert member.paper_separation_system_size == 3 * 4 + 3 + 4

    def test_weaker_neighbor(self):
        member = FamilyMember(2, 1)
        assert member.weaker_neighbor == FamilyMember(2, 2)

    def test_describe_mentions_key_numbers(self):
        text = FamilyMember(2, 1).describe()
        assert "O(2, 1)" in text
        assert "6 ports" in text
        assert "consensus number 2" in text

    def test_agreement_delegates_to_cover(self):
        member = FamilyMember(2, 1)
        assert member.agreement(6) == 2
        assert member.agreement(5) == 2
        assert member.agreement(4) == 2

    def test_spec_roundtrip(self):
        spec = FamilyMember(3, 2).spec()
        assert (spec.n, spec.k) == (3, 2)
        assert spec.one_shot
