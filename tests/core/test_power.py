"""Unit and property tests for power descriptors and the cover theorem."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.power import (
    PowerProfile,
    SetConsensusPower,
    antichain,
    chain_is_strictly_increasing,
    cover_agreement,
    family_agreement,
    family_profile,
    n_consensus_profile,
    register_profile,
    set_consensus_profile,
)
from repro.core.theorem import max_agreement


class TestSetConsensusPower:
    def test_validation(self):
        with pytest.raises(ValueError):
            SetConsensusPower(3, 4)
        with pytest.raises(ValueError):
            SetConsensusPower(3, 0)

    def test_ratio(self):
        assert SetConsensusPower(6, 2).ratio == Fraction(1, 3)

    def test_consensus_point(self):
        point = SetConsensusPower.consensus(3)
        assert (point.m, point.j) == (3, 1)

    def test_registers_point_implements_nothing(self):
        registers = SetConsensusPower.registers(4)
        consensus2 = SetConsensusPower.consensus(2)
        assert consensus2.implements(registers)
        assert not registers.implements(consensus2)

    def test_consensus_chain_strictly_increasing(self):
        chain = [SetConsensusPower.consensus(n) for n in range(2, 7)]
        assert chain_is_strictly_increasing(chain)

    def test_family_task_point(self):
        point = SetConsensusPower.of_family_task(2, 1)
        assert (point.m, point.j) == (6, 2)

    def test_equivalent_is_symmetric(self):
        a = SetConsensusPower(4, 2)
        b = SetConsensusPower(4, 2)
        assert a.equivalent(b) and b.equivalent(a)

    def test_antichain_filters_comparables(self):
        points = [
            SetConsensusPower.consensus(2),
            SetConsensusPower.consensus(3),  # comparable: dropped
            SetConsensusPower(7, 3),
        ]
        kept = antichain(points)
        assert SetConsensusPower.consensus(2) in kept
        assert SetConsensusPower.consensus(3) not in kept


class TestProfiles:
    def test_profile_domain_validation(self):
        profile = n_consensus_profile(3)
        with pytest.raises(ValueError):
            profile(0)
        with pytest.raises(ValueError):
            profile(4)

    def test_profile_value_sanity_enforced(self):
        bad = PowerProfile("bad", 3, lambda c: 0)
        with pytest.raises(AssertionError):
            bad(2)

    def test_n_consensus_profile(self):
        profile = n_consensus_profile(3)
        assert [profile(c) for c in (1, 2, 3)] == [1, 1, 1]

    def test_register_profile(self):
        profile = register_profile(5)
        assert [profile(c) for c in (1, 3, 5)] == [1, 3, 5]

    def test_set_consensus_profile(self):
        profile = set_consensus_profile(5, 2)
        assert [profile(c) for c in (1, 2, 3, 5)] == [1, 2, 2, 2]

    def test_family_profile_shape(self):
        # O(2, 1): groups=3, ports=6, threshold n(k+1)=4.
        profile = family_profile(2, 1)
        assert [profile(c) for c in range(1, 7)] == [1, 1, 2, 2, 2, 2]

    def test_family_profile_ring_discount(self):
        # O(2, 2): ports 8, threshold 6; c=7,8 give k+1=3, not 4.
        profile = family_profile(2, 2)
        assert profile(6) == 3
        assert profile(7) == 3
        assert profile(8) == 3
        assert profile(5) == 3
        assert profile(4) == 2


class TestCoverAgreement:
    def test_zero_processes(self):
        assert cover_agreement(0, [n_consensus_profile(2)]) == 0

    def test_requires_profiles(self):
        with pytest.raises(ValueError):
            cover_agreement(3, [])

    def test_registers_trivial_cover(self):
        assert cover_agreement(4, [register_profile(8)]) == 4

    @given(n=st.integers(0, 40), m=st.integers(2, 8), j=st.integers(1, 7))
    @settings(max_examples=150)
    def test_matches_closed_form_for_pure_set_consensus(self, n, m, j):
        """The DP over the (m, j) profile reproduces the theorem's closed
        form — the cover theorem and the implementability theorem agree."""
        if j >= m:
            return
        dp = cover_agreement(n, [set_consensus_profile(m, j)])
        assert dp == max_agreement(n, m, j)

    @given(n=st.integers(0, 40), size=st.integers(1, 6))
    def test_matches_ceil_for_n_consensus(self, n, size):
        dp = cover_agreement(n, [n_consensus_profile(size)])
        assert dp == -(-n // size)  # ceil

    def test_mixing_profiles_never_hurts(self):
        for total in range(1, 30):
            mixed = cover_agreement(
                total, [n_consensus_profile(2), family_profile(2, 1)]
            )
            single = cover_agreement(total, [family_profile(2, 1)])
            assert mixed <= single


class TestFamilyAgreement:
    @given(
        n=st.integers(1, 4),
        k=st.integers(1, 4),
        total=st.integers(0, 60),
    )
    @settings(max_examples=200)
    def test_closed_form_matches_dp(self, n, k, total):
        dp = cover_agreement(total, [family_profile(n, k)])
        assert family_agreement(n, k, total) == dp

    def test_beats_n_consensus_at_full_ring(self):
        for n in (2, 3):
            for k in (1, 2, 3):
                ports = n * (k + 2)
                assert family_agreement(n, k, ports) == k + 1
                assert -(-ports // n) == k + 2  # n-consensus only: one worse

    def test_descending_chain_pointwise(self):
        """K_k(N) <= K_{k+1}(N) for all N — lower k is stronger."""
        for n in (1, 2, 3):
            for k in (1, 2, 3):
                for total in range(0, 50):
                    assert family_agreement(n, k, total) <= family_agreement(
                        n, k + 1, total
                    )

    def test_strict_at_separation_size(self):
        for n in (1, 2, 3):
            for k in (1, 2, 3):
                witness = n * (k + 1) + 1
                assert family_agreement(n, k, witness) == k + 1
                assert family_agreement(n, k + 1, witness) == k + 2

    def test_forward_implementation_of_weaker_task(self):
        """O(n, k) covers O(n, k+1)'s task: K_k(n(k+3)) <= k+2."""
        for n in (1, 2, 3):
            for k in (1, 2, 3):
                assert family_agreement(n, k, n * (k + 3)) <= k + 2

    def test_negative_process_count_rejected(self):
        with pytest.raises(ValueError):
            family_agreement(2, 1, -1)
