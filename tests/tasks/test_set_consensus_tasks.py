"""Unit tests for k-set consensus / election task validators."""

import pytest

from repro.errors import TaskViolationError
from repro.tasks import (
    KSetConsensusTask,
    KSetElectionTask,
    StrongKSetElectionTask,
)


class TestKSetConsensus:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KSetConsensusTask(0)

    def test_within_budget(self):
        task = KSetConsensusTask(2)
        task.validate({0: "a", 1: "b", 2: "c"}, {0: "a", 1: "b", 2: "a"})

    def test_budget_exceeded(self):
        task = KSetConsensusTask(2)
        with pytest.raises(TaskViolationError, match="k-agreement"):
            task.validate({0: "a", 1: "b", 2: "c"}, {0: "a", 1: "b", 2: "c"})

    def test_validity(self):
        with pytest.raises(TaskViolationError, match="proposed"):
            KSetConsensusTask(2).validate({0: "a"}, {0: "q"})

    def test_k1_equals_consensus(self):
        task = KSetConsensusTask(1)
        task.validate({0: "a", 1: "b"}, {0: "b", 1: "b"})
        with pytest.raises(TaskViolationError):
            task.validate({0: "a", 1: "b"}, {0: "a", 1: "b"})

    def test_duplicate_inputs_ok(self):
        KSetConsensusTask(1).validate({0: "a", 1: "a"}, {0: "a", 1: "a"})


class TestKSetElection:
    def test_valid(self):
        KSetElectionTask(2).validate({0: 0, 1: 1, 2: 2}, {0: 0, 1: 0, 2: 2})

    def test_ids_required(self):
        with pytest.raises(TaskViolationError, match="own id"):
            KSetElectionTask(2).validate({0: 9}, {})

    def test_non_participant_rejected(self):
        with pytest.raises(TaskViolationError):
            KSetElectionTask(2).validate({0: 0, 1: 1}, {0: 5})


class TestStrongKSetElection:
    def test_self_election_satisfied(self):
        task = StrongKSetElectionTask(2)
        task.validate({0: 0, 1: 1, 2: 2}, {0: 0, 1: 0, 2: 2})

    def test_self_election_violated(self):
        task = StrongKSetElectionTask(2)
        with pytest.raises(TaskViolationError, match="self-election"):
            task.validate({0: 0, 1: 1, 2: 2}, {0: 1, 1: 0, 2: 0})

    def test_undecided_leader_tolerated(self):
        """Electing a leader that has not yet decided is not (yet) a
        violation."""
        task = StrongKSetElectionTask(2)
        task.validate({0: 0, 1: 1, 2: 2}, {0: 1, 2: 1})

    def test_inherits_k_agreement(self):
        task = StrongKSetElectionTask(1)
        with pytest.raises(TaskViolationError):
            task.validate({0: 0, 1: 1}, {0: 0, 1: 1})
