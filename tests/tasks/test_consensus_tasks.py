"""Unit tests for consensus/election task validators."""

import pytest

from repro.errors import TaskViolationError
from repro.tasks import ConsensusTask, ElectionTask


class TestConsensusTask:
    def test_valid_agreement(self):
        task = ConsensusTask()
        task.validate({0: "a", 1: "b"}, {0: "a", 1: "a"})

    def test_partial_outputs_allowed(self):
        ConsensusTask().validate({0: "a", 1: "b"}, {1: "b"})

    def test_empty_outputs_allowed(self):
        ConsensusTask().validate({0: "a"}, {})

    def test_disagreement_rejected(self):
        with pytest.raises(TaskViolationError, match="agreement"):
            ConsensusTask().validate({0: "a", 1: "b"}, {0: "a", 1: "b"})

    def test_invalid_value_rejected(self):
        with pytest.raises(TaskViolationError, match="no participant proposed"):
            ConsensusTask().validate({0: "a", 1: "b"}, {0: "z"})

    def test_check_boolean_wrapper(self):
        task = ConsensusTask()
        assert task.check({0: "a"}, {0: "a"})
        assert not task.check({0: "a"}, {0: "b"})


class TestElectionTask:
    def test_valid_election(self):
        ElectionTask().validate({0: 0, 1: 1}, {0: 1, 1: 1})

    def test_inputs_must_be_own_ids(self):
        with pytest.raises(TaskViolationError, match="own id"):
            ElectionTask().validate({0: 5, 1: 1}, {})

    def test_elected_must_be_participant(self):
        # Consensus validity already forces the value to be an input,
        # so electing a non-participant fails.
        with pytest.raises(TaskViolationError):
            ElectionTask().validate({0: 0, 1: 1}, {0: 7})

    def test_split_election_rejected(self):
        with pytest.raises(TaskViolationError):
            ElectionTask().validate({0: 0, 1: 1}, {0: 0, 1: 1})
