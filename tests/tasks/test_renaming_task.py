"""Unit tests for the renaming task validator."""

import pytest

from repro.errors import TaskViolationError
from repro.tasks import RenamingTask


class TestRenamingTask:
    def test_valid(self):
        RenamingTask(6).validate({0: 101, 1: 202}, {0: 3, 1: 0})

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RenamingTask(0)

    def test_duplicate_new_names_rejected(self):
        with pytest.raises(TaskViolationError, match="distinct"):
            RenamingTask(6).validate({0: 101, 1: 202}, {0: 3, 1: 3})

    def test_out_of_range_rejected(self):
        with pytest.raises(TaskViolationError, match="outside"):
            RenamingTask(4).validate({0: 101}, {0: 4})

    def test_non_integer_rejected(self):
        with pytest.raises(TaskViolationError):
            RenamingTask(4).validate({0: 101}, {0: "x"})

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(TaskViolationError, match="input names"):
            RenamingTask(4).validate({0: 7, 1: 7}, {})

    def test_partial_outputs_allowed(self):
        RenamingTask(4).validate({0: 101, 1: 202, 2: 303}, {1: 2})
