"""Unit tests for solvability checking machinery."""

import pytest

from repro.algorithms.helpers import build_spec
from repro.errors import TaskViolationError
from repro.objects.register import RegisterSpec
from repro.objects.sticky import StickyRegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RoundRobinScheduler
from repro.tasks import (
    ConsensusTask,
    check_task_all_schedules,
    check_task_random_schedules,
    run_task_protocol,
)


def good_consensus_spec(inputs):
    """Sticky-register consensus: genuinely correct."""

    def program(pid, value):
        decision = yield invoke("s", "propose", value)
        return decision

    return build_spec({"s": StickyRegisterSpec()}, program, inputs)


def bad_consensus_spec(inputs):
    """Everyone decides its own input: violates agreement under any
    schedule (with distinct inputs)."""

    def program(pid, value):
        yield invoke("r", "write", value)
        return value

    return build_spec({"r": RegisterSpec()}, program, inputs)


def nonterminating_spec(inputs):
    def program(pid, value):
        while True:
            yield invoke("r", "read")

    return build_spec({"r": RegisterSpec()}, program, inputs)


INPUTS = ["a", "b"]
INPUT_MAP = {0: "a", 1: "b"}


class TestRunOnce:
    def test_good_protocol_passes(self):
        execution = run_task_protocol(
            good_consensus_spec(INPUTS), ConsensusTask(), INPUT_MAP,
            RoundRobinScheduler(),
        )
        assert execution.all_done()

    def test_bad_protocol_raises(self):
        with pytest.raises(TaskViolationError, match="agreement"):
            run_task_protocol(
                bad_consensus_spec(INPUTS), ConsensusTask(), INPUT_MAP,
                RoundRobinScheduler(),
            )

    def test_nontermination_detected(self):
        with pytest.raises(TaskViolationError, match="wait-free"):
            run_task_protocol(
                nonterminating_spec(INPUTS), ConsensusTask(), INPUT_MAP,
                RoundRobinScheduler(), max_steps=50,
            )

    def test_nontermination_tolerated_when_opted_out(self):
        execution = run_task_protocol(
            nonterminating_spec(INPUTS), ConsensusTask(), INPUT_MAP,
            RoundRobinScheduler(), max_steps=50, require_wait_free=False,
        )
        assert len(execution) == 50


class TestRandomized:
    def test_good_protocol(self):
        report = check_task_random_schedules(
            good_consensus_spec(INPUTS), ConsensusTask(), INPUT_MAP,
            seeds=range(30),
        )
        assert report.ok
        assert report.executions_checked == 30
        assert set(report.distinct_output_counts) == {1}

    def test_bad_protocol_reports_seed(self):
        report = check_task_random_schedules(
            bad_consensus_spec(INPUTS), ConsensusTask(), INPUT_MAP,
            seeds=range(30),
        )
        assert not report.ok
        assert "seed 0" in report.reason
        assert report.counterexample is not None


class TestExhaustive:
    def test_good_protocol(self):
        report = check_task_all_schedules(
            good_consensus_spec(INPUTS), ConsensusTask(), INPUT_MAP,
        )
        assert report.ok
        assert report.executions_checked == 2  # one step each: 2 schedules

    def test_bad_protocol_counterexample_replays(self):
        spec = bad_consensus_spec(INPUTS)
        report = check_task_all_schedules(spec, ConsensusTask(), INPUT_MAP)
        assert not report.ok
        replayed = spec.replay(report.counterexample.decisions).finalize()
        assert replayed.outputs == report.counterexample.outputs

    def test_step_metrics_recorded(self):
        report = check_task_all_schedules(
            good_consensus_spec(INPUTS), ConsensusTask(), INPUT_MAP,
        )
        assert report.max_steps_per_process == 1
