"""Unit tests for the seeded chaos (crash + stall) adversary."""

import pytest

from repro.algorithms.helpers import build_spec
from repro.faults import ChaosScheduler
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.process import ProcessStatus


def busy_spec(n: int = 3, rounds: int = 6):
    """Each process writes its pid ``rounds`` times — enough decision
    points for crash/stall rolls to land."""

    def program(pid, _value):
        for _ in range(rounds):
            yield invoke("r", "write", pid)
        return pid

    return build_spec({"r": RegisterSpec()}, program, list(range(n)))


class TestDeterminism:
    def test_same_seed_same_execution(self):
        runs = []
        for _ in range(2):
            scheduler = ChaosScheduler(seed=42, crash_probability=0.2)
            execution = busy_spec().run(scheduler)
            runs.append((execution.schedule, tuple(execution.crashes)))
        assert runs[0] == runs[1]

    def test_different_seeds_differ_somewhere(self):
        schedules = {
            tuple(busy_spec().run(ChaosScheduler(seed=seed)).schedule)
            for seed in range(10)
        }
        assert len(schedules) > 1


class TestCrashBehaviour:
    def test_max_crashes_respected(self):
        for seed in range(30):
            scheduler = ChaosScheduler(seed=seed, crash_probability=0.9, max_crashes=1)
            execution = busy_spec().run(scheduler)
            assert len(execution.crashed_pids()) <= 1

    def test_crashable_pids_restricts_victims(self):
        for seed in range(30):
            scheduler = ChaosScheduler(
                seed=seed, crash_probability=0.9, max_crashes=3, crashable_pids={0}
            )
            execution = busy_spec().run(scheduler)
            assert set(execution.crashed_pids()) <= {0}

    def test_crash_count_derived_from_system_not_scheduler(self):
        """One instance driving two fresh systems may crash in both —
        the bound is per-system, not accumulated in the scheduler."""
        scheduler = ChaosScheduler(seed=3, crash_probability=1.0, max_crashes=1)
        first = busy_spec().run(scheduler)
        second = busy_spec().run(scheduler)
        assert len(first.crashed_pids()) == 1
        assert len(second.crashed_pids()) == 1

    def test_survivors_terminate(self):
        for seed in range(20):
            execution = busy_spec().run(
                ChaosScheduler(seed=seed, crash_probability=0.3, max_crashes=2)
            )
            for pid, status in execution.statuses.items():
                assert status in (ProcessStatus.DONE, ProcessStatus.CRASHED)


class TestRecoveries:
    def test_recoveries_happen_under_high_probabilities(self):
        revived = False
        for seed in range(40):
            execution = busy_spec().run(
                ChaosScheduler(
                    seed=seed,
                    crash_probability=0.5,
                    recover_probability=0.8,
                    max_crashes=2,
                    max_recoveries=2,
                )
            )
            if execution.recoveries:
                revived = True
                assert set(execution.recovered_pids()) <= set(
                    execution.crashed_pids()
                )
        assert revived

    def test_max_recoveries_respected(self):
        for seed in range(30):
            execution = busy_spec().run(
                ChaosScheduler(
                    seed=seed,
                    crash_probability=0.9,
                    recover_probability=1.0,
                    max_crashes=3,
                    max_recoveries=1,
                )
            )
            assert len(execution.recoveries) <= 1

    def test_same_seed_reproduces_recovery_timing(self):
        runs = []
        for _ in range(2):
            scheduler = ChaosScheduler(
                seed=11,
                crash_probability=0.4,
                recover_probability=0.7,
                max_recoveries=2,
            )
            execution = busy_spec().run(scheduler)
            runs.append(
                (
                    execution.schedule,
                    tuple(execution.crashes),
                    tuple(execution.recoveries),
                )
            )
        assert runs[0] == runs[1]

    def test_default_recover_probability_consumes_no_rng(self):
        """With recover_probability left at 0.0 the recovery roll is
        skipped entirely, so pre-recovery seeded runs reproduce
        bit-for-bit (explicit 0.0 and the default agree)."""
        default = busy_spec().run(ChaosScheduler(seed=6, crash_probability=0.3))
        explicit = busy_spec().run(
            ChaosScheduler(seed=6, crash_probability=0.3, recover_probability=0.0)
        )
        assert default.schedule == explicit.schedule
        assert default.crashes == explicit.crashes

    def test_recovered_process_can_finish(self):
        done_after_rebirth = False
        for seed in range(60):
            execution = busy_spec().run(
                ChaosScheduler(
                    seed=seed,
                    crash_probability=0.4,
                    recover_probability=0.9,
                    max_recoveries=1,
                )
            )
            for pid in execution.recovered_pids():
                if execution.statuses[pid] is ProcessStatus.DONE:
                    done_after_rebirth = True
        assert done_after_rebirth


class TestStalls:
    def test_stalls_never_deadlock(self):
        # Very aggressive stalling must still complete the run.
        execution = busy_spec().run(
            ChaosScheduler(seed=1, crash_probability=0.0, stall_probability=0.9)
        )
        assert all(
            status is ProcessStatus.DONE
            for status in execution.statuses.values()
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_probability": -0.1},
            {"crash_probability": 1.5},
            {"stall_probability": 2.0},
            {"max_stall": 0},
            {"recover_probability": -0.5},
            {"recover_probability": 1.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChaosScheduler(**kwargs)


class TestDescribe:
    def test_full_provenance(self):
        scheduler = ChaosScheduler(
            seed=9,
            crash_probability=0.25,
            stall_probability=0.1,
            max_crashes=2,
            max_stall=4,
            crashable_pids={1, 0},
        )
        assert scheduler.describe() == (
            "ChaosScheduler(seed=9, crash_p=0.25, stall_p=0.1, "
            "max_crashes=2, max_stall=4, crashable=[0, 1])"
        )

    def test_describe_without_crashable_restriction(self):
        assert "crashable" not in ChaosScheduler(seed=0).describe()

    def test_describe_omits_recovery_params_when_disabled(self):
        """Pure crash-stop instances keep their historical provenance
        string — archived traces replay against an unchanged describe."""
        assert "recover" not in ChaosScheduler(seed=0).describe()

    def test_describe_includes_recovery_params_when_enabled(self):
        scheduler = ChaosScheduler(
            seed=2, recover_probability=0.25, max_recoveries=3
        )
        assert scheduler.describe().endswith(
            "recover_p=0.25, max_recoveries=3)"
        )
