"""Unit tests for exploration budgets (deadlines and step ceilings)."""

import pytest

from repro.faults.budget import (
    Budget,
    active_budget,
    get_active_budget,
    set_active_budget,
)
from repro.obs.events import RingBufferSink, use_sink


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_not_exhausted_before_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock).start()
        clock.advance(9.9)
        assert budget.exhausted_reason() is None
        assert not budget.exhausted

    def test_exhausted_at_deadline(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock).start()
        clock.advance(10.0)
        reason = budget.exhausted_reason()
        assert reason is not None and "deadline" in reason

    def test_clock_starts_on_first_consult(self):
        clock = FakeClock(now=100.0)
        budget = Budget(deadline=5.0, clock=clock)
        # Time passing before anyone consults the budget does not count.
        assert budget.exhausted_reason() is None
        clock.advance(4.0)
        assert budget.exhausted_reason() is None
        clock.advance(2.0)
        assert budget.exhausted_reason() is not None

    def test_sticky_after_trip(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock).start()
        clock.advance(2.0)
        first = budget.exhausted_reason()
        clock.advance(100.0)
        assert budget.exhausted_reason() == first


class TestSteps:
    def test_step_ceiling(self):
        budget = Budget(max_steps=100)
        budget.charge_steps(99)
        assert budget.exhausted_reason() is None
        budget.charge_steps(1)
        reason = budget.exhausted_reason()
        assert reason is not None and "step budget" in reason

    def test_cumulative_across_consumers(self):
        budget = Budget(max_steps=100)
        for _ in range(4):
            budget.charge_steps(30)
        assert budget.exhausted

    def test_unlimited_budget_never_exhausts(self):
        budget = Budget()
        budget.charge_steps(10**9)
        assert budget.exhausted_reason() is None


class TestEvents:
    def test_budget_exhausted_emitted_once(self):
        sink = RingBufferSink()
        with use_sink(sink):
            budget = Budget(max_steps=1)
            budget.charge_steps(5)
            budget.exhausted_reason()
            budget.exhausted_reason()  # sticky: no second event
        events = [e for e in sink.events if e[0] == "budget_exhausted"]
        assert len(events) == 1
        _name, fields = events[0]
        assert fields["kind"] == "steps"
        assert fields["steps"] == 5

    def test_deadline_event_kind(self):
        clock = FakeClock()
        sink = RingBufferSink()
        with use_sink(sink):
            budget = Budget(deadline=1.0, clock=clock).start()
            clock.advance(2.0)
            budget.exhausted_reason()
        events = [e for e in sink.events if e[0] == "budget_exhausted"]
        assert len(events) == 1
        assert events[0][1]["kind"] == "deadline"


class TestActiveBudget:
    def test_default_is_none(self):
        assert get_active_budget() is None

    def test_context_manager_installs_and_restores(self):
        budget = Budget(max_steps=10)
        with active_budget(budget) as installed:
            assert installed is budget
            assert get_active_budget() is budget
        assert get_active_budget() is None

    def test_nested_budgets_restore_outer(self):
        outer, inner = Budget(), Budget()
        with active_budget(outer):
            with active_budget(inner):
                assert get_active_budget() is inner
            assert get_active_budget() is outer

    def test_set_returns_previous(self):
        budget = Budget()
        assert set_active_budget(budget) is None
        try:
            assert set_active_budget(None) is budget
        finally:
            set_active_budget(None)


class TestDescribe:
    @pytest.mark.parametrize(
        "kwargs, expected",
        [
            ({"deadline": 2.5}, "Budget(deadline=2.5s)"),
            ({"max_steps": 1000}, "Budget(max_steps=1000)"),
            (
                {"deadline": 1.0, "max_steps": 5},
                "Budget(deadline=1s, max_steps=5)",
            ),
            ({}, "Budget(unlimited)"),
        ],
    )
    def test_describe(self, kwargs, expected):
        assert Budget(**kwargs).describe() == expected
