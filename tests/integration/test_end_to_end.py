"""End-to-end scenarios crossing every layer of the library."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import (
    FamilyMember,
    KSetConsensusTask,
    RandomScheduler,
    check_task_all_schedules,
    consensus_number_of,
    is_implementable,
)
from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import set_consensus_spec

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestPublicApi:
    def test_package_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_headline_story_via_public_api(self):
        """The README quickstart, as a test."""
        member = FamilyMember(n=2, k=1)
        assert consensus_number_of(member.spec()) == 2
        inputs = ["a", "b", "c", "d", "e", "f"]
        spec = set_consensus_spec(2, 1, inputs)
        report = check_task_all_schedules(
            spec, KSetConsensusTask(2), inputs_dict(inputs)
        )
        assert report.ok
        assert max(report.distinct_output_counts) == 2
        # 2-consensus can only reach 3 at N = 6 — the theorem says so.
        assert not is_implementable(6, 2, 2, 1)

    def test_replayability_across_layers(self):
        inputs = ["a", "b", "c", "d", "e", "f"]
        spec = set_consensus_spec(2, 1, inputs)
        execution = spec.run(RandomScheduler(99))
        replayed = spec.replay(execution.decisions).finalize()
        assert replayed.outputs == execution.outputs


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in (REPO_ROOT / "examples").glob("*.py")),
)
def test_examples_run_clean(script):
    """Every example is a runnable, assertion-bearing document."""
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
