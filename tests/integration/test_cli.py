"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestDescribe:
    def test_describe_prints_data_sheet(self, capsys):
        assert main(["describe", "2", "1"]) == 0
        out = capsys.readouterr().out
        assert "O(2, 1)" in out
        assert "agreement profile" in out
        assert "paper's ascending-chain" in out

    def test_describe_rejects_bad_level(self):
        with pytest.raises(ValueError):
            main(["describe", "2", "0"])


class TestCurves:
    def test_curves_output_shape(self, capsys):
        assert main(["curves", "2", "--kmax", "2", "--nmax", "10"]) == 0
        out = capsys.readouterr().out
        assert "2-consensus" in out
        assert "O(2,1)" in out
        assert "O(2,2)" in out

    def test_curves_values(self, capsys):
        main(["curves", "3", "--kmax", "1", "--nmax", "6"])
        out = capsys.readouterr().out
        assert "3-consensus" in out


class TestCheck:
    def test_check_small_member_exhaustive(self, capsys):
        assert main(["check", "1", "1"]) == 0
        out = capsys.readouterr().out
        assert "all" in out and "OK" in out

    def test_check_medium_member_sampled(self, capsys):
        assert main(["check", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "300 random schedules" in out


class TestCommon2:
    def test_certificates_printed(self, capsys):
        assert main(["common2", "--levels", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("Common2") == 2

    def test_default_levels(self, capsys):
        assert main(["common2"]) == 0
        assert capsys.readouterr().out.count("Common2") == 3


class TestObservability:
    def test_trace_out_then_stats(self, tmp_path, capsys):
        """The acceptance loop: check --trace-out produces a file that the
        stats command summarizes without error."""
        trace = tmp_path / "run.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines, "trace file must not be empty"
        names = {record["event"] for record in lines}
        assert "step" in names
        assert "schedule_explored" in names
        assert "span_end" in names
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "steps_total" in out
        assert "by process" in out
        assert "by object" in out
        assert "schedules_explored" in out
        assert "phase timings" in out

    def test_trace_out_bus_restored_after_run(self, tmp_path):
        from repro.obs import events

        assert main(["check", "1", "1", "--trace-out", str(tmp_path / "t.jsonl")]) == 0
        assert not events.is_enabled()

    def test_progress_flag_writes_to_stderr(self, capsys):
        assert main(["check", "1", "1", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "progress:" in err
        assert "steps" in err

    def test_stats_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_stats_empty_file_fails_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 1
        assert "no events" in capsys.readouterr().err

    def test_stats_skips_corrupt_lines_and_reports_count(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        with open(trace, "a", encoding="utf-8") as handle:
            handle.write('{"event": "step", "pid": 0, "obj\n')  # truncated
            handle.write("not json at all\n")
            handle.write('["a", "list", "record"]\n')
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "3 corrupt lines skipped" in out
        assert "steps_total" in out

    def test_stats_aggregates_multiple_traces(self, tmp_path, capsys):
        first = tmp_path / "one.jsonl"
        second = tmp_path / "two.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(first)]) == 0
        assert main(["check", "1", "1", "--trace-out", str(second)]) == 0
        capsys.readouterr()

        def steps_total(stdout):
            for line in stdout.splitlines():
                if line.strip().startswith("steps_total:"):
                    return int(line.split(":")[1].strip().split()[0])
            raise AssertionError("no steps_total line in digest")

        assert main(["stats", str(first)]) == 0
        single = steps_total(capsys.readouterr().out)
        assert main(["stats", str(first), str(second)]) == 0
        out = capsys.readouterr().out
        assert steps_total(out) == 2 * single
        assert "one.jsonl" in out and "two.jsonl" in out

    def test_stats_export_flags_write_valid_files(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        folded = tmp_path / "out.folded"
        html = tmp_path / "report.html"
        prom = tmp_path / "metrics.prom"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        assert (
            main(
                ["stats", str(trace), "--flame", str(folded),
                 "--html", str(html), "--metrics-out", str(prom)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "span profile:" in out
        for stack in folded.read_text().splitlines():
            frames, count = stack.rsplit(" ", 1)
            assert frames and int(count) > 0
        report = html.read_text()
        assert report.startswith("<!DOCTYPE html>")
        assert "Span waterfall" in report
        prom_text = prom.read_text()
        assert "# TYPE steps_total counter" in prom_text
        assert 'schedule_depth_bucket{le="+Inf"}' in prom_text

    def test_live_metrics_equal_replayed_metrics(self, tmp_path, capsys):
        """--metrics-out on a run command and stats --metrics-out on its
        trace must render byte-identical Prometheus files: the trace is a
        complete account of the run."""
        trace = tmp_path / "run.jsonl"
        live = tmp_path / "live.prom"
        replayed = tmp_path / "replayed.prom"
        assert (
            main(["check", "1", "1", "--trace-out", str(trace),
                  "--metrics-out", str(live)])
            == 0
        )
        assert main(["stats", str(trace), "--metrics-out", str(replayed)]) == 0
        capsys.readouterr()
        assert live.read_text() == replayed.read_text() != ""

    def test_stats_write_failure_exits_two(self, tmp_path, capsys):
        # Missing parent directories are created, so the unwritable path
        # here has a *file* where a directory would have to be.
        trace = tmp_path / "run.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        (tmp_path / "not-a-dir").write_text("")
        bad = tmp_path / "not-a-dir" / "out.folded"
        assert main(["stats", str(trace), "--flame", str(bad)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestBenchCompare:
    @staticmethod
    def bench_file(path, seconds):
        payload = {
            "schema": "repro-bench/1",
            "benches": {"bench_walk": {"seconds": seconds}},
        }
        path.write_text(json.dumps(payload))
        return str(path)

    def test_no_regression_exits_zero(self, tmp_path, capsys):
        path = self.bench_file(tmp_path / "b.json", 1.0)
        assert main(["bench-compare", path, path]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        old = self.bench_file(tmp_path / "old.json", 1.0)
        new = self.bench_file(tmp_path / "new.json", 1.5)
        assert main(["bench-compare", old, new]) == 1
        assert "wall time" in capsys.readouterr().err

    def test_threshold_flag(self, tmp_path):
        old = self.bench_file(tmp_path / "old.json", 1.0)
        new = self.bench_file(tmp_path / "new.json", 1.5)
        assert main(["bench-compare", old, new, "--threshold", "0.6"]) == 0


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
