"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestDescribe:
    def test_describe_prints_data_sheet(self, capsys):
        assert main(["describe", "2", "1"]) == 0
        out = capsys.readouterr().out
        assert "O(2, 1)" in out
        assert "agreement profile" in out
        assert "paper's ascending-chain" in out

    def test_describe_rejects_bad_level(self):
        with pytest.raises(ValueError):
            main(["describe", "2", "0"])


class TestCurves:
    def test_curves_output_shape(self, capsys):
        assert main(["curves", "2", "--kmax", "2", "--nmax", "10"]) == 0
        out = capsys.readouterr().out
        assert "2-consensus" in out
        assert "O(2,1)" in out
        assert "O(2,2)" in out

    def test_curves_values(self, capsys):
        main(["curves", "3", "--kmax", "1", "--nmax", "6"])
        out = capsys.readouterr().out
        assert "3-consensus" in out


class TestCheck:
    def test_check_small_member_exhaustive(self, capsys):
        assert main(["check", "1", "1"]) == 0
        out = capsys.readouterr().out
        assert "all" in out and "OK" in out

    def test_check_medium_member_sampled(self, capsys):
        assert main(["check", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "300 random schedules" in out


class TestCommon2:
    def test_certificates_printed(self, capsys):
        assert main(["common2", "--levels", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("Common2") == 2

    def test_default_levels(self, capsys):
        assert main(["common2"]) == 0
        assert capsys.readouterr().out.count("Common2") == 3


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
