"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestDescribe:
    def test_describe_prints_data_sheet(self, capsys):
        assert main(["describe", "2", "1"]) == 0
        out = capsys.readouterr().out
        assert "O(2, 1)" in out
        assert "agreement profile" in out
        assert "paper's ascending-chain" in out

    def test_describe_rejects_bad_level(self):
        with pytest.raises(ValueError):
            main(["describe", "2", "0"])


class TestCurves:
    def test_curves_output_shape(self, capsys):
        assert main(["curves", "2", "--kmax", "2", "--nmax", "10"]) == 0
        out = capsys.readouterr().out
        assert "2-consensus" in out
        assert "O(2,1)" in out
        assert "O(2,2)" in out

    def test_curves_values(self, capsys):
        main(["curves", "3", "--kmax", "1", "--nmax", "6"])
        out = capsys.readouterr().out
        assert "3-consensus" in out


class TestCheck:
    def test_check_small_member_exhaustive(self, capsys):
        assert main(["check", "1", "1"]) == 0
        out = capsys.readouterr().out
        assert "all" in out and "OK" in out

    def test_check_medium_member_sampled(self, capsys):
        assert main(["check", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "300 random schedules" in out


class TestCommon2:
    def test_certificates_printed(self, capsys):
        assert main(["common2", "--levels", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("Common2") == 2

    def test_default_levels(self, capsys):
        assert main(["common2"]) == 0
        assert capsys.readouterr().out.count("Common2") == 3


class TestObservability:
    def test_trace_out_then_stats(self, tmp_path, capsys):
        """The acceptance loop: check --trace-out produces a file that the
        stats command summarizes without error."""
        trace = tmp_path / "run.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines, "trace file must not be empty"
        names = {record["event"] for record in lines}
        assert "step" in names
        assert "schedule_explored" in names
        assert "span_end" in names
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "steps_total" in out
        assert "by process" in out
        assert "by object" in out
        assert "schedules_explored" in out
        assert "phase timings" in out

    def test_trace_out_bus_restored_after_run(self, tmp_path):
        from repro.obs import events

        assert main(["check", "1", "1", "--trace-out", str(tmp_path / "t.jsonl")]) == 0
        assert not events.is_enabled()

    def test_progress_flag_writes_to_stderr(self, capsys):
        assert main(["check", "1", "1", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "progress:" in err
        assert "steps" in err

    def test_stats_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_stats_empty_file_fails_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 1
        assert "no events" in capsys.readouterr().err

    def test_stats_skips_corrupt_lines_and_reports_count(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        with open(trace, "a", encoding="utf-8") as handle:
            handle.write('{"event": "step", "pid": 0, "obj\n')  # truncated
            handle.write("not json at all\n")
            handle.write('["a", "list", "record"]\n')
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "3 corrupt lines skipped" in out
        assert "steps_total" in out

    def test_stats_aggregates_multiple_traces(self, tmp_path, capsys):
        first = tmp_path / "one.jsonl"
        second = tmp_path / "two.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(first)]) == 0
        assert main(["check", "1", "1", "--trace-out", str(second)]) == 0
        capsys.readouterr()

        def steps_total(stdout):
            for line in stdout.splitlines():
                if line.strip().startswith("steps_total:"):
                    return int(line.split(":")[1].strip().split()[0])
            raise AssertionError("no steps_total line in digest")

        assert main(["stats", str(first)]) == 0
        single = steps_total(capsys.readouterr().out)
        assert main(["stats", str(first), str(second)]) == 0
        out = capsys.readouterr().out
        assert steps_total(out) == 2 * single
        assert "one.jsonl" in out and "two.jsonl" in out

    def test_stats_export_flags_write_valid_files(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        folded = tmp_path / "out.folded"
        html = tmp_path / "report.html"
        prom = tmp_path / "metrics.prom"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        assert (
            main(
                ["stats", str(trace), "--flame", str(folded),
                 "--html", str(html), "--metrics-out", str(prom)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "span profile:" in out
        for stack in folded.read_text().splitlines():
            frames, count = stack.rsplit(" ", 1)
            assert frames and int(count) > 0
        report = html.read_text()
        assert report.startswith("<!DOCTYPE html>")
        assert "Span waterfall" in report
        prom_text = prom.read_text()
        assert "# TYPE steps_total counter" in prom_text
        assert 'schedule_depth_bucket{le="+Inf"}' in prom_text

    def test_live_metrics_equal_replayed_metrics(self, tmp_path, capsys):
        """--metrics-out on a run command and stats --metrics-out on its
        trace must render byte-identical Prometheus files: the trace is a
        complete account of the run."""
        trace = tmp_path / "run.jsonl"
        live = tmp_path / "live.prom"
        replayed = tmp_path / "replayed.prom"
        assert (
            main(["check", "1", "1", "--trace-out", str(trace),
                  "--metrics-out", str(live)])
            == 0
        )
        assert main(["stats", str(trace), "--metrics-out", str(replayed)]) == 0
        capsys.readouterr()
        assert live.read_text() == replayed.read_text() != ""

    def test_stats_write_failure_exits_two(self, tmp_path, capsys):
        # Missing parent directories are created, so the unwritable path
        # here has a *file* where a directory would have to be.
        trace = tmp_path / "run.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        (tmp_path / "not-a-dir").write_text("")
        bad = tmp_path / "not-a-dir" / "out.folded"
        assert main(["stats", str(trace), "--flame", str(bad)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestBenchCompare:
    @staticmethod
    def bench_file(path, seconds):
        payload = {
            "schema": "repro-bench/1",
            "benches": {"bench_walk": {"seconds": seconds}},
        }
        path.write_text(json.dumps(payload))
        return str(path)

    def test_no_regression_exits_zero(self, tmp_path, capsys):
        path = self.bench_file(tmp_path / "b.json", 1.0)
        assert main(["bench-compare", path, path]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        old = self.bench_file(tmp_path / "old.json", 1.0)
        new = self.bench_file(tmp_path / "new.json", 1.5)
        assert main(["bench-compare", old, new]) == 1
        assert "wall time" in capsys.readouterr().err

    def test_threshold_flag(self, tmp_path):
        old = self.bench_file(tmp_path / "old.json", 1.0)
        new = self.bench_file(tmp_path / "new.json", 1.5)
        assert main(["bench-compare", old, new, "--threshold", "0.6"]) == 0


class TestWitnessAndExplain:
    @staticmethod
    def archive_bundle(directory):
        """A real Common2-point witness bundle for the CLI to chew on."""
        from repro.algorithms.consensus_from_n_consensus import (
            partition_set_consensus_spec,
        )
        from repro.obs.witness import capture_witnesses, witness_context
        from repro.runtime.explorer import find_execution

        inputs = ["a", "b", "c", "d", "e", "f"]
        with capture_witnesses(str(directory)) as store:
            with witness_context(
                spec={"builder": "n-consensus-partition", "n": 2,
                      "inputs": inputs},
                predicate={"name": "distinct-outputs-at-least", "count": 3},
                label="cli test witness",
            ):
                find_execution(
                    partition_set_consensus_spec(2, inputs),
                    lambda e: len(e.distinct_outputs()) >= 3,
                    max_depth=10,
                )
        return store.captured[0]

    def test_witness_dir_flag_activates_and_deactivates(self, tmp_path, capsys):
        from repro.obs.witness import get_active_store

        assert main(["check", "1", "1", "--witness-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert get_active_store() is None  # torn down in the finally

    def test_explain_bundle_end_to_end(self, tmp_path, capsys):
        bundle = self.archive_bundle(tmp_path)
        assert main(["explain", bundle]) == 0
        out = capsys.readouterr().out
        assert "fingerprint verified" in out
        assert "1-minimal" in out
        assert "Decision set:" in out

    def test_explain_output_byte_stable(self, tmp_path, capsys):
        bundle = self.archive_bundle(tmp_path)
        assert main(["explain", bundle]) == 0
        first = capsys.readouterr().out
        assert main(["explain", bundle]) == 0
        assert capsys.readouterr().out == first

    def test_explain_html_flag(self, tmp_path, capsys):
        bundle = self.archive_bundle(tmp_path)
        html = tmp_path / "lanes.html"
        assert main(["explain", bundle, "--html", str(html)]) == 0
        capsys.readouterr()
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_explain_no_shrink(self, tmp_path, capsys):
        bundle = self.archive_bundle(tmp_path)
        assert main(["explain", bundle, "--no-shrink"]) == 0
        assert "shrunk:" not in capsys.readouterr().out

    def test_explain_resolves_run_id_from_ledger(self, tmp_path, capsys):
        from repro.obs import ledger as run_ledger

        bundle = self.archive_bundle(tmp_path / "wit")
        ledger = str(tmp_path / "runs.jsonl")
        recorder = run_ledger.begin_run(path=ledger, command="test")
        run_ledger.annotate(witnesses=[bundle])
        run_ledger.finish_run(0)
        assert main(
            ["explain", recorder.run_id, "--ledger", ledger]
        ) == 0
        out = capsys.readouterr().out
        assert f"bundle: {bundle}" in out

    def test_explain_unknown_target_exits_two(self, tmp_path, capsys):
        assert main(
            ["explain", "nope", "--ledger", str(tmp_path / "absent.jsonl")]
        ) == 2
        assert "explain:" in capsys.readouterr().out

    def test_witness_path_lands_in_ledger_and_runs_show(self, tmp_path, capsys):
        """A run that captures a witness records its path; runs show
        surfaces it (the acceptance-criteria loop, minus the slow suite)."""
        from repro.algorithms.consensus_from_n_consensus import (
            partition_set_consensus_spec,
        )
        from repro.obs import ledger as run_ledger
        from repro.obs.witness import capture_witnesses
        from repro.runtime.explorer import find_execution

        inputs = ["a", "b", "c", "d", "e", "f"]
        ledger = str(tmp_path / "runs.jsonl")
        recorder = run_ledger.begin_run(path=ledger, command="hunt")
        with capture_witnesses(str(tmp_path / "wit")) as store:
            find_execution(
                partition_set_consensus_spec(2, inputs),
                lambda e: len(e.distinct_outputs()) >= 3,
                max_depth=10,
            )
        run_ledger.finish_run(0)
        assert main(["runs", "show", recorder.run_id, "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert store.captured[0] in out
        assert main(["runs", "list", "--ledger", ledger]) == 0
        assert "1 witness" in capsys.readouterr().out

    def test_stats_html_report_embeds_witness_lanes(self, tmp_path, capsys):
        """witness_captured events in a trace surface in the HTML report,
        with the lane table embedded from the bundle on disk."""
        import json as _json

        bundle = self.archive_bundle(tmp_path)
        trace = tmp_path / "run.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        with open(trace, "a", encoding="utf-8") as handle:
            handle.write(_json.dumps({
                "event": "witness_captured", "path": bundle,
                "kind": "existence", "source": "explorer.find", "steps": 6,
            }) + "\n")
        html = tmp_path / "report.html"
        assert main(["stats", str(trace), "--html", str(html)]) == 0
        capsys.readouterr()
        report = html.read_text()
        assert "<h2>Witnesses</h2>" in report
        assert 'class="lanes"' in report
        assert "table.lanes" in report  # LANES_CSS included


class TestExecsetAndDiff:
    """The ``explore`` digest stream and the ``repro diff`` gate."""

    def explore(self, tmp_path, out, *extra):
        return main(
            ["explore", "--task", "consensus", "--n", "2", "--k", "1",
             "--execset-out", str(out), "--no-ledger", *extra]
        )

    def test_explore_writes_digest_stream_by_default(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_EXECSET_DIR", str(tmp_path / "sets"))
        assert main(
            ["explore", "--task", "consensus", "--n", "2", "--k", "1",
             "--no-ledger"]
        ) == 0
        out = capsys.readouterr().out
        assert "execution-set digest" in out
        files = list((tmp_path / "sets").glob("*.jsonl"))
        assert len(files) == 1

    def test_no_execset_disables(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXECSET_DIR", str(tmp_path / "sets"))
        assert main(
            ["explore", "--task", "consensus", "--n", "2", "--k", "1",
             "--no-ledger", "--no-execset"]
        ) == 0
        assert "execution-set digest" not in capsys.readouterr().out
        assert not (tmp_path / "sets").exists()

    def test_diff_identical_runs_exit_0_byte_stable(self, tmp_path, capsys):
        assert self.explore(tmp_path, tmp_path / "a.jsonl") == 0
        assert self.explore(tmp_path, tmp_path / "b.jsonl") == 0
        assert (tmp_path / "a.jsonl").read_bytes() == \
            (tmp_path / "b.jsonl").read_bytes()
        capsys.readouterr()
        assert main(
            ["diff", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]
        ) == 0
        first = capsys.readouterr().out
        assert "SAME SET" in first
        assert main(
            ["diff", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]
        ) == 0
        assert capsys.readouterr().out == first

    def test_diff_truncated_run_exit_1_with_explanation(
        self, tmp_path, capsys
    ):
        assert self.explore(tmp_path, tmp_path / "full.jsonl") == 0
        assert self.explore(
            tmp_path, tmp_path / "short.jsonl", "--max-depth", "1"
        ) == 0
        capsys.readouterr()
        code = main(
            ["diff", str(tmp_path / "full.jsonl"),
             str(tmp_path / "short.jsonl")]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "only in A" in out
        assert "first divergence" in out

    def test_diff_json_and_html(self, tmp_path, capsys):
        assert self.explore(tmp_path, tmp_path / "a.jsonl") == 0
        assert self.explore(tmp_path, tmp_path / "b.jsonl") == 0
        capsys.readouterr()
        html_path = tmp_path / "diff.html"
        assert main(
            ["diff", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"),
             "--json", "--html", str(html_path)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["exit_code"] == 0
        assert report["digest"]["equal"] is True
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_diff_unknown_target_exits_3(self, tmp_path, capsys):
        assert main(
            ["diff", "no-such-thing", "also-missing",
             "--ledger", str(tmp_path / "absent.jsonl")]
        ) == 3
        assert "diff:" in capsys.readouterr().err

    def test_selfcheck_set_equal_exit_0(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXECSET_DIR", str(tmp_path / "sets"))
        assert main(
            ["explore", "--task", "consensus", "--n", "2", "--k", "1",
             "--no-ledger", "--selfcheck"]
        ) == 0
        assert "selfcheck: SET-EQUAL" in capsys.readouterr().out

    def test_selfcheck_rejects_resume(self, tmp_path, capsys):
        assert main(
            ["explore", "--selfcheck", "--resume",
             str(tmp_path / "ck.jsonl"), "--no-ledger"]
        ) == 2
        assert "--selfcheck" in capsys.readouterr().err

    def test_resumed_run_merges_digest(self, tmp_path, capsys):
        """Interrupt, resume, and the merged digest equals the digest
        of one uninterrupted run — set equality across sessions."""
        ledger_path = tmp_path / "runs.jsonl"
        checkpoint = tmp_path / "ck.jsonl"
        common = ["explore", "--task", "set-consensus", "--n", "1",
                  "--k", "1", "--ledger", str(ledger_path)]
        assert main(
            common + ["--execset-out", str(tmp_path / "full.jsonl")]
        ) == 0
        assert main(
            common + ["--execset-out", str(tmp_path / "part1.jsonl"),
                      "--checkpoint", str(checkpoint),
                      "--checkpoint-every", "1", "--max-steps", "2"]
        ) == 3
        assert main(
            common + ["--execset-out", str(tmp_path / "part2.jsonl"),
                      "--resume", str(checkpoint)]
        ) == 0
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in ledger_path.read_text().splitlines()
        ]
        full, _, resumed = records
        assert resumed["execset"]["digest"] == full["execset"]["digest"]
        # And the ledger-resolved chain diffs clean against the file.
        assert main(
            ["diff", resumed["run_id"], str(tmp_path / "full.jsonl"),
             "--ledger", str(ledger_path)]
        ) == 0
        assert "SAME SET" in capsys.readouterr().out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
