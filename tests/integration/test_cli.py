"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestDescribe:
    def test_describe_prints_data_sheet(self, capsys):
        assert main(["describe", "2", "1"]) == 0
        out = capsys.readouterr().out
        assert "O(2, 1)" in out
        assert "agreement profile" in out
        assert "paper's ascending-chain" in out

    def test_describe_rejects_bad_level(self):
        with pytest.raises(ValueError):
            main(["describe", "2", "0"])


class TestCurves:
    def test_curves_output_shape(self, capsys):
        assert main(["curves", "2", "--kmax", "2", "--nmax", "10"]) == 0
        out = capsys.readouterr().out
        assert "2-consensus" in out
        assert "O(2,1)" in out
        assert "O(2,2)" in out

    def test_curves_values(self, capsys):
        main(["curves", "3", "--kmax", "1", "--nmax", "6"])
        out = capsys.readouterr().out
        assert "3-consensus" in out


class TestCheck:
    def test_check_small_member_exhaustive(self, capsys):
        assert main(["check", "1", "1"]) == 0
        out = capsys.readouterr().out
        assert "all" in out and "OK" in out

    def test_check_medium_member_sampled(self, capsys):
        assert main(["check", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "300 random schedules" in out


class TestCommon2:
    def test_certificates_printed(self, capsys):
        assert main(["common2", "--levels", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("Common2") == 2

    def test_default_levels(self, capsys):
        assert main(["common2"]) == 0
        assert capsys.readouterr().out.count("Common2") == 3


class TestObservability:
    def test_trace_out_then_stats(self, tmp_path, capsys):
        """The acceptance loop: check --trace-out produces a file that the
        stats command summarizes without error."""
        trace = tmp_path / "run.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines, "trace file must not be empty"
        names = {record["event"] for record in lines}
        assert "step" in names
        assert "schedule_explored" in names
        assert "span_end" in names
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "steps_total" in out
        assert "by process" in out
        assert "by object" in out
        assert "schedules_explored" in out
        assert "phase timings" in out

    def test_trace_out_bus_restored_after_run(self, tmp_path):
        from repro.obs import events

        assert main(["check", "1", "1", "--trace-out", str(tmp_path / "t.jsonl")]) == 0
        assert not events.is_enabled()

    def test_progress_flag_writes_to_stderr(self, capsys):
        assert main(["check", "1", "1", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "progress:" in err
        assert "steps" in err

    def test_stats_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_stats_empty_file_fails_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["stats", str(empty)]) == 1
        assert "no events" in capsys.readouterr().err


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
