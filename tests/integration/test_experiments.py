"""Integration: the full experiment suite of EXPERIMENTS.md must pass.

One test per experiment id, so a regression points at the broken claim
directly; plus report-rendering smoke tests.
"""

import pytest

from repro.experiments import (
    run_e1_consensus,
    run_e2_set_consensus,
    run_e3_impossibility,
    run_e4_transfer,
    run_e5_hierarchy,
    run_e6_common2,
    run_e7_bg,
    run_e8_subdivision,
    run_e9_substrate,
    run_e10_runtime,
    run_e11_recovery,
)
from repro.experiments.rows import ExperimentRow, render_table


def assert_all_ok(rows):
    assert rows, "experiment produced no rows"
    bad = [row for row in rows if not row.ok]
    assert not bad, "\n".join(row.markdown() for row in bad)


class TestExperimentSuite:
    def test_e1(self):
        assert_all_ok(run_e1_consensus())

    def test_e2(self):
        assert_all_ok(run_e2_set_consensus())

    def test_e3(self):
        assert_all_ok(run_e3_impossibility())

    def test_e4(self):
        assert_all_ok(run_e4_transfer())

    def test_e5(self):
        assert_all_ok(run_e5_hierarchy())

    def test_e6(self):
        assert_all_ok(run_e6_common2())

    def test_e7(self):
        assert_all_ok(run_e7_bg())

    def test_e8(self):
        assert_all_ok(run_e8_subdivision())

    def test_e9(self):
        assert_all_ok(run_e9_substrate())

    def test_e10(self):
        assert_all_ok(run_e10_runtime())

    def test_e11(self):
        assert_all_ok(run_e11_recovery())

    def test_e11_triad_tells_the_power_separation_story(self, tmp_path):
        from repro.obs.witness import capture_witnesses

        with capture_witnesses(str(tmp_path)):
            rows = run_e11_recovery()
        assert len(rows) == 3
        crash_stop, crash_recovery, recoverable = rows
        assert "crash-stop" in crash_stop.setting
        assert "REFUTED" in crash_recovery.claimed
        assert "recoverable" in recoverable.setting
        assert "0 violations" not in crash_recovery.measured
        assert crash_recovery.witness

    def test_e11_byte_stable_across_invocations(self):
        first = [row.markdown() for row in run_e11_recovery()]
        second = [row.markdown() for row in run_e11_recovery()]
        assert first == second


class TestRowRendering:
    def test_markdown_row(self):
        row = ExperimentRow("E0", "setting", "claim", "measured", True)
        assert row.markdown() == "| E0 | setting | claim | measured | ✓ |"

    def test_failed_row_marker(self):
        row = ExperimentRow("E0", "s", "c", "m", False)
        assert "✗" in row.markdown()

    def test_table_has_header(self):
        table = render_table([ExperimentRow("E0", "s", "c", "m", True)])
        assert table.splitlines()[0].startswith("| exp |")
        assert len(table.splitlines()) == 3
