"""The explorer must recover the standard chromatic subdivision counts
from the immediate-snapshot algorithm — a deep cross-layer invariant
tying the register algorithms to the topological theory."""

import pytest

from repro.algorithms.immediate_snapshot import immediate_snapshot_spec
from repro.runtime.explorer import Explorer


def distinct_profiles(n, max_depth):
    inputs = [f"x{i}" for i in range(n)]
    spec = immediate_snapshot_spec(inputs)
    explorer = Explorer(spec, max_depth=max_depth)
    profiles = set()
    for execution in explorer.executions():
        profiles.add(tuple(execution.outputs[pid] for pid in range(n)))
    return profiles, explorer.stats.executions


class TestChromaticSubdivision:
    @pytest.mark.parametrize(
        "n,expected_simplexes",
        [(1, 1), (2, 3), (3, 13)],
    )
    def test_maximal_simplex_counts(self, n, expected_simplexes):
        profiles, _executions = distinct_profiles(n, max_depth=12 * n)
        assert len(profiles) == expected_simplexes

    def test_two_process_profiles_are_the_known_three(self):
        profiles, executions = distinct_profiles(2, max_depth=24)
        assert executions == 16
        full = frozenset({(0, "x0"), (1, "x1")})
        solo0 = frozenset({(0, "x0")})
        solo1 = frozenset({(1, "x1")})
        assert profiles == {
            (full, full),        # both saw both (the central edge)
            (solo0, full),       # p0 went first
            (full, solo1),       # p1 went first
        }

    def test_every_profile_is_a_valid_simplex(self):
        """Views within a profile are ordered by containment (that is
        what makes the profile a simplex of the subdivision)."""
        profiles, _ = distinct_profiles(3, max_depth=36)
        for profile in profiles:
            for a in profile:
                for b in profile:
                    assert a <= b or b <= a
