"""Task-power equivalence: O(n, k) versus its two classical components.

The paper's family packs two classical powers into one deterministic
object.  These tests pin the two-way coverage executably:

* O(n, k) implements each component's task (consensus for n; the
  (n(k+2), k+1)-set-consensus task);
* conversely the pair {n-consensus object, (n(k+2), k+1)-set-consensus
  object} solves each task the family's protocols solve at the same
  parameters — so the family sits exactly at the *join* of the two
  classical powers, which is what "deterministic realization of
  set-consensus power" means operationally.
"""

import pytest

from repro.algorithms.helpers import build_spec, inputs_dict
from repro.algorithms.set_consensus_from_family import (
    consensus_spec,
    set_consensus_spec,
)
from repro.core.power import (
    cover_agreement,
    family_profile,
    n_consensus_profile,
    set_consensus_profile,
)
from repro.objects.set_consensus import SetConsensusSpec
from repro.runtime.ops import invoke
from repro.tasks import (
    ConsensusTask,
    KSetConsensusTask,
    check_task_all_schedules,
    check_task_random_schedules,
)


class TestFamilyImplementsComponents:
    @pytest.mark.parametrize("n,k", [(1, 1), (2, 1), (2, 2)])
    def test_consensus_component(self, n, k):
        inputs = [f"v{i}" for i in range(n)]
        report = check_task_all_schedules(
            consensus_spec(n, k, inputs), ConsensusTask(), inputs_dict(inputs)
        )
        assert report.ok, report.reason

    @pytest.mark.parametrize("n,k", [(1, 1), (2, 1)])
    def test_set_consensus_component_exhaustive(self, n, k):
        ports = n * (k + 2)
        inputs = [f"v{i}" for i in range(ports)]
        report = check_task_all_schedules(
            set_consensus_spec(n, k, inputs),
            KSetConsensusTask(k + 1),
            inputs_dict(inputs),
        )
        assert report.ok, report.reason


class TestComponentsImplementFamilyTasks:
    @pytest.mark.parametrize("n,k", [(2, 1), (2, 2), (3, 1)])
    def test_sc_object_covers_the_ring_task(self, n, k):
        """One (n(k+2), k+1)-SC object solves the family's headline task
        directly (trivially — that is the definition of the yardstick)."""
        ports = n * (k + 2)
        inputs = [f"v{i}" for i in range(ports)]

        def program(pid, value):
            decision = yield invoke("sc", "propose", value)
            return decision

        spec = build_spec({"sc": SetConsensusSpec(ports, k + 1)}, program, inputs)
        report = check_task_random_schedules(
            spec, KSetConsensusTask(k + 1), inputs_dict(inputs), seeds=range(100)
        )
        assert report.ok, report.reason

    @pytest.mark.parametrize("n,k", [(2, 1), (2, 2), (3, 2)])
    def test_cover_power_of_pair_matches_family(self, n, k):
        """System-level agreement of {n-consensus, (n(k+2), k+1)-SC}
        copies equals the family's own cover curve at every N up to three
        rings — the analytic equivalence."""
        ports = n * (k + 2)
        pair = [n_consensus_profile(n), set_consensus_profile(ports, k + 1)]
        family = [family_profile(n, k)]
        for total in range(0, 3 * ports + 1):
            assert cover_agreement(total, pair) == cover_agreement(total, family), total


class TestJoinIsStrict:
    def test_neither_component_alone_suffices(self):
        """Each component alone is strictly weaker than the pair: the
        n-consensus object cannot reach k+1 at N = n(k+2), and the SC
        object cannot serve small cohorts as n-consensus."""
        n, k = 2, 1
        ports = n * (k + 2)
        consensus_only = [n_consensus_profile(n)]
        sc_only = [set_consensus_profile(ports, k + 1)]
        pair = [n_consensus_profile(n), set_consensus_profile(ports, k + 1)]
        # At the ring size, consensus-only is one worse.
        assert cover_agreement(ports, consensus_only) == k + 2
        assert cover_agreement(ports, pair) == k + 1
        # At cohort size n, SC-only is trivial (n decisions), pair gives 1.
        assert cover_agreement(n, sc_only) == n
        assert cover_agreement(n, pair) == 1
