"""Artifact writers must create missing parent directories.

Regression tests: every path-taking flag used to fail with
``FileNotFoundError`` when pointed into a directory that does not exist
yet (the natural first invocation: ``--trace-out out/run.jsonl``).
"""

import json

from repro.__main__ import main
from repro.fsutil import ensure_parent


class TestEnsureParent:
    def test_creates_nested_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "file.txt"
        assert ensure_parent(str(target)) == str(target)
        assert target.parent.is_dir()

    def test_bare_filename_is_untouched(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert ensure_parent("file.txt") == "file.txt"

    def test_existing_directory_is_fine(self, tmp_path):
        target = tmp_path / "file.txt"
        ensure_parent(str(target))
        ensure_parent(str(target))


class TestFlagsCreateParents:
    def make_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "missing" / "run.jsonl"
        assert main(["check", "1", "1", "--trace-out", str(trace)]) == 0
        assert trace.exists()

    def test_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "missing" / "run.prom"
        assert main(["check", "1", "1", "--metrics-out", str(out)]) == 0
        assert "steps_total" in out.read_text()

    def test_stats_html(self, tmp_path, capsys):
        trace = self.make_trace(tmp_path, capsys)
        out = tmp_path / "missing" / "report.html"
        assert main(["stats", str(trace), "--html", str(out)]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_stats_flame(self, tmp_path, capsys):
        trace = self.make_trace(tmp_path, capsys)
        out = tmp_path / "missing" / "stacks.folded"
        assert main(["stats", str(trace), "--flame", str(out)]) == 0
        assert out.exists()

    def test_stats_metrics_out(self, tmp_path, capsys):
        trace = self.make_trace(tmp_path, capsys)
        out = tmp_path / "missing" / "replay.prom"
        assert main(["stats", str(trace), "--metrics-out", str(out)]) == 0
        assert "steps_total" in out.read_text()

    def test_checkpoint_path(self, tmp_path, capsys):
        checkpoint = tmp_path / "missing" / "ck.jsonl"
        assert main(
            ["explore", "--task", "consensus", "--n", "2", "--k", "1",
             "--checkpoint", str(checkpoint)]
        ) == 0
        from repro.faults.checkpoint import FORMAT

        header = json.loads(checkpoint.read_text().splitlines()[0])
        assert header["format"] == FORMAT


class TestStatsCorruptInput:
    def test_all_corrupt_exits_2(self, tmp_path, capsys):
        """Every line unreadable is an error, not an empty digest."""
        trace = tmp_path / "bad.jsonl"
        trace.write_text("{nope\nnot json either\n")
        assert main(["stats", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "no events" in err
        assert "2 corrupt lines skipped" in err

    def test_empty_trace_still_exits_1(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["stats", str(trace)]) == 1

    def test_partially_corrupt_trace_still_works(self, tmp_path, capsys):
        trace = tmp_path / "mixed.jsonl"
        trace.write_text(
            json.dumps({"i": 0, "event": "step", "pid": 0}) + "\ngarbage\n"
        )
        assert main(["stats", str(trace)]) == 0
        assert "1 corrupt lines skipped" in capsys.readouterr().out
