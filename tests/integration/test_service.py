"""End-to-end tests for ``repro serve`` (:mod:`repro.obs.service`).

The acceptance scenario from the issue: several concurrent jobs against
one daemon, one worker SIGKILLed mid-exploration, every job still
reaching a final verdict with the killed job's ledger record linked to
its resume chain, and ``/metrics`` agreeing with the ledger — all while
handlers only ever read snapshots (they are polled continuously *while*
the workers run).
"""

import json
import os
import re
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.service import serve_service


def get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8"), response.headers


def get_json(url):
    status, body, _headers = get(url)
    assert status == 200
    return json.loads(body)


def post_json(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def wait_final(session, job_id, timeout=120.0, on_poll=None):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snap = get_json(session.url(f"/jobs/{job_id}"))
        if on_poll is not None:
            on_poll(snap)
        if snap["state"] in ("done", "error"):
            return snap
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached a final state")


def prom_values(text, metric):
    """``{label-string: float}`` for one metric in Prometheus text."""
    values = {}
    for match in re.finditer(
        rf"^{re.escape(metric)}(\{{[^}}]*\}})? (\S+)$", text, re.MULTILINE
    ):
        values[match.group(1) or ""] = float(match.group(2))
    return values


class TestAcceptance:
    def test_three_jobs_one_killed_resume_chain_and_metrics(
        self, tmp_path, capsys
    ):
        session = serve_service(
            str(tmp_path / "data"), max_workers=3, max_retries=2
        )
        try:
            _status, job_a = post_json(
                session.url("/jobs"), {"task": "consensus", "n": 2, "k": 1}
            )
            _status, job_b = post_json(
                session.url("/jobs"),
                {"task": "set-consensus", "n": 2, "k": 1},
            )
            # The kill target: enough crash timings (~2s of work) to
            # reliably SIGKILL it mid-walk, checkpointing often enough
            # that the resume has a frontier to pick up.
            _status, job_c = post_json(
                session.url("/jobs"),
                {
                    "task": "set-consensus", "n": 2, "k": 1,
                    "max_crashes": 3, "checkpoint_every": 50,
                    "label": "kill me",
                },
            )
            checkpoint = str(
                tmp_path / "data" / "jobs" / job_c["id"] / "checkpoint.jsonl"
            )
            killed = {"pid": None}

            def kill_once(snap):
                if (
                    killed["pid"] is None
                    and snap["state"] == "running"
                    and snap.get("pid")
                    and os.path.exists(checkpoint)
                ):
                    os.kill(snap["pid"], signal.SIGKILL)
                    killed["pid"] = snap["pid"]

            final_c = wait_final(session, job_c["id"], on_poll=kill_once)
            final_a = wait_final(session, job_a["id"])
            final_b = wait_final(session, job_b["id"])

            # Every job reached a final verdict.
            assert final_a["state"] == "done"
            assert final_a["verdict"] == "proved"
            assert final_b["state"] == "done"
            assert final_b["verdict"] == "proved"
            assert killed["pid"] is not None, "never caught the worker running"
            assert final_c["state"] == "done"
            assert final_c["verdict"] == "proved"
            assert final_c["attempts"] == 2
            assert -9 in final_c["exit_codes"]  # the SIGKILL
            assert len(final_c["run_ids"]) == 2

            # The killed job's resume chain is in the ledger: the dead
            # attempt wrote no record, but its run id (recovered from
            # the checkpoint header) is the parent of the resumed run's.
            runs = get_json(session.url("/runs"))
            assert runs["corrupt_lines"] == 0
            by_id = {r["run_id"]: r for r in runs["runs"]}
            dead_id, resumed_id = final_c["run_ids"]
            assert dead_id not in by_id  # SIGKILL leaves no record
            assert by_id[resumed_id]["parent_run_id"] == dead_id
            assert by_id[resumed_id]["verdict"] == "proved"

            # The resumed run's ledger record carries the merged
            # execution-set digest, seeded across the SIGKILL from the
            # checkpoint header's digest-so-far.
            assert by_id[resumed_id]["execset"]["records"] == 21720
            assert len(by_id[resumed_id]["execset"]["digest"]) == 64

            # /metrics verdict tallies match the ledger.
            _status, metrics, _headers = get(session.url("/metrics"))
            tallies = prom_values(metrics, "repro_service_runs_total")
            ledger_tallies = {}
            for record in runs["runs"]:
                verdict = record["verdict"]
                ledger_tallies[verdict] = ledger_tallies.get(verdict, 0) + 1
            assert tallies == {
                f'{{verdict="{verdict}"}}': float(count)
                for verdict, count in ledger_tallies.items()
            }
            job_states = prom_values(metrics, "repro_service_jobs")
            assert job_states['{state="done"}'] == 3.0

            # The resumed exploration's executions line up: resume
            # visits exactly what the dead worker had not yet yielded.
            assert by_id[resumed_id]["executions"] == 21720

            # -- causal trace: one stitched tree for the killed job ----
            tree = get_json(session.url(f"/jobs/{job_c['id']}/trace"))
            assert tree["orphans"] == 0
            (root,) = tree["tree"]
            assert root["span"] == "job"
            child_names = [c["span"] for c in root["children"]]
            assert child_names == [
                "queue_wait", "attempt_1", "resume_gap", "attempt_2",
            ]
            by_name = {c["span"]: c for c in root["children"]}
            # the killed attempt carries the SIGKILL exit, unclosed
            # worker spans parented beneath it; the resumed attempt's
            # worker tree closed cleanly.
            assert by_name["attempt_1"]["error"] == "exit_-9"
            for attempt in ("attempt_1", "attempt_2"):
                (worker_root,) = by_name[attempt]["children"]
                assert worker_root["span"] == "command"
                assert worker_root["parent_id"] == by_name[attempt]["span_id"]
                descendants = worker_root["children"]
                assert any(d["span"] == "explore" for d in descendants)
            killed_worker = by_name["attempt_1"]["children"][0]
            assert killed_worker.get("unclosed") is True
            resumed_worker = by_name["attempt_2"]["children"][0]
            assert "unclosed" not in resumed_worker

            # `repro trace show` is byte-identical across invocations.
            from repro.__main__ import main as cli_main

            job_dir = str(tmp_path / "data" / "jobs" / job_c["id"])
            capsys.readouterr()
            assert cli_main(["trace", "show", job_dir]) == 0
            first = capsys.readouterr().out
            assert cli_main(["trace", "show", job_dir]) == 0
            second = capsys.readouterr().out
            assert first == second
            for landmark in (
                "queue_wait", "attempt_1", "attempt_2", "resume_gap",
            ):
                assert landmark in first

            # /metrics trace_spans_total agrees with the stitched trees.
            _status, metrics, _headers = get(session.url("/metrics"))
            span_total = prom_values(
                metrics, "repro_service_trace_spans_total"
            )
            expected = sum(
                get_json(session.url(f"/jobs/{j['id']}/trace"))["spans"]
                for j in (job_a, job_b, job_c)
            )
            assert span_total[""] == float(expected)
            assert tree["spans"] <= expected
            self_seconds = prom_values(
                metrics, "repro_service_span_self_seconds"
            )
            assert '{span="queue_wait"}' in self_seconds
            assert '{span="explore"}' in self_seconds
        finally:
            session.close()


class TestEndpoints:
    @pytest.fixture()
    def session(self, tmp_path):
        session = serve_service(str(tmp_path / "data"), max_workers=2)
        yield session
        session.close()

    def finished_job(self, session):
        _status, job = post_json(
            session.url("/jobs"), {"task": "consensus", "n": 2, "k": 1}
        )
        return wait_final(session, job["id"])

    def test_submit_and_snapshot_roundtrip(self, session):
        status, job = post_json(
            session.url("/jobs"),
            {"task": "consensus", "n": 2, "k": 1, "seed": 7, "label": "x"},
        )
        assert status == 201
        assert job["state"] == "queued"
        assert job["spec"]["seed"] == 7  # provenance, recorded verbatim
        final = wait_final(session, job["id"])
        assert final["verdict"] == "proved"
        assert final["run_ids"], "run id recovered from the checkpoint"
        listing = get_json(session.url("/jobs"))["jobs"]
        assert [j["id"] for j in listing] == [job["id"]]

    def test_job_progress_carries_heartbeat_fields(self, session):
        # Big enough (~1s of crash timings) that the explorer's 0.5s
        # heartbeat cadence fires at least once mid-walk.
        _status, job = post_json(
            session.url("/jobs"),
            {"task": "set-consensus", "n": 2, "k": 1, "max_crashes": 1},
        )
        final = wait_final(session, job["id"])
        assert final["verdict"] == "proved"
        # The trace tail fed the snapshot: heartbeats carry executions.
        assert 0 < final["explore"]["executions"] <= 5040
        assert final["trace_lines"] > 0

    def test_bad_specs_and_bodies_are_400(self, session):
        for payload in (
            {"task": "nope"},
            {"task": "consensus", "n": 0},
            {"task": "consensus", "bogus": 1},
        ):
            request = urllib.request.Request(
                session.url("/jobs"),
                data=json.dumps(payload).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400
        request = urllib.request.Request(
            session.url("/jobs"), data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert get_json(session.url("/jobs"))["jobs"] == []

    def test_unknown_routes_and_jobs_are_404(self, session):
        for path in ("/jobs/job-9999", "/nope", "/runs/zzz"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(session.url(path))
            assert excinfo.value.code == 404, path
            payload = json.loads(excinfo.value.read().decode())
            assert "error" in payload

    def test_runs_endpoint_filters_by_verdict(self, session):
        self.finished_job(session)
        proved = get_json(session.url("/runs?verdict=PROVED"))["runs"]
        assert len(proved) == 1
        assert get_json(session.url("/runs?verdict=refuted"))["runs"] == []
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(session.url("/runs?verdict=maybe"))
        assert excinfo.value.code == 400
        record = proved[0]
        shown = get_json(session.url(f"/runs/{record['run_id']}"))
        assert shown["run_id"] == record["run_id"]

    def test_daemon_events_bad_n_is_400(self, session):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(session.url("/events?n=-1"))
        assert excinfo.value.code == 400

    def test_all_responses_send_no_store(self, session):
        self.finished_job(session)
        for path in ("/", "/jobs", "/metrics", "/runs", "/witnesses"):
            _status, _body, headers = get(session.url(path))
            assert headers["Cache-Control"] == "no-store", path

    def test_dashboard_renders_jobs_runs_and_witnesses(self, session):
        final = self.finished_job(session)
        _status, html, _headers = get(session.url("/"))
        assert final["id"] in html
        assert "consensus(n=2, k=1" in html
        assert final["run_ids"][0] in html
        assert "1 done" in html

    def test_execset_stream_surfaced_in_metrics_and_dashboard(self, session):
        final = self.finished_job(session)
        runs = get_json(session.url("/runs"))["runs"]
        (record,) = [r for r in runs if r["run_id"] == final["run_ids"][-1]]
        digest = record["execset"]["digest"]
        assert len(digest) == 64
        # The worker's stream file sits in the job dir, one per attempt.
        assert record["execset"]["path"].endswith(
            f"{final['id']}/execset-1.jsonl"
        )
        _status, metrics, _headers = get(session.url("/metrics"))
        streams = prom_values(metrics, "repro_execset_streams")
        assert streams[""] == 1.0
        records_gauge = prom_values(metrics, "repro_execset_records")
        assert records_gauge[f'{{job="{final["id"]}"}}'] == float(
            record["execset"]["records"]
        )
        digest_info = prom_values(metrics, "repro_execset_digest_info")
        assert (
            f'{{job="{final["id"]}",digest="{digest[:16]}"}}' in digest_info
        )
        # The dashboard's recent-runs table shows the short digest.
        _status, html, _headers = get(session.url("/"))
        assert digest[:16] in html

    def test_sse_dump_ends_with_final_state(self, session):
        final = self.finished_job(session)
        _status, body, headers = get(
            session.url(f"/jobs/{final['id']}/events?follow=0")
        )
        assert headers["Content-Type"] == "text/event-stream"
        data_lines = [
            line for line in body.splitlines() if line.startswith("data: ")
        ]
        assert len(data_lines) > 2
        events = [json.loads(line[len("data: "):]) for line in data_lines[:-1]]
        assert any(e.get("event") == "schedule_explored" for e in events)
        assert "event: end" in body
        assert json.loads(data_lines[-1][len("data: "):])["verdict"] == "proved"

    def test_trace_endpoint_formats(self, session):
        final = self.finished_job(session)
        tree = get_json(session.url(f"/jobs/{final['id']}/trace"))
        assert tree["spans"] > 0
        assert tree["tree"][0]["span"] == "job"
        _status, text, _headers = get(
            session.url(f"/jobs/{final['id']}/trace?format=text")
        )
        assert "queue_wait" in text
        _status, html, _headers = get(
            session.url(f"/jobs/{final['id']}/trace?format=html")
        )
        assert 'class="wf"' in html
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(session.url(f"/jobs/{final['id']}/trace?format=nope"))
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(session.url("/jobs/job-9999/trace"))
        assert excinfo.value.code == 404

    def test_dashboard_embeds_waterfall_for_finished_job(self, session):
        self.finished_job(session)
        _status, html, _headers = get(session.url("/"))
        assert 'class="wf"' in html
        assert "queue_wait" in html

    def test_witness_endpoints_serve_and_sanitize(self, session, tmp_path):
        from tests.integration.test_cli import TestWitnessAndExplain

        bundle = TestWitnessAndExplain.archive_bundle(
            session.manager.witness_dir
        )
        witness_id = os.path.basename(bundle)[: -len(".jsonl")]
        listing = get_json(session.url("/witnesses"))["witnesses"]
        assert [w["id"] for w in listing] == [witness_id]
        _status, raw, _headers = get(session.url(f"/witnesses/{witness_id}"))
        assert json.loads(raw.splitlines()[0])["format"] == "repro-witness/1"
        _status, lane, _headers = get(
            session.url(f"/witnesses/{witness_id}/lane")
        )
        assert 'class="lanes"' in lane
        assert witness_id in lane
        for evil in ("..%2F..%2Fetc%2Fpasswd", ".hidden", "no-such-bundle"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(session.url(f"/witnesses/{evil}"))
            assert excinfo.value.code == 404

    def test_close_drains_and_refuses_new_jobs(self, tmp_path):
        session = serve_service(str(tmp_path / "data"), max_workers=1)
        session.manager.drain(timeout=5)
        request = urllib.request.Request(
            session.url("/jobs"),
            data=json.dumps({"task": "consensus"}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 503
        session.close()
        session.close()  # idempotent


class TestJobRowRendering:
    """Dashboard job rows must render specs from any era (unit-level,
    no server needed)."""

    def snap(self, spec):
        return {
            "id": "j1",
            "spec": spec,
            "state": "done",
            "verdict": "proved",
            "attempts": 1,
        }

    def test_tolerates_spec_predating_recoveries(self):
        from repro.obs.service import _job_row

        row = _job_row(
            self.snap({"task": "consensus", "n": 2, "k": 1, "max_crashes": 1})
        )
        assert "consensus(n=2, k=1, f=1)" in row
        assert "r=" not in row

    def test_renders_recovery_budget_when_set(self):
        from repro.obs.service import _job_row

        row = _job_row(
            self.snap(
                {
                    "task": "consensus",
                    "n": 2,
                    "k": 1,
                    "max_crashes": 1,
                    "max_recoveries": 1,
                }
            )
        )
        assert "consensus(n=2, k=1, f=1, r=1)" in row
