"""Integration: graceful degradation of the suite and CLI under faults
and budgets — error isolation, INCONCLUSIVE downgrades, exit codes, and
checkpoint/resume through ``repro explore``."""

import pytest

from repro.__main__ import main
from repro.experiments import report, suite
from repro.experiments.rows import ExperimentRow
from repro.faults.checkpoint import read_checkpoint
from repro.faults.verdict import Verdict


def ok_runner():
    return [
        ExperimentRow(
            experiment="EX",
            setting="trivial",
            claimed="runs",
            measured="ran",
            ok=True,
        )
    ]


def crashing_runner():
    raise RuntimeError("boom")


class TestSuiteIsolation:
    def test_one_crashing_experiment_becomes_error_row(self, monkeypatch):
        monkeypatch.setattr(
            suite, "EXPERIMENTS", {"EX": ok_runner, "EY": crashing_runner}
        )
        results = suite.run_all()
        assert results["EX"][0].effective_verdict is Verdict.PROVED
        error = results["EY"][0]
        assert error.effective_verdict is Verdict.ERROR
        assert "RuntimeError: boom" in error.measured

    def test_report_check_exit_code_on_error(self, monkeypatch, capsys):
        monkeypatch.setattr(
            suite, "EXPERIMENTS", {"EX": ok_runner, "EY": crashing_runner}
        )
        assert report.main(["--check"]) == 2
        out = capsys.readouterr().out
        assert "1 errors" in out

    def test_report_exit_zero_without_check(self, monkeypatch, capsys):
        monkeypatch.setattr(suite, "EXPERIMENTS", {"EY": crashing_runner})
        assert report.main([]) == 0


class TestBudgetDegradation:
    def test_expired_deadline_skips_everything_inconclusive(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            suite, "EXPERIMENTS", {"EX": ok_runner, "EY": ok_runner}
        )
        assert report.main(["--check", "--deadline", "0"]) == 3
        out = capsys.readouterr().out
        assert "2 inconclusive" in out
        assert "budget exhausted before start" in out

    def test_skipped_rows_are_inconclusive_not_failed(self, monkeypatch):
        monkeypatch.setattr(suite, "EXPERIMENTS", {"EX": ok_runner})
        from repro.faults.budget import Budget, active_budget

        with active_budget(Budget(deadline=0.0)):
            results = suite.run_all()
        row = results["EX"][0]
        assert row.effective_verdict is Verdict.INCONCLUSIVE
        assert row.ok  # inconclusive is not a refutation


class TestExploreCheckpointResume:
    def test_interrupt_and_resume_cover_full_space(self, tmp_path, capsys):
        path = str(tmp_path / "explore.jsonl")
        code = main(
            [
                "explore", "--task", "set-consensus", "--n", "2", "--k", "1",
                "--checkpoint", path, "--max-steps", "2000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "INCONCLUSIVE" in out
        interrupted = read_checkpoint(path)
        assert not interrupted.done
        assert 0 < interrupted.executions < 720

        code = main(["explore", "--resume", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "resuming set-consensus O(2,1)" in out
        assert "720 executions" in out
        assert read_checkpoint(path).done

    def test_resuming_complete_checkpoint_is_a_noop(self, tmp_path, capsys):
        path = str(tmp_path / "explore.jsonl")
        assert (
            main(
                [
                    "explore", "--task", "set-consensus", "--n", "2",
                    "--k", "1", "--checkpoint", path,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["explore", "--resume", path]) == 0
        assert "nothing to resume" in capsys.readouterr().out

    def test_resume_from_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["explore", "--resume", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot resume" in capsys.readouterr().err
