"""E5 — the infinite strict hierarchy, plus lattice construction costs."""

from conftest import assert_rows_ok

from repro.core.hierarchy import (
    family_chain,
    family_hierarchy_graph,
    set_consensus_lattice,
)
from repro.experiments.suite import run_e5_hierarchy


def test_e5_full_table(benchmark):
    rows = benchmark.pedantic(run_e5_hierarchy, rounds=2, iterations=1)
    assert_rows_ok(rows)


def test_e5_chain_certificates(benchmark):
    chain = benchmark(family_chain, 2, 50)
    assert len(chain) == 50
    assert all(level.agreement_here + 1 == level.agreement_weaker for level in chain)


def test_e5_hierarchy_graph(benchmark):
    graph = benchmark(family_hierarchy_graph, 3, 20)
    assert graph.number_of_nodes() == 22  # 20 levels + 2 anchors


def test_e5_set_consensus_lattice(benchmark):
    graph = benchmark(set_consensus_lattice, 12)
    assert graph.number_of_nodes() == sum(m - 1 for m in range(2, 13))
