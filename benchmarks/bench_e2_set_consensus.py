"""E2 — the headline (n(k+2), k+1)-set consensus power of O(n, k).

Regenerates the E2 table, and measures its two cost centers separately:
the exhaustive 720-schedule model check and a single protocol run.
"""

from conftest import assert_rows_ok

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.experiments.suite import run_e2_set_consensus
from repro.runtime.scheduler import RandomScheduler
from repro.tasks import KSetConsensusTask, check_task_all_schedules


def test_e2_full_table(benchmark):
    rows = benchmark.pedantic(run_e2_set_consensus, rounds=3, iterations=1)
    assert_rows_ok(rows)


def test_e2_exhaustive_o21(benchmark):
    inputs = [f"v{i}" for i in range(6)]

    def run():
        return check_task_all_schedules(
            set_consensus_spec(2, 1, inputs),
            KSetConsensusTask(2),
            inputs_dict(inputs),
        )

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.ok
    assert report.executions_checked == 720


def test_e2_single_run_o42(benchmark):
    inputs = [f"v{i}" for i in range(16)]  # O(4,2): 4 groups x 4 slots

    def run():
        return set_consensus_spec(4, 2, inputs).run(RandomScheduler(7))

    execution = benchmark(run)
    assert len(execution.distinct_outputs()) <= 3
