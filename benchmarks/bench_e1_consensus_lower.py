"""E1 — consensus lower bound: n processes on one O(n, k) group.

Regenerates the E1 table of EXPERIMENTS.md and measures the exhaustive
check's cost.
"""

from conftest import assert_rows_ok

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import consensus_spec
from repro.experiments.suite import run_e1_consensus
from repro.tasks import ConsensusTask, check_task_all_schedules


def test_e1_full_table(benchmark):
    rows = benchmark.pedantic(run_e1_consensus, rounds=3, iterations=1)
    assert_rows_ok(rows)


def test_e1_exhaustive_check_o31(benchmark):
    inputs = ["a", "b", "c"]

    def run():
        return check_task_all_schedules(
            consensus_spec(3, 1, inputs), ConsensusTask(), inputs_dict(inputs)
        )

    report = benchmark(run)
    assert report.ok
    assert report.executions_checked == 6  # 3! one-step schedules
