"""Scaling curves of the machinery (E10 extension).

Where the costs grow and how fast — the numbers that size new
experiments: the explorer's factorial schedule tree, the cover DP in N,
protocol runs in port count, and the lattice construction in m.
"""

import math

from repro.algorithms.set_consensus_from_family import (
    partition_set_consensus_spec,
)
from repro.core.hierarchy import set_consensus_lattice
from repro.core.power import cover_agreement, family_profile
from repro.objects.register import RegisterSpec
from repro.runtime.explorer import Explorer
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.system import SystemSpec


def one_step_spec(n_processes):
    def make(pid):
        def run():
            yield invoke("r", "write", pid)
            return pid

        return run

    return SystemSpec({"r": RegisterSpec()}, [make(p) for p in range(n_processes)])


def test_explorer_factorial_frontier(benchmark):
    """5 one-step processes: 120 leaves, 326 interior replays."""

    def run():
        explorer = Explorer(one_step_spec(5), max_depth=6)
        return sum(1 for _ in explorer.executions())

    count = benchmark(run)
    assert count == math.factorial(5)


def test_cover_dp_large_n(benchmark):
    profile = family_profile(3, 4)

    def run():
        return cover_agreement(500, [profile])

    value = benchmark(run)
    assert value == cover_agreement(500, [profile])  # deterministic


def test_protocol_run_100_processes(benchmark):
    inputs = [f"v{i}" for i in range(100)]
    spec = partition_set_consensus_spec(2, 1, inputs)

    def run():
        return spec.run(RandomScheduler(9))

    execution = benchmark(run)
    assert execution.all_done()
    assert len(execution) == 100  # one step per process


def test_lattice_m20(benchmark):
    graph = benchmark(set_consensus_lattice, 20)
    assert graph.number_of_nodes() == sum(m - 1 for m in range(2, 21))
