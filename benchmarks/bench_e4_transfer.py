"""E4 — set-consensus transfer vs the implementability theorem."""

from conftest import assert_rows_ok

from repro.algorithms.set_consensus_transfer import transfer_spec
from repro.core.theorem import max_agreement
from repro.experiments.suite import run_e4_transfer
from repro.runtime.explorer import Explorer
from repro.runtime.scheduler import RandomScheduler


def test_e4_full_table(benchmark):
    rows = benchmark.pedantic(run_e4_transfer, rounds=3, iterations=1)
    assert_rows_ok(rows)


def test_e4_exhaustive_nondeterministic_objects(benchmark):
    """The explorer branches over object nondeterminism too ((3,2)-SC
    objects really are nondeterministic: adopt-or-extend, then pick) —
    measure the 4-process tree walk."""
    inputs = ["a", "b", "c", "d"]

    def run():
        explorer = Explorer(transfer_spec(3, 2, inputs), max_depth=10)
        worst = 0
        for execution in explorer.executions():
            worst = max(worst, len(execution.distinct_outputs()))
        return worst, explorer.stats.executions

    worst, executions = benchmark(run)
    assert worst == max_agreement(4, 3, 2) == 3
    assert executions > 24  # nondeterminism multiplies the 4! schedules


def test_e4_single_run_large(benchmark):
    inputs = [f"v{i}" for i in range(30)]

    def run():
        return transfer_spec(5, 2, inputs).run(RandomScheduler(3))

    execution = benchmark(run)
    assert len(execution.distinct_outputs()) <= max_agreement(30, 5, 2)
