"""E7 — the BG simulation: clean-run cost and crash containment."""

from conftest import assert_rows_ok

from repro.algorithms.bg_simulation import simulation_spec, write_scan_protocol
from repro.experiments.suite import run_e7_bg
from repro.runtime.scheduler import CrashingScheduler, RoundRobinScheduler


def test_e7_full_table(benchmark):
    rows = benchmark.pedantic(run_e7_bg, rounds=2, iterations=1)
    assert_rows_ok(rows)


def test_e7_clean_simulation(benchmark):
    protocol = write_scan_protocol(3)

    def run():
        spec = simulation_spec(protocol, 2, ["a", "b", "c"])
        return spec.run(RoundRobinScheduler(), max_steps=40_000)

    execution = benchmark(run)
    merged = {}
    for result in execution.outputs.values():
        merged.update(result)
    assert len(merged) == 3


def test_e7_crashed_simulation(benchmark):
    protocol = write_scan_protocol(3)

    def run():
        spec = simulation_spec(protocol, 2, ["a", "b", "c"])
        scheduler = CrashingScheduler(RoundRobinScheduler(), {0: 15})
        return spec.run(scheduler, max_steps=40_000)

    execution = benchmark(run)
    merged = {}
    for result in execution.outputs.values():
        merged.update(result)
    assert len(merged) >= 2  # containment: at most one blocked
