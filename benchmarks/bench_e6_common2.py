"""E6 — the Common2 refutation, analytic and executable."""

from conftest import assert_rows_ok

from repro.algorithms.consensus_from_n_consensus import (
    partition_set_consensus_spec as baseline_spec,
)
from repro.algorithms.set_consensus_from_family import set_consensus_spec
from repro.core.common2 import refutation_series
from repro.experiments.suite import run_e6_common2
from repro.runtime.scheduler import RandomScheduler, SoloScheduler


def test_e6_full_table(benchmark):
    rows = benchmark.pedantic(run_e6_common2, rounds=2, iterations=1)
    assert_rows_ok(rows)


def test_e6_certificate_series(benchmark):
    series = benchmark(refutation_series, 100)
    assert all(cert.holds for cert in series)


def test_e6_family_side_run(benchmark):
    inputs = [f"v{i}" for i in range(6)]

    def run():
        return set_consensus_spec(2, 1, inputs).run(RandomScheduler(11))

    execution = benchmark(run)
    assert len(execution.distinct_outputs()) <= 2


def test_e6_baseline_side_run(benchmark):
    inputs = [f"v{i}" for i in range(6)]

    def run():
        return baseline_spec(2, inputs).run(SoloScheduler([0, 2, 4, 1, 3, 5]))

    execution = benchmark(run)
    assert len(execution.distinct_outputs()) == 3
