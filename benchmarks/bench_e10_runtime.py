"""E10 — the performance envelope of the machinery itself.

These are the numbers a user needs to size their own experiments: raw
simulator step throughput, explorer tree-walk cost (with its replay
overhead), and the Wing–Gong checker on histories of growing width.
"""

from conftest import assert_rows_ok

from repro.algorithms.set_consensus_from_family import (
    partition_set_consensus_spec,
    set_consensus_spec,
)
from repro.analysis.linearizability import is_linearizable
from repro.experiments.suite import run_e10_runtime
from repro.objects.register import RegisterSpec
from repro.runtime.explorer import Explorer
from repro.runtime.history import History, HistoryEvent
from repro.runtime.scheduler import RandomScheduler


def test_e10_full_table(benchmark):
    rows = benchmark.pedantic(run_e10_runtime, rounds=2, iterations=1)
    assert_rows_ok(rows)


def test_e10_simulator_throughput(benchmark):
    inputs = [f"v{i}" for i in range(48)]
    spec = partition_set_consensus_spec(2, 1, inputs)

    def run():
        return spec.run(RandomScheduler(1))

    execution = benchmark(run)
    assert execution.all_done()


def test_e10_explorer_tree_walk(benchmark):
    inputs = [f"v{i}" for i in range(5)]
    spec = set_consensus_spec(1, 3, inputs)  # 5 one-step processes: 120

    def run():
        explorer = Explorer(spec, max_depth=8)
        return sum(1 for _ in explorer.executions())

    count = benchmark(run)
    assert count == 120


def test_e10_linearizability_checker_width(benchmark):
    """Checker cost on a register history with 8 concurrent operations."""
    events = []
    for i in range(4):
        events.append(
            HistoryEvent(
                pid=i, obj="r", method="write", args=(f"w{i}",),
                response=None, invoked_at=0, responded_at=100,
            )
        )
        events.append(
            HistoryEvent(
                pid=4 + i, obj="r", method="read", args=(),
                response=f"w{i}", invoked_at=0, responded_at=100,
            )
        )
    history = History(events)
    result = benchmark(is_linearizable, history, RegisterSpec())
    assert result
