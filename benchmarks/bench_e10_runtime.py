"""E10 — the performance envelope of the machinery itself.

These are the numbers a user needs to size their own experiments: raw
simulator step throughput, explorer tree-walk cost (with its replay
overhead), the Wing–Gong checker on histories of growing width, and the
cost of the observability layer (instrumented-but-disabled vs a live
JSONL sink) and of the opt-in state-space audit (no auditor vs an
attached :class:`~repro.obs.audit.StateAuditor`) so future PRs can see
instrumentation drift in the bench trajectory.
"""

import time

from conftest import assert_rows_ok

from repro.algorithms.set_consensus_from_family import (
    partition_set_consensus_spec,
    set_consensus_spec,
)
from repro.analysis.linearizability import is_linearizable
from repro.experiments.suite import run_e10_runtime
from repro.obs.events import JsonlSink, use_sink
from repro.objects.register import RegisterSpec
from repro.runtime.explorer import Explorer
from repro.runtime.history import History, HistoryEvent
from repro.runtime.scheduler import RandomScheduler


def test_e10_full_table(benchmark):
    rows = benchmark.pedantic(run_e10_runtime, rounds=2, iterations=1)
    assert_rows_ok(rows)


def test_e10_simulator_throughput(benchmark):
    inputs = [f"v{i}" for i in range(48)]
    spec = partition_set_consensus_spec(2, 1, inputs)

    def run():
        return spec.run(RandomScheduler(1))

    execution = benchmark(run)
    assert execution.all_done()


def test_e10_explorer_tree_walk(benchmark, bench_telemetry):
    inputs = [f"v{i}" for i in range(5)]
    spec = set_consensus_spec(1, 3, inputs)  # 5 one-step processes: 120

    def run():
        explorer = Explorer(spec, max_depth=8)
        count = sum(1 for _ in explorer.executions())
        return count, explorer.stats

    count, stats = benchmark(run)
    assert count == 120
    bench_telemetry(
        executions=count,
        replay_overhead=stats.replay_overhead,
        steps_total=stats.steps_total,
    )


def test_e10_obs_overhead(tmp_path, bench_telemetry):
    """Instrumentation-cost guard: the same workload with sinks disabled
    (the NullSink fast path every normal run takes) and with a JSONL sink
    attached.  The reported ratios let future PRs spot regressions in the
    hot-path guard; the disabled path is asserted to stay cheap.
    """
    inputs = [f"v{i}" for i in range(24)]
    spec = partition_set_consensus_spec(2, 1, inputs)
    seeds = range(30)

    def workload():
        total = 0
        for seed in seeds:
            total += len(spec.run(RandomScheduler(seed)))
        return total

    workload()  # warm-up: JIT-free but primes caches and allocator

    def timed(repeat=3):
        best = float("inf")
        steps = 0
        for _ in range(repeat):
            start = time.perf_counter()
            steps = workload()
            best = min(best, time.perf_counter() - start)
        return best, steps

    disabled_seconds, steps = timed()

    sink = JsonlSink(str(tmp_path / "bench.jsonl"))
    with use_sink(sink):
        jsonl_seconds, _ = timed()
    sink.close()

    ratio = jsonl_seconds / disabled_seconds if disabled_seconds else float("inf")
    disabled_rate = steps / disabled_seconds if disabled_seconds else float("inf")
    print(
        f"\nobs overhead: {steps} steps/run-set; "
        f"disabled {disabled_seconds:.4f}s ({disabled_rate:,.0f} steps/s), "
        f"jsonl {jsonl_seconds:.4f}s, ratio {ratio:.2f}x"
    )
    assert steps > 0
    bench_telemetry(
        steps=steps,
        seconds=disabled_seconds,
        obs_overhead_ratio=ratio,
        jsonl_seconds=jsonl_seconds,
    )
    # The disabled path must keep the simulator inside its E10 envelope —
    # the instrumented guard is one flag check per step.
    assert disabled_rate > 10_000, f"disabled-path rate fell to {disabled_rate:,.0f}/s"
    # The JSONL sink pays for dict building + json encoding + IO per step;
    # anything above this bound means the fast-path guard broke.
    assert ratio < 25, f"JSONL sink overhead exploded: {ratio:.1f}x"


def test_e10_audit_overhead(bench_telemetry):
    """State-audit cost guard: the same exhaustive walk with no auditor
    (the default every verification run takes) and with a
    :class:`~repro.obs.audit.StateAuditor` attached.  The audit is opt-in;
    this bench pins the disabled path to the E10 envelope and records the
    enabled ratio so future PRs can see profiling cost drift.
    """
    from repro.obs.audit import StateAuditor

    inputs = [f"v{i}" for i in range(5)]
    spec = set_consensus_spec(1, 3, inputs)  # 120 executions, fast

    def walk(auditor=None):
        explorer = Explorer(spec, max_depth=8, auditor=auditor)
        return sum(1 for _ in explorer.executions()), explorer.stats

    walk()  # warm-up

    def timed(make_auditor, repeat=3):
        best = float("inf")
        count = 0
        for _ in range(repeat):
            start = time.perf_counter()
            count, _stats = walk(make_auditor())
            best = min(best, time.perf_counter() - start)
        return best, count

    disabled_seconds, count = timed(lambda: None)
    enabled_seconds, audited_count = timed(
        lambda: StateAuditor(spec, value_alphabet=inputs, max_pairs=64)
    )

    ratio = enabled_seconds / disabled_seconds if disabled_seconds else float("inf")
    disabled_rate = count / disabled_seconds if disabled_seconds else float("inf")
    print(
        f"\naudit overhead: disabled {disabled_seconds:.4f}s "
        f"({disabled_rate:,.0f} executions/s), enabled {enabled_seconds:.4f}s, "
        f"ratio {ratio:.2f}x"
    )
    assert count == 120 and audited_count == 120
    bench_telemetry(
        executions=count,
        seconds=disabled_seconds,
        audit_overhead_ratio=ratio,
        audit_seconds=enabled_seconds,
    )
    # Off by default must mean free: the auditor hook is one None check
    # per configuration, so the disabled walk stays in the E10 envelope.
    assert disabled_rate > 200, (
        f"disabled-path rate fell to {disabled_rate:,.0f} executions/s"
    )
    # The enabled path pays fingerprinting plus pair replays; a blow-up
    # beyond this bound means the sampling caps stopped working.
    assert ratio < 25, f"audit overhead exploded: {ratio:.1f}x"


def test_e10_execset_overhead(bench_telemetry):
    """Execution-set digest cost guard: the same exhaustive walk with no
    recorder (what every Explorer constructed in code gets by default)
    and with an :class:`~repro.obs.execset.ExecutionSetRecorder`
    attached (what ``repro explore`` enables by default).  The disabled
    hook is one ``None`` check per maximal execution and must stay free;
    the enabled path pays one id hash plus two fingerprint hashes per
    execution (the canonical fingerprint is cached per distinct final
    configuration), and its ratio is recorded so future PRs can see
    digest-emission drift — the same bar as the PR-1 obs guard.
    """
    from repro.obs.execset import ExecutionSetRecorder

    inputs = [f"v{i}" for i in range(5)]
    spec = set_consensus_spec(1, 3, inputs)  # 120 executions, fast

    def walk(recorder=None):
        explorer = Explorer(spec, max_depth=8, execset=recorder)
        return sum(1 for _ in explorer.executions()), recorder

    walk()  # warm-up

    def timed(make_recorder, repeat=5):
        best = float("inf")
        count = 0
        recorder = None
        for _ in range(repeat):
            start = time.perf_counter()
            count, recorder = walk(make_recorder())
            best = min(best, time.perf_counter() - start)
        return best, count, recorder

    disabled_seconds, count, _ = timed(lambda: None)
    enabled_seconds, recorded_count, recorder = timed(
        lambda: ExecutionSetRecorder(
            spec_meta={"task": "set-consensus", "n": 1, "k": 3},
            value_alphabet=inputs,
        )
    )

    ratio = enabled_seconds / disabled_seconds if disabled_seconds else float("inf")
    disabled_rate = count / disabled_seconds if disabled_seconds else float("inf")
    print(
        f"\nexecset overhead: disabled {disabled_seconds:.4f}s "
        f"({disabled_rate:,.0f} executions/s), enabled {enabled_seconds:.4f}s, "
        f"ratio {ratio:.2f}x, digest {recorder.digest[:16]}"
    )
    assert count == 120 and recorded_count == 120
    assert recorder.total_records == 120
    bench_telemetry(
        steps=count,
        seconds=disabled_seconds,
        execset_overhead_ratio=ratio,
        execset_seconds=enabled_seconds,
    )
    # Off in code must mean free: the recorder hook is one None check per
    # maximal execution, so the disabled walk stays in the E10 envelope.
    assert disabled_rate > 200, (
        f"disabled-path rate fell to {disabled_rate:,.0f} executions/s"
    )
    # The enabled path pays hashing per execution; a blow-up beyond this
    # bound means the id fast path or the canonical cache broke.
    assert ratio < 25, f"execset overhead exploded: {ratio:.1f}x"


def test_e10_linearizability_checker_width(benchmark):
    """Checker cost on a register history with 8 concurrent operations."""
    events = []
    for i in range(4):
        events.append(
            HistoryEvent(
                pid=i, obj="r", method="write", args=(f"w{i}",),
                response=None, invoked_at=0, responded_at=100,
            )
        )
        events.append(
            HistoryEvent(
                pid=4 + i, obj="r", method="read", args=(),
                response=f"w{i}", invoked_at=0, responded_at=100,
            )
        )
    history = History(events)
    result = benchmark(is_linearizable, history, RegisterSpec())
    assert result
