"""Benchmark-suite configuration.

The reproduced paper has no empirical tables/figures (theory venue); the
benchmark harness regenerates the *experiment suite* of EXPERIMENTS.md —
one bench module per experiment id — and measures the cost of the
machinery itself (simulator, explorer, checkers).  Every bench asserts
its experiment's claim on the produced result, so ``pytest benchmarks/
--benchmark-only`` is also a correctness pass.
"""

import pytest


def assert_rows_ok(rows):
    """Fail loudly with the offending row rendered."""
    bad = [row for row in rows if not row.ok]
    assert not bad, "failed rows:\n" + "\n".join(row.markdown() for row in bad)
