"""Benchmark-suite configuration and telemetry harness.

The reproduced paper has no empirical tables/figures (theory venue); the
benchmark harness regenerates the *experiment suite* of EXPERIMENTS.md —
one bench module per experiment id — and measures the cost of the
machinery itself (simulator, explorer, checkers).  Every bench asserts
its experiment's claim on the produced result, so ``pytest benchmarks/
--benchmark-only`` is also a correctness pass.

Telemetry: every bench test's wall time is recorded automatically, and
benches can attach workload numbers (steps, throughput, overhead ratios)
through the ``bench_telemetry`` fixture.  At session end the harness
writes ``BENCH_runtime.json`` (schema ``repro-bench/1``, see
``repro.obs.bench``) — the repo's recorded perf trajectory.  Compare two
recordings with ``python -m repro bench-compare OLD.json NEW.json``;
override the output path with ``REPRO_BENCH_OUT``.
"""

import json
import os
import time

import pytest

from repro.obs.bench import SCHEMA

_telemetry = {}


def assert_rows_ok(rows):
    """Fail loudly with the offending row rendered."""
    bad = [row for row in rows if not row.ok]
    assert not bad, "failed rows:\n" + "\n".join(row.markdown() for row in bad)


@pytest.fixture(autouse=True)
def _bench_walltime(request):
    """Record every bench test's wall time into the trajectory."""
    start = time.perf_counter()
    yield
    entry = _telemetry.setdefault(request.node.name, {})
    entry["seconds"] = round(time.perf_counter() - start, 6)


@pytest.fixture
def bench_telemetry(request):
    """Attach workload numbers to this bench's BENCH_runtime.json entry.

    Usage::

        def test_throughput(bench_telemetry):
            ...
            bench_telemetry(steps=steps, seconds=workload_seconds,
                            obs_overhead_ratio=ratio)

    ``steps`` + ``seconds`` derive ``steps_per_sec`` (what bench-compare
    gates on); any extra keyword becomes a recorded field.
    """

    def record(steps=None, seconds=None, **extra):
        entry = _telemetry.setdefault(request.node.name, {})
        for key, value in extra.items():
            entry[key] = round(value, 6) if isinstance(value, float) else value
        if seconds is not None:
            entry["workload_seconds"] = round(seconds, 6)
        if steps is not None:
            entry["steps"] = steps
            if seconds:
                entry["steps_per_sec"] = round(steps / seconds, 1)

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _telemetry:
        return
    root = getattr(session.config, "rootpath", None)
    default = os.path.join(str(root) if root else os.getcwd(), "BENCH_runtime.json")
    out = os.environ.get("REPRO_BENCH_OUT", default)
    payload = {"schema": SCHEMA, "benches": dict(sorted(_telemetry.items()))}
    try:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as error:  # telemetry must never fail the bench run
        print(f"bench telemetry: cannot write {out}: {error}")
