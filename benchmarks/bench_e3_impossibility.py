"""E3 — the impossibility toolbox: counterexample search, certificates,
critical-configuration walk."""

from conftest import assert_rows_ok

from repro.algorithms.helpers import build_spec
from repro.analysis.commutativity import commute_or_overwrite_certificate
from repro.analysis.valency import consensus_counterexample, find_critical_configuration
from repro.core.family import HierarchyObjectSpec
from repro.experiments.suite import run_e3_impossibility
from repro.objects.register import RegisterSpec
from repro.objects.rmw import TestAndSetSpec
from repro.runtime.ops import invoke


def test_e3_full_table(benchmark):
    rows = benchmark.pedantic(run_e3_impossibility, rounds=3, iterations=1)
    assert_rows_ok(rows)


def test_e3_register_counterexample_search(benchmark):
    def naive(pid, value):
        yield invoke(f"v{pid}", "write", value)
        other = yield invoke(f"v{1 - pid}", "read")
        return value if other is None else min(value, other)

    spec = build_spec({"v0": RegisterSpec(), "v1": RegisterSpec()}, naive, ["b", "a"])
    witness = benchmark(consensus_counterexample, spec, {0: "b", 1: "a"})
    assert witness is not None


def test_e3_family_certificate(benchmark):
    spec = HierarchyObjectSpec(2, 1)
    ops = [
        ("invoke", (0, 0, "a")),
        ("invoke", (0, 1, "b")),
        ("invoke", (1, 0, "c")),
        ("invoke", (2, 0, "d")),
    ]
    report = benchmark(commute_or_overwrite_certificate, spec, ops)
    assert not report.certified  # the family's power is located


def test_e3_critical_configuration_walk(benchmark):
    def tas_consensus(pid, value):
        yield invoke(f"v{pid}", "write", value)
        lost = yield invoke("t", "test_and_set")
        if lost == 0:
            return value
        other = yield invoke(f"v{1 - pid}", "read")
        return other

    spec = build_spec(
        {"t": TestAndSetSpec(), "v0": RegisterSpec(), "v1": RegisterSpec()},
        tas_consensus,
        ["x", "y"],
    )
    report = benchmark(find_critical_configuration, spec)
    assert report is not None and report.critical
