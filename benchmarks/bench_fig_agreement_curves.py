"""Figure-style sweep: best agreement K(N) as N grows.

A theory paper has no figures, so this bench regenerates the *implicit*
figure of the result: the agreement curves of n-consensus versus the
O(n, k) levels.  The separations are where the curves split:

* every O(n, k) curve sits at or below the n-consensus curve, dipping one
  below it at each full ring (N = n(k+2) multiples);
* the level-k curve sits at or below the level-(k+1) curve, strictly
  below at N = n(k+1)+1 — the descending chain, level by level.

The printed series are recorded in EXPERIMENTS.md; the benchmark measures
the analytic sweep plus a simulated spot-check of one point per curve.
"""

from math import ceil

from repro.algorithms.set_consensus_from_family import partition_set_consensus_spec
from repro.core.power import family_agreement
from repro.runtime.scheduler import RandomScheduler

N_MAX = 30
N_VALUE = 2  # curves for consensus number 2 (the Common2 setting)


def analytic_curves():
    """Return {label: [K(N) for N in 1..N_MAX]}."""
    curves = {"2-consensus": [ceil(total / N_VALUE) for total in range(1, N_MAX + 1)]}
    for k in (1, 2, 3):
        curves[f"O(2,{k})"] = [
            family_agreement(N_VALUE, k, total) for total in range(1, N_MAX + 1)
        ]
    return curves


def simulated_spot_checks():
    """Worst observed agreement over random schedules at each curve's
    separation point."""
    results = {}
    for k in (1, 2):
        total = N_VALUE * (k + 1) + 1
        inputs = [f"v{i}" for i in range(total)]
        spec = partition_set_consensus_spec(N_VALUE, k, inputs)
        worst = max(
            len(spec.run(RandomScheduler(seed)).distinct_outputs())
            for seed in range(100)
        )
        results[f"O(2,{k}) @ N={total}"] = worst
    return results


def test_fig_analytic_curves(benchmark):
    curves = benchmark(analytic_curves)
    consensus = curves["2-consensus"]
    for k in (1, 2, 3):
        level = curves[f"O(2,{k})"]
        assert all(a <= b for a, b in zip(level, consensus))
        # Strictly better exactly at the ring sizes.
        dip = 2 * (k + 2)
        assert level[dip - 1] == consensus[dip - 1] - 1
    # Descending chain, pointwise.
    assert all(
        a <= b for a, b in zip(curves["O(2,1)"], curves["O(2,2)"])
    )
    print()
    print("N:          ", list(range(1, N_MAX + 1)))
    for label, series in curves.items():
        print(f"{label:12s}", series)


def test_fig_simulated_spot_checks(benchmark):
    results = benchmark.pedantic(simulated_spot_checks, rounds=2, iterations=1)
    assert results["O(2,1) @ N=5"] <= 2
    assert results["O(2,2) @ N=7"] <= 3
    print()
    for label, worst in results.items():
        print(f"{label}: worst observed {worst}")
