"""E9 — substrate linearizability: snapshot and universal construction."""

from conftest import assert_rows_ok

from repro.algorithms.snapshot_impl import (
    annotated_scan,
    annotated_update,
    snapshot_objects,
)
from repro.algorithms.universal import universal_spec
from repro.analysis.linearizability import is_linearizable
from repro.experiments.suite import run_e9_substrate
from repro.objects.queue_stack import QueueSpec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.runtime.history import history_from_execution
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.system import SystemSpec


def test_e9_full_table(benchmark):
    rows = benchmark.pedantic(run_e9_substrate, rounds=2, iterations=1)
    assert_rows_ok(rows)


def test_e9_snapshot_run_and_check(benchmark):
    size = 3

    def program(pid):
        def run():
            yield from annotated_update("snap", size, pid, f"v{pid}", 1)
            view = yield from annotated_scan("snap", size)
            return view

        return run

    spec = SystemSpec(
        snapshot_objects("snap", size), [program(p) for p in range(size)]
    )

    def run_and_check():
        execution = spec.run(RandomScheduler(13))
        history = history_from_execution(execution)
        return is_linearizable(history, AtomicSnapshotSpec(size))

    assert benchmark(run_and_check)


def test_e9_universal_queue_run_and_check(benchmark):
    scripts = [
        [("enqueue", ("a",)), ("dequeue", ())],
        [("enqueue", ("b",)), ("dequeue", ())],
    ]
    spec = universal_spec(QueueSpec(), scripts)

    def run_and_check():
        execution = spec.run(RandomScheduler(17))
        history = history_from_execution(execution)
        return is_linearizable(history, QueueSpec())

    assert benchmark(run_and_check)
