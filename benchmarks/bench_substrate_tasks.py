"""Substrate task costs: immediate snapshot, approximate agreement, and
the resilience auditor.

Not tied to a single experiment id — these measure the sub-consensus
toolbox that frames the paper's contribution (what IS solvable at
consensus number 1, so the reader can see exactly what the O(n, k)
family adds)."""

from repro.algorithms.approximate_agreement import approximate_agreement_spec
from repro.algorithms.helpers import inputs_dict
from repro.algorithms.immediate_snapshot import immediate_snapshot_spec
from repro.analysis.resilience import check_resilience
from repro.runtime.scheduler import RandomScheduler
from repro.tasks import KSetConsensusTask
from repro.tasks.approximate_agreement import ApproximateAgreementTask
from repro.tasks.immediate_snapshot import ImmediateSnapshotTask


def test_immediate_snapshot_run(benchmark):
    inputs = [f"x{i}" for i in range(8)]
    spec = immediate_snapshot_spec(inputs)

    def run():
        return spec.run(RandomScheduler(5))

    execution = benchmark(run)
    ImmediateSnapshotTask().validate(inputs_dict(inputs), execution.outputs)


def test_approximate_agreement_run(benchmark):
    inputs = [float(i) for i in range(8)]
    epsilon = 0.25
    spec = approximate_agreement_spec(inputs, epsilon)

    def run():
        return spec.run(RandomScheduler(5))

    execution = benchmark(run)
    ApproximateAgreementTask(epsilon).validate(
        inputs_dict(inputs), execution.outputs
    )


def test_resilience_audit(benchmark):
    from repro.algorithms.set_consensus_from_family import set_consensus_spec

    inputs = ["a", "b", "c"]
    spec = set_consensus_spec(1, 1, inputs)

    def run():
        return check_resilience(
            spec,
            KSetConsensusTask(2),
            inputs_dict(inputs),
            max_failures=2,
            max_depth=10,
        )

    report = benchmark(run)
    assert report.resilient
