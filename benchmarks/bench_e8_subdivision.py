"""E8 — the explorer vs combinatorial topology.

Measures the exhaustive enumeration of the immediate-snapshot output
complex (1 / 3 / 13 maximal simplexes for n = 1 / 2 / 3)."""

from conftest import assert_rows_ok

from repro.algorithms.immediate_snapshot import immediate_snapshot_spec
from repro.experiments.suite import run_e8_subdivision
from repro.runtime.explorer import Explorer


def test_e8_full_table(benchmark):
    rows = benchmark.pedantic(run_e8_subdivision, rounds=2, iterations=1)
    assert_rows_ok(rows)


def test_e8_two_process_complex(benchmark):
    inputs = ["x0", "x1"]

    def run():
        spec = immediate_snapshot_spec(inputs)
        explorer = Explorer(spec, max_depth=24)
        profiles = set()
        for execution in explorer.executions():
            profiles.add(tuple(execution.outputs[p] for p in range(2)))
        return profiles

    profiles = benchmark(run)
    assert len(profiles) == 3
