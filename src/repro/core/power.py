"""Synchronization-power descriptors.

Two granularities are provided:

* :class:`SetConsensusPower` — a point (m, j) of the classical
  set-consensus partial order: the ability to solve (m, j)-set consensus.
  Consensus number n is the point (n, 1).  The order is genuinely partial —
  which is how infinitely many inequivalent classes can share one consensus
  number.

* :class:`PowerProfile` — the finer, per-object *agreement profile*:
  ``profile(c)`` is the best (smallest) number of distinct decisions a
  cohort of ``c`` processes sharing **one** object (plus registers) can be
  held to.  System-level power then follows from the **cover theorem**
  (Borowsky–Gafni / Chaudhuri–Reiners): with any number of object copies,
  N processes achieve exactly

      K(N) = min over partitions N = c_1 + ... + c_t  of  sum profile(c_i)

  computed here by dynamic programming (:func:`cover_agreement`).  For pure
  (m, j)-set-consensus objects the DP provably collapses to the closed form
  ``j * floor(N/m) + min(N mod m, j)`` of :mod:`repro.core.theorem` — a
  property the tests verify.  The paper's deterministic objects are exactly
  the objects whose profiles are *not* realized by any single (m, j) point,
  which is why consensus number alone cannot classify them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.core.theorem import is_implementable


@dataclass(frozen=True)
class SetConsensusPower:
    """The power to solve (m, j)-set consensus (at most j distinct
    decisions among at most m participants)."""

    m: int
    j: int

    def __post_init__(self):
        if not 1 <= self.j <= self.m:
            raise ValueError(f"need 1 <= j <= m, got (m={self.m}, j={self.j})")

    @property
    def ratio(self) -> Fraction:
        """Agreement ratio j/m; smaller is stronger."""
        return Fraction(self.j, self.m)

    # ------------------------------------------------------------------
    # Partial order
    # ------------------------------------------------------------------
    def implements(self, other: "SetConsensusPower") -> bool:
        """Can objects of this power implement ``other``'s task wait-free
        (with registers)?"""
        return is_implementable(other.m, other.j, self.m, self.j)

    def stronger_than(self, other: "SetConsensusPower") -> bool:
        """Strictly stronger: implements ``other`` but not vice versa."""
        return self.implements(other) and not other.implements(self)

    def equivalent(self, other: "SetConsensusPower") -> bool:
        return self.implements(other) and other.implements(self)

    def comparable(self, other: "SetConsensusPower") -> bool:
        return self.implements(other) or other.implements(self)

    # ------------------------------------------------------------------
    # Named points
    # ------------------------------------------------------------------
    @staticmethod
    def consensus(n: int) -> "SetConsensusPower":
        """The power of the n-consensus object: (n, 1)."""
        return SetConsensusPower(n, 1)

    @staticmethod
    def registers(n: int = 2) -> "SetConsensusPower":
        """Register power: (n, n) — no agreement beyond the trivial."""
        return SetConsensusPower(n, n)

    @staticmethod
    def of_family_task(n: int, k: int) -> "SetConsensusPower":
        """The (m, j)-set-consensus *task* one fully-occupied O(n, k)
        solves: (n(k+2), k+1).  Note the object is strictly stronger than
        the pure (n(k+2), k+1)-SC object — partially-occupied cohorts still
        enjoy per-group n-consensus (see :func:`family_profile`)."""
        if n < 1 or k < 1:
            raise ValueError("need n >= 1, k >= 1")
        return SetConsensusPower(n * (k + 2), k + 1)

    def __str__(self) -> str:
        return f"({self.m},{self.j})-SC"


def antichain(points: Iterable[SetConsensusPower]) -> List[SetConsensusPower]:
    """Filter ``points`` down to an antichain (pairwise incomparable,
    keeping the first of any comparable pair)."""
    kept: List[SetConsensusPower] = []
    for point in points:
        if all(not point.comparable(existing) for existing in kept):
            kept.append(point)
    return kept


def chain_is_strictly_increasing(points: Sequence[SetConsensusPower]) -> bool:
    """True iff each point is strictly stronger than its predecessor."""
    return all(b.stronger_than(a) for a, b in zip(points, points[1:]))


# ----------------------------------------------------------------------
# Agreement profiles and the cover theorem
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PowerProfile:
    """Per-object agreement profile.

    Attributes
    ----------
    name:
        Label used in reports.
    max_cohort:
        Largest cohort one object instance can serve (its port/proposal
        budget).
    profile:
        ``profile(c) -> int`` for ``1 <= c <= max_cohort``: the best
        agreement for a cohort of c processes sharing one instance.
    """

    name: str
    max_cohort: int
    profile: Callable[[int], int]

    def __call__(self, cohort: int) -> int:
        if not 1 <= cohort <= self.max_cohort:
            raise ValueError(
                f"{self.name}: cohort {cohort} outside [1, {self.max_cohort}]"
            )
        value = self.profile(cohort)
        if not 1 <= value <= cohort:
            raise AssertionError(
                f"{self.name}: profile({cohort}) = {value} is not in [1, {cohort}]"
            )
        return value


def set_consensus_profile(m: int, j: int) -> PowerProfile:
    """Profile of the pure (m, j)-set-consensus object: a cohort of c can
    be held to min(c, j) decisions (c proposals, at most j adopted)."""
    return PowerProfile(
        name=f"({m},{j})-SC-object",
        max_cohort=m,
        profile=lambda c: min(c, j),
    )


def n_consensus_profile(n: int) -> PowerProfile:
    """Profile of the n-bounded consensus object: any cohort of c <= n
    agrees on one value."""
    return PowerProfile(name=f"{n}-consensus-object", max_cohort=n, profile=lambda c: 1)


def register_profile(max_cohort: int = 64) -> PowerProfile:
    """Registers add no agreement: a cohort of c can be forced to c
    distinct decisions."""
    return PowerProfile(name="register", max_cohort=max_cohort, profile=lambda c: c)


def family_profile(n: int, k: int) -> PowerProfile:
    """Profile of the reconstructed O(n, k).

    A cohort of ``c`` processes on one object chooses between two
    strategies:

    * *concentrate*: occupy ``ceil(c/n)`` groups and use each as an
      n-consensus instance — ``ceil(c/n)`` decisions;
    * *ring-spread* (only useful once ``c > n(k+1)``): occupy **all**
      ``k+2`` groups; ring adoption then guarantees at most ``k+1``
      decisions in every execution (the last-installed group's winner is
      never decided; if not all groups get installed, the installed count
      itself is at most ``k+1``).

    Hence ``profile(c) = ceil(c/n)`` for ``c <= n(k+1)`` and ``k+1``
    beyond.  Tightness of the concentrate case is the adversary that
    schedules occupied groups one after another so every install snapshots
    an empty successor.
    """
    groups = k + 2
    ports = n * groups

    def profile(c: int) -> int:
        if c > n * (k + 1):
            return k + 1
        return ceil(c / n)

    return PowerProfile(name=f"O({n},{k})", max_cohort=ports, profile=profile)


def cover_agreement(n_processes: int, profiles: Sequence[PowerProfile]) -> int:
    """Best agreement for ``n_processes`` processes given unlimited copies
    of each profiled object type (plus registers), by the cover theorem:
    minimize the summed profile over all partitions into cohorts.

    Dynamic program over process counts; O(N * sum(max_cohort)).
    """
    if n_processes < 0:
        raise ValueError("process count must be non-negative")
    if n_processes == 0:
        return 0
    if not profiles:
        raise ValueError("need at least one object profile (registers count)")
    infinity = n_processes + 1
    best: List[int] = [0] + [infinity] * n_processes
    for covered in range(1, n_processes + 1):
        for kind in profiles:
            top = min(covered, kind.max_cohort)
            for cohort in range(1, top + 1):
                candidate = best[covered - cohort] + kind(cohort)
                if candidate < best[covered]:
                    best[covered] = candidate
    # Registers always allow the trivial cover (one process per cohort).
    return min(best[n_processes], n_processes)


def family_agreement(n: int, k: int, n_processes: int) -> int:
    """Best agreement for ``n_processes`` with unlimited O(n, k) copies.

    Closed form of the cover DP: fill ``floor(N / n(k+2))`` whole rings
    (k+1 decisions each); a remainder ``r`` either ring-spreads on one more
    object (k+1, worthwhile once ``r > n(k+1)``) or concentrates into
    n-consensus groups (``ceil(r/n)``):

        K(N) = (k+1) floor(N / n(k+2)) + min(ceil(r / n), k+1 if r > n(k+1))

    The tests verify this agrees with :func:`cover_agreement` on
    :func:`family_profile` across a parameter sweep.
    """
    if n_processes < 0:
        raise ValueError("process count must be non-negative")
    ports = n * (k + 2)
    full, remainder = divmod(n_processes, ports)
    if remainder > n * (k + 1):
        tail = k + 1
    else:
        tail = ceil(remainder / n)
    return full * (k + 1) + tail
