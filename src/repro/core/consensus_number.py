"""Consensus-number accounting for the library's object zoo.

The consensus number of an object is the largest n for which n processes
can solve consensus wait-free from copies of the object and registers.
This module records the classical values (Herlihy 1991 and successors) for
every spec type in the library, exposes them through a single lookup, and
documents which ones are *demonstrated* in this repository versus *cited*.

* Demonstrated lower bounds: a protocol in :mod:`repro.algorithms` solves
  consensus for n processes, checked under all schedules (experiment E1).
* Demonstrated upper bounds: the automated bivalence argument of
  :mod:`repro.analysis.valency` certifies impossibility for the read/write
  and commuting cases; the remaining upper bounds are cited.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Union

from repro.core.family import HierarchyObjectSpec
from repro.errors import ReproError
from repro.objects.base import ObjectSpec
from repro.objects.consensus_object import NConsensusSpec
from repro.objects.counter import CounterSpec, DoorwaySpec
from repro.objects.queue_stack import QueueSpec, StackSpec
from repro.objects.register import ArraySpec, RegisterSpec
from repro.objects.rmw import (
    CompareAndSwapSpec,
    FetchAndAddSpec,
    SwapSpec,
    TestAndSetSpec,
)
from repro.objects.generic_rmw import GenericRMWSpec
from repro.objects.recoverable import (
    PersistentRegisterSpec,
    RecoverableTestAndSetSpec,
)
from repro.objects.set_consensus import SetConsensusSpec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.objects.sticky import StickyBitSpec, StickyRegisterSpec

ConsensusNumber = Union[int, float]  # math.inf for universal objects

#: Classical consensus numbers by spec type.  Entries are either a number
#: or a callable refining the number from the instance's parameters.
KNOWN_CONSENSUS_NUMBERS: Dict[type, Any] = {
    RegisterSpec: 1,
    ArraySpec: 1,
    CounterSpec: 1,
    DoorwaySpec: 1,
    AtomicSnapshotSpec: 1,
    TestAndSetSpec: 2,
    # Recoverable variants keep their base objects' synchronization
    # power: durability changes the fault model, not the consensus
    # hierarchy (Golab–Ramaraju recoverable mutual exclusion line).
    RecoverableTestAndSetSpec: 2,
    PersistentRegisterSpec: 1,
    SwapSpec: 2,
    FetchAndAddSpec: 2,
    QueueSpec: 2,
    StackSpec: 2,
    CompareAndSwapSpec: math.inf,
    StickyBitSpec: math.inf,
    StickyRegisterSpec: math.inf,
    NConsensusSpec: lambda spec: spec.n,
    # (m, j)-set consensus objects solve consensus for floor(m/j) processes
    # grouped on one object only when j = 1; in general their consensus
    # number is 1 for j >= 2 (set agreement does not decide a unique value)
    # — but (m, 1) is m-consensus.
    SetConsensusSpec: lambda spec: spec.m if spec.j == 1 else 1,
    # Non-trivial RMW families: 2 for commute-or-overwrite families
    # (Herlihy's RMW classification).  Mixed families can be stronger;
    # the recorded value is the classification-theorem default.
    GenericRMWSpec: 2,
    # The paper's family: consensus number n at every level k.
    HierarchyObjectSpec: lambda spec: spec.n,
}


def consensus_number_of(spec: ObjectSpec) -> ConsensusNumber:
    """Consensus number of an object spec instance.

    Raises :class:`ReproError` for unknown spec types rather than guessing.
    """
    for klass in type(spec).__mro__:
        if klass in KNOWN_CONSENSUS_NUMBERS:
            entry = KNOWN_CONSENSUS_NUMBERS[klass]
            return entry(spec) if callable(entry) else entry
    raise ReproError(
        f"no recorded consensus number for {type(spec).__name__}; "
        "register it in KNOWN_CONSENSUS_NUMBERS"
    )


def is_sub_consensus(spec: ObjectSpec, n: int) -> bool:
    """True iff the object cannot solve consensus for more than n
    processes (consensus number <= n)."""
    return consensus_number_of(spec) <= n
