"""The Common2 refutation.

*Common2* (Afek–Weisberger–Weisman; Afek–Gafni–Morrison) is the class of
objects wait-free implementable, for any number of processes, from
2-consensus objects and registers; queue, stack, swap, test-and-set are its
classical members.  The conjecture was that **every** deterministic object
of consensus number 2 belongs to Common2 — i.e. that level 2 of the
consensus hierarchy is one equivalence class.

The paper refutes it.  In this reconstruction the counterexample is any
O(2, k): its consensus number is 2, yet in a system of ``N = 2(k+2)``
processes it solves (N, k+1)-set consensus, while 2-consensus objects (and
hence every Common2 member) allow only ``max_agreement(N, 2, 1) =
ceil(N/2) = k+2`` — so no implementation of O(2, k) from 2-consensus
objects and registers can exist (it would contradict the set-consensus
implementability theorem).

This module packages the arithmetic certificate; the executable
demonstration (run both protocols, watch the adversary force k+2 values
against 2-consensus but never more than k+1 against O(2, k)) lives in
``examples/common2_refutation.py`` and experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.family import FamilyMember
from repro.core.theorem import max_agreement


@dataclass(frozen=True)
class Common2Refutation:
    """Arithmetic certificate that O(2, k) lies outside Common2."""

    k: int
    #: The counterexample object.
    member: FamilyMember
    #: System size of the separation.
    system_size: int
    #: Agreement O(2, k) achieves there (k + 1).
    family_agreement: int
    #: Best agreement 2-consensus objects allow there (k + 2).
    common2_agreement: int

    @property
    def holds(self) -> bool:
        """The refutation is valid iff the family strictly beats every
        Common2 member's power."""
        return self.family_agreement < self.common2_agreement

    def statement(self) -> str:
        return (
            f"O(2, {self.k}) has consensus number 2, yet at N = "
            f"{self.system_size} it achieves {self.family_agreement}-set "
            f"consensus while 2-consensus objects allow only "
            f"{self.common2_agreement}; hence O(2, {self.k}) is not "
            f"implementable from 2-consensus objects and registers, and "
            f"Common2 does not contain all consensus-number-2 objects."
        )


def common2_refutation(k: int = 1) -> Common2Refutation:
    """Build the certificate for the counterexample O(2, k)."""
    if k < 1:
        raise ValueError("need k >= 1")
    member = FamilyMember(2, k)
    system_size = member.ports  # 2 (k + 2)
    certificate = Common2Refutation(
        k=k,
        member=member,
        system_size=system_size,
        family_agreement=member.task.j,
        common2_agreement=max_agreement(system_size, 2, 1),
    )
    if not certificate.holds:
        raise AssertionError(f"Common2 refutation arithmetic failed at k={k}")
    return certificate


def refutation_series(k_max: int) -> List[Common2Refutation]:
    """One refutation certificate per level — infinitely many distinct
    consensus-number-2 objects outside Common2 (truncated at ``k_max``)."""
    return [common2_refutation(k) for k in range(1, k_max + 1)]
