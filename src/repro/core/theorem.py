"""The set-consensus implementability theorem.

The separation engine of the paper (stated there with Borowsky–Gafni /
Chaudhuri–Reiners machinery; quoted by the follow-up literature as:
*for n > k and m > j, there is a wait-free implementation of (n, k)-set
consensus from (m, j)-set-consensus objects and registers in a system of n
or more processes iff* — in the canonical closed form —

    k >= j * floor(n / m) + min(n mod m, j).

Reading: with N processes split into full cohorts of m plus a remainder
``r = n mod m``, each full cohort can be held to j distinct decisions, the
remainder cohort to ``min(r, j)``, and the adversary can run cohorts
disjointly so no construction does better.  The positive direction is the
explicit partition protocol in
:mod:`repro.algorithms.set_consensus_transfer`; the negative direction is
the BG-simulation lower bound, exercised here via the adversarial-schedule
witnesses in the experiments.

This module is pure arithmetic — the single source of truth every
hierarchy/separation claim in the library reduces to.
"""

from __future__ import annotations

from dataclasses import dataclass


def max_agreement(n_processes: int, m: int, j: int) -> int:
    """Best (smallest) agreement achievable for ``n_processes`` processes
    from (m, j)-set-consensus objects and registers.

    Returns the minimal ``k`` such that (n_processes, k)-set consensus is
    wait-free solvable: ``j * floor(n/m) + min(n mod m, j)``.
    """
    if n_processes < 0:
        raise ValueError("process count must be non-negative")
    if not 1 <= j <= m:
        raise ValueError(f"need 1 <= j <= m, got (m={m}, j={j})")
    full, remainder = divmod(n_processes, m)
    agreement = full * j + min(remainder, j)
    assert agreement <= n_processes
    return agreement


def min_agreement_needed(n_processes: int, m: int, j: int) -> int:
    """Alias of :func:`max_agreement` reading in the other direction: the
    smallest k for which (n_processes, k) is implementable from (m, j)."""
    return max_agreement(n_processes, m, j)


def is_implementable(n: int, k: int, m: int, j: int) -> bool:
    """Can (n, k)-set consensus be implemented wait-free from
    (m, j)-set-consensus objects and registers, for n (or more) processes?

    The degenerate cases are resolved the standard way: ``k >= n`` is
    register-solvable (everyone decides its own input), and a task nobody
    participates in is trivially solvable.
    """
    if n < 1 or k < 1:
        raise ValueError(f"need n, k >= 1, got (n={n}, k={k})")
    if k >= n:
        return True
    return k >= max_agreement(n, m, j)


@dataclass(frozen=True)
class ImplementabilityConditions:
    """The theorem's condition set in the paper's phrasing, for
    cross-validation against the closed form.

    The paper states the criterion as the conjunction of ``k >= j``·[when
    n >= m], the ratio condition ``n/k <= m/j`` is implied, and the
    either/or cohort condition; the canonical closed form above is
    equivalent (asserted by :func:`implementability_conditions` and
    property-tested in ``tests/core/test_theorem.py``).
    """

    n: int
    k: int
    m: int
    j: int
    needed: int
    holds: bool

    def explain(self) -> str:
        full, remainder = divmod(self.n, self.m)
        return (
            f"({self.n}, {self.k}) from ({self.m}, {self.j}): "
            f"{full} full cohorts x {self.j} + remainder "
            f"min({remainder}, {self.j}) = {self.needed} needed; "
            f"{'implementable' if self.holds else 'impossible'} with k={self.k}"
        )


def implementability_conditions(n: int, k: int, m: int, j: int) -> ImplementabilityConditions:
    """Structured verdict with the cohort arithmetic spelled out."""
    needed = max_agreement(n, m, j) if k < n else min(k, n)
    holds = is_implementable(n, k, m, j)
    # Cross-check the either/or phrasing against the closed form.
    full, remainder = divmod(n, m)
    either_or = (
        k >= j * full + remainder if remainder <= j else k >= j * (full + 1)
    )
    if k < n:
        assert either_or == holds, "paper phrasing diverged from closed form"
    return ImplementabilityConditions(n=n, k=k, m=m, j=j, needed=needed, holds=holds)


def strictly_stronger(m1: int, j1: int, m2: int, j2: int) -> bool:
    """Is the (m1, j1)-set-consensus class *strictly* stronger than the
    (m2, j2) class?  (Implements it, and is not implemented by it.)"""
    forward = is_implementable(m2, j2, m1, j1)
    backward = is_implementable(m1, j1, m2, j2)
    return forward and not backward


def equivalent_power(m1: int, j1: int, m2: int, j2: int) -> bool:
    """Mutual implementability of the two set-consensus classes."""
    return is_implementable(m2, j2, m1, j1) and is_implementable(m1, j1, m2, j2)
