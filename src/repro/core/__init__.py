"""The paper's primary contribution.

"Deterministic Objects: Life Beyond Consensus" (Afek–Ellen–Gafni, PODC 2016)
shows the consensus hierarchy is not a complete map of deterministic
objects: for every n >= 2 there is an infinite sequence of deterministic
objects, all of consensus number n, with strictly ordered, pairwise
inequivalent synchronization power.  This package holds:

* :mod:`repro.core.family` — the deterministic O(n, k) object family
  (reconstructed sequential specification; see DESIGN.md for the caveat);
* :mod:`repro.core.theorem` — the set-consensus implementability theorem,
  the arithmetic engine behind every separation;
* :mod:`repro.core.power` — synchronization-power descriptors: (m, j)
  points, per-object agreement profiles, and the cover theorem;
* :mod:`repro.core.hierarchy` — the infinite hierarchy as an explicit
  graph, with per-level strictness witnesses;
* :mod:`repro.core.common2` — the Common2 refutation at consensus number 2;
* :mod:`repro.core.consensus_number` — consensus-number accounting for the
  library's object zoo.
"""

from repro.core.family import FamilyMember, HierarchyObjectSpec
from repro.core.power import (
    PowerProfile,
    SetConsensusPower,
    antichain,
    chain_is_strictly_increasing,
    cover_agreement,
    family_agreement,
    family_profile,
    n_consensus_profile,
    register_profile,
    set_consensus_profile,
)
from repro.core.theorem import (
    equivalent_power,
    implementability_conditions,
    is_implementable,
    max_agreement,
    min_agreement_needed,
    strictly_stronger,
)
from repro.core.hierarchy import (
    HierarchyLevel,
    equivalence_classes,
    family_chain,
    family_hierarchy_graph,
    set_consensus_lattice,
    strictness_witness,
)
from repro.core.common2 import (
    Common2Refutation,
    common2_refutation,
    refutation_series,
)
from repro.core.consensus_number import (
    KNOWN_CONSENSUS_NUMBERS,
    consensus_number_of,
    is_sub_consensus,
)
from repro.core.ratio import (
    anchor_position,
    asymptotic_ratio,
    best_level_for,
    ratio_frontier,
    solves_ratio_task,
)
from repro.core.open_questions import (
    consensus_number_one_frontier,
    open_region_summary,
    power_fingerprint,
    ratio_gap,
    separation_is_tight,
)

__all__ = [
    "HierarchyObjectSpec",
    "FamilyMember",
    "SetConsensusPower",
    "PowerProfile",
    "antichain",
    "chain_is_strictly_increasing",
    "cover_agreement",
    "family_agreement",
    "family_profile",
    "n_consensus_profile",
    "register_profile",
    "set_consensus_profile",
    "max_agreement",
    "min_agreement_needed",
    "is_implementable",
    "implementability_conditions",
    "strictly_stronger",
    "equivalent_power",
    "HierarchyLevel",
    "family_chain",
    "family_hierarchy_graph",
    "set_consensus_lattice",
    "equivalence_classes",
    "strictness_witness",
    "Common2Refutation",
    "common2_refutation",
    "refutation_series",
    "KNOWN_CONSENSUS_NUMBERS",
    "consensus_number_of",
    "is_sub_consensus",
    "asymptotic_ratio",
    "solves_ratio_task",
    "best_level_for",
    "ratio_frontier",
    "anchor_position",
    "power_fingerprint",
    "consensus_number_one_frontier",
    "ratio_gap",
    "separation_is_tight",
    "open_region_summary",
]
