"""The set-consensus ratio implications.

The paper's implications section phrases the family's power as a *ratio*:
which (N, M)-set-consensus tasks do copies of O(n, k) solve?  With the
cover closed form this is a computation, and the asymptotics explain the
hierarchy at a glance:

* unlimited O(n, k) copies drive N processes to
  ``K_k(N) = (k+1)·⌊N / n(k+2)⌋ + tail`` distinct decisions — an
  **asymptotic agreement ratio** of ``(k+1) / (n(k+2))``;
* n-consensus objects alone give ratio ``1/n``; registers give 1;
* the level ratios are strictly decreasing in falling k and in rising n,
  and ``(k+1)/(n(k+2)) > 1/(n+1)`` always — every level stays below
  (n+1)-consensus territory, matching consensus number n.

:func:`solves_ratio_task` answers the concrete question "(N, M) from
O(n, k)?", :func:`best_level_for` inverts it (the weakest level that
still suffices — weakest = largest k, the cheapest object in the
descending chain), and :func:`ratio_frontier` tabulates the landscape.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from repro.core.power import family_agreement


def asymptotic_ratio(n: int, k: int) -> Fraction:
    """lim K_k(N)/N — the per-process agreement density of O(n, k)."""
    if n < 1 or k < 1:
        raise ValueError("need n >= 1, k >= 1")
    return Fraction(k + 1, n * (k + 2))


def solves_ratio_task(n: int, k: int, participants: int, agreement: int) -> bool:
    """Can copies of O(n, k) (plus registers) solve (participants,
    agreement)-set consensus?"""
    if participants < 1 or agreement < 1:
        raise ValueError("need positive task parameters")
    if agreement >= participants:
        return True  # register-trivial
    return family_agreement(n, k, participants) <= agreement


def best_level_for(
    n: int, participants: int, agreement: int, k_max: int = 64
) -> Optional[int]:
    """The largest (weakest, cheapest) level k <= k_max whose objects
    still solve (participants, agreement)-set consensus; ``None`` if even
    k = 1 cannot.  Monotonicity (the chain descends in k) makes the
    scan well-defined."""
    if agreement >= participants:
        return k_max
    best = None
    for k in range(1, k_max + 1):
        if solves_ratio_task(n, k, participants, agreement):
            best = k
        else:
            break  # weaker levels only do worse (chain is monotone)
    return best


@dataclass(frozen=True)
class RatioPoint:
    """One line of the frontier table."""

    n: int
    k: int
    ratio: Fraction
    example_task: str

    def __str__(self) -> str:
        return (
            f"O({self.n},{self.k}): ratio {self.ratio} "
            f"(e.g. solves {self.example_task})"
        )


def ratio_frontier(n: int, k_max: int) -> List[RatioPoint]:
    """The asymptotic ratios of levels 1..k_max at consensus number n,
    each with a concrete witness task."""
    points = []
    for k in range(1, k_max + 1):
        ports = n * (k + 2)
        points.append(
            RatioPoint(
                n=n,
                k=k,
                ratio=asymptotic_ratio(n, k),
                example_task=f"({ports}, {k + 1})-set consensus",
            )
        )
    return points


def anchor_position(n: int, k: int) -> dict:
    """The level's asymptotic ratio relative to its consensus anchors.

    ``(k+1)/(n(k+2)) < 1/n`` always — every level is asymptotically
    strictly stronger than n-consensus (the paper's headline, in ratio
    form).  Against the *next* anchor the reconstruction has a documented
    crossover: ``ratio > 1/(n+1)`` iff ``k > n - 1``; for small k the
    descending chain's strongest levels achieve agreement *density*
    better than (n+1)-consensus while still having consensus number n
    (density and exact-consensus power are different axes — the paper's
    ascending family stayed above 1/(n+1) throughout, so this is one more
    place the reconstruction's constants differ while the classification
    moral is unchanged).

    Returns the three fractions plus the comparison verdict.
    """
    ratio = asymptotic_ratio(n, k)
    lower = Fraction(1, n + 1)
    upper = Fraction(1, n)
    assert ratio < upper, (ratio, upper)
    return {
        "(n+1)-consensus": lower,
        "family": ratio,
        "n-consensus": upper,
        "above_next_anchor": ratio > lower,
    }
