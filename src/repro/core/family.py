"""The deterministic object family O(n, k).

The paper constructs, for every n >= 2, an infinite sequence of
deterministic objects of consensus number n with strictly ordered,
pairwise inequivalent synchronization power — proving that consensus
number alone cannot classify deterministic objects.  The exact sequential
specification from the paper is not recoverable (see the mismatch notice
in DESIGN.md); this module implements the documented *reconstruction*,
which realizes the same phenomenon: an infinite strict chain of
deterministic objects all of consensus number n.

Reconstruction
--------------
O(n, k) is a one-shot, oblivious, deterministic object with
``m = n * (k + 2)`` ports arranged as a ring of ``G = k + 2`` groups of
``n`` ports each.  Per group ``g`` the object keeps two cells, both fixed
forever at the group's *install* (first write):

* ``F[g]`` — the group winner: the value of the group's first invocation;
* ``S[g]`` — the *successor snapshot*: the value of ``F[(g+1) mod G]`` at
  the moment group ``g`` was installed (``None`` if the successor group
  was then untouched).

The single operation ``invoke(g, s, v)`` (group ``g``, slot ``s`` —
together the one-shot port — and value ``v != None``) installs the group
if untouched and returns ``(F[g], S[g])``.  Because both cells freeze at
install time, every member of a group receives the *same* response: a
group behaves like a single WRN-style super-invocation (performed by its
first writer) whose result is fanned out to n processes by built-in
group consensus.  That fan-out is exactly what no combination of weaker
objects can forge, and it is where the family's extra power lives.

Derived facts (each validated executably; see EXPERIMENTS.md):

* **n-consensus** (consensus number >= n): up to n processes share one
  group; each learns ``F[g]``, the value of the group's first writer.
* **Ring adoption** — decide ``S[g]`` if it is not ``None``, else
  ``F[g]``: in every execution in which every group gets installed, the
  *last-installed* group's winner is never decided (its members see a
  non-``None`` snapshot and adopt; its predecessor's snapshot was taken
  earlier and misses it); if only ``t < G`` groups are installed, at most
  ``t`` winners exist at all.  Either way: **at most k+1 distinct
  decisions** — (n(k+2), k+1)-set consensus, strictly better than the
  ceil(N/n) = k+2 agreement n-consensus objects allow at N = n(k+2).
  For n = 2 this is the executable Common2 refutation.
* **An infinite strict chain at consensus number n.**  The per-object
  agreement profile is ``profile(c) = ceil(c/n)`` for ``c <= n(k+1)`` and
  ``k+1`` beyond (:func:`repro.core.power.family_profile`); the cover
  theorem turns profiles into system-level agreement ``K_k(N)``
  (:func:`repro.core.power.family_agreement`).  One checks ``K_k <=
  K_{k+1}`` pointwise, strict at ``N = n(k+1)+1`` (k+1 vs k+2) — so **the
  chain descends in k**: O(n, k) is strictly stronger than O(n, k+1), and
  O(n, k+1) cannot implement O(n, k) in a system of ``nk + n + 1``
  processes.

Indexing note: the paper presents its chain ascending in k (O(n, k+1)
stronger, separation at system size nk+n+k); the reconstruction's chain
descends in k (O(n, k) stronger, separation at system size nk+n+1).  The
two presentations are order-isomorphic — both exhibit infinitely many
pairwise-inequivalent deterministic objects of consensus number n, which
is the theorem being reproduced.

Ports are one-shot: reusing a port is misuse (raise, or hang with
``hang_on_misuse=True``).  A multi-shot variant (``one_shot=False``) is
provided for substrate experiments; all hierarchy claims are stated for
the one-shot object, mirroring the one-shot discipline the literature uses
for task-derived objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple

from repro.errors import IllegalOperationError
from repro.objects.base import DeterministicObjectSpec
from repro.core.power import (
    PowerProfile,
    SetConsensusPower,
    family_agreement,
    family_profile,
)

#: State: (group winners F, successor snapshots S, used ports).
#: ``None`` marks an untouched group / empty snapshot.
FamilyState = Tuple[Tuple[Any, ...], Tuple[Any, ...], FrozenSet[Tuple[int, int]]]


class HierarchyObjectSpec(DeterministicObjectSpec):
    """The deterministic object O(n, k) (reconstructed; see module docs).

    Parameters
    ----------
    n:
        Group size — the object's consensus number.
    k:
        Hierarchy level (k >= 1).  The object has ``k + 2`` groups and
        ``n * (k + 2)`` one-shot ports, and solves
        ``(n(k+2), k+1)``-set consensus.
    one_shot:
        Enforce the one-port-one-use discipline (default).  All hierarchy
        claims are for the one-shot object.
    hang_on_misuse:
        Misuse blocks the caller forever instead of raising.
    """

    def __init__(
        self,
        n: int,
        k: int,
        one_shot: bool = True,
        hang_on_misuse: bool = False,
    ):
        if n < 1:
            raise ValueError("O(n, k) needs n >= 1")
        if k < 1:
            raise ValueError("O(n, k) needs k >= 1 (k + 2 >= 3 ring groups)")
        self.n = n
        self.k = k
        self.one_shot = one_shot
        self.hang_on_misuse = hang_on_misuse

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def groups(self) -> int:
        """Number of ring groups, G = k + 2."""
        return self.k + 2

    @property
    def ports(self) -> int:
        """Total number of one-shot ports, m = n (k + 2)."""
        return self.n * self.groups

    def port(self, index: int) -> Tuple[int, int]:
        """Canonical enumeration of ports: index -> (group, slot)."""
        if not 0 <= index < self.ports:
            raise ValueError(f"port index {index} out of range [0, {self.ports})")
        return divmod(index, self.n)

    # ------------------------------------------------------------------
    # Sequential specification
    # ------------------------------------------------------------------
    def initial_state(self) -> FamilyState:
        empty = (None,) * self.groups
        return (empty, empty, frozenset())

    def do_invoke(
        self, state: FamilyState, group: int, slot: int, value: Any
    ) -> Tuple[Any, FamilyState]:
        winners, snapshots, used = state
        if value is None:
            raise IllegalOperationError("cannot invoke with None (reserved as ⊥)")
        if not (isinstance(group, int) and 0 <= group < self.groups):
            raise IllegalOperationError(
                f"group {group!r} out of range [0, {self.groups})"
            )
        if not (isinstance(slot, int) and 0 <= slot < self.n):
            raise IllegalOperationError(f"slot {slot!r} out of range [0, {self.n})")
        if self.one_shot and (group, slot) in used:
            raise IllegalOperationError(
                f"one-shot port ({group}, {slot}) used twice"
            )
        if winners[group] is None:
            # Install: freeze the winner and the successor snapshot.
            successor_now = winners[(group + 1) % self.groups]
            winners = winners[:group] + (value,) + winners[group + 1:]
            snapshots = snapshots[:group] + (successor_now,) + snapshots[group + 1:]
        response = (winners[group], snapshots[group])
        return response, (winners, snapshots, used | {(group, slot)})


@dataclass(frozen=True)
class FamilyMember:
    """Descriptor of one hierarchy level: parameters and derived facts.

    This is the "data sheet" of O(n, k) used by the hierarchy graph, the
    experiments, and the documentation — everything that is a pure function
    of (n, k).
    """

    n: int
    k: int

    def spec(self, one_shot: bool = True, hang_on_misuse: bool = False) -> HierarchyObjectSpec:
        """Fresh object spec for this level."""
        return HierarchyObjectSpec(
            self.n, self.k, one_shot=one_shot, hang_on_misuse=hang_on_misuse
        )

    @property
    def groups(self) -> int:
        return self.k + 2

    @property
    def ports(self) -> int:
        return self.n * (self.k + 2)

    @property
    def consensus_number(self) -> int:
        """Consensus number n (lower bound demonstrated executably; upper
        bound per the paper — see DESIGN.md reconstruction caveat)."""
        return self.n

    @property
    def task(self) -> SetConsensusPower:
        """The (m, j)-set-consensus task a fully occupied object solves:
        (n(k+2), k+1)."""
        return SetConsensusPower.of_family_task(self.n, self.k)

    def profile(self) -> PowerProfile:
        """Per-object agreement profile (see
        :func:`repro.core.power.family_profile`)."""
        return family_profile(self.n, self.k)

    def agreement(self, n_processes: int) -> int:
        """Best system-wide agreement for ``n_processes`` processes with
        unlimited copies of this object (cover closed form)."""
        return family_agreement(self.n, self.k, n_processes)

    @property
    def weaker_neighbor(self) -> "FamilyMember":
        """The next-weaker level of the chain, O(n, k+1)."""
        return FamilyMember(self.n, self.k + 1)

    @property
    def separation_system_size(self) -> int:
        """Smallest system size witnessing that O(n, k+1) cannot implement
        this level: N = n(k+1) + 1, where this level achieves agreement
        k+1 (one ring-spread cohort) but O(n, k+1) only k+2.  Compare the
        paper's ascending-presentation constant nk + n + k."""
        return self.n * (self.k + 1) + 1

    @property
    def paper_separation_system_size(self) -> int:
        """The paper's separation constant for its ascending chain:
        nk + n + k."""
        return self.n * self.k + self.n + self.k

    def describe(self) -> str:
        """One-paragraph data sheet."""
        return (
            f"O({self.n}, {self.k}): deterministic, one-shot, "
            f"{self.groups} groups x {self.n} slots = {self.ports} ports; "
            f"consensus number {self.consensus_number}; solves "
            f"{self.task} when fully occupied; strictly stronger than "
            f"O({self.n}, {self.k + 1}), separated in a system of "
            f"{self.separation_system_size} processes "
            f"(agreement {self.k + 1} vs {self.k + 2})."
        )
