"""The infinite hierarchy, made explicit.

This module turns the paper's headline — *infinitely many pairwise
inequivalent deterministic objects at every consensus level n >= 2* — into
data: per-level strictness witnesses (the arithmetic certificate of each
separation) and :mod:`networkx` graphs of the implementability order, both
for the O(n, k) family and for the classical (m, j)-set-consensus lattice
it is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import networkx as nx

from repro.core.family import FamilyMember
from repro.core.power import SetConsensusPower, family_agreement
from repro.core.theorem import is_implementable


@dataclass(frozen=True)
class HierarchyLevel:
    """One rung of the chain with its separation certificate attached."""

    member: FamilyMember
    #: System size at which this level beats the next-weaker one.
    witness_system_size: int
    #: Agreement this level achieves there.
    agreement_here: int
    #: Agreement the next-weaker level achieves there (strictly worse).
    agreement_weaker: int

    def certificate(self) -> str:
        m = self.member
        return (
            f"O({m.n},{m.k}) > O({m.n},{m.k + 1}): at N = "
            f"{self.witness_system_size}, O({m.n},{m.k}) achieves "
            f"{self.agreement_here}-agreement while O({m.n},{m.k + 1}) "
            f"achieves only {self.agreement_weaker}."
        )


def strictness_witness(n: int, k: int) -> HierarchyLevel:
    """Separation certificate for O(n, k) > O(n, k+1).

    Checks both directions by the cover closed form:

    * forward — O(n, k) implements O(n, k+1)'s task:
      ``K_k(n(k+3)) <= k+2``;
    * backward fails — O(n, k+1) does not implement O(n, k)'s task:
      ``K_{k+1}(n(k+2)) > k+1``.
    """
    member = FamilyMember(n, k)
    weaker = member.weaker_neighbor
    witness_n = member.ports  # n (k + 2)
    here = family_agreement(n, k, witness_n)
    there = family_agreement(n, k + 1, witness_n)
    if not here < there:
        raise AssertionError(
            f"strictness failed at (n={n}, k={k}): {here} !< {there}"
        )
    forward = family_agreement(n, k, weaker.ports)
    if forward > weaker.task.j:
        raise AssertionError(
            f"chain broken: O({n},{k}) cannot cover O({n},{k + 1})'s task "
            f"({forward} > {weaker.task.j})"
        )
    return HierarchyLevel(
        member=member,
        witness_system_size=witness_n,
        agreement_here=here,
        agreement_weaker=there,
    )


def family_chain(n: int, k_max: int) -> List[HierarchyLevel]:
    """The first ``k_max`` rungs of the level-n chain, strongest first."""
    return [strictness_witness(n, k) for k in range(1, k_max + 1)]


def family_hierarchy_graph(n: int, k_max: int) -> nx.DiGraph:
    """Directed graph of the level-n hierarchy.

    Nodes: ``"O(n,k)"`` for k = 1..k_max, plus ``"n-consensus"`` and
    ``"registers"`` anchors.  An edge u -> v means *u is strictly stronger
    than v*; family edges carry their :class:`HierarchyLevel` certificate
    in the ``witness`` attribute.
    """
    graph = nx.DiGraph(n=n)
    anchor_consensus = f"{n}-consensus"
    graph.add_node("registers", kind="anchor", consensus_number=1)
    graph.add_node(anchor_consensus, kind="anchor", consensus_number=n)
    if n > 1:
        graph.add_edge(anchor_consensus, "registers")
    previous = None
    for level in family_chain(n, k_max):
        node = f"O({n},{level.member.k})"
        graph.add_node(
            node,
            kind="family",
            consensus_number=n,
            ports=level.member.ports,
            task=str(level.member.task),
        )
        # Every level strictly dominates the n-consensus anchor: it matches
        # the profile for cohorts <= n and beats ceil(N/n) at full rings.
        graph.add_edge(node, anchor_consensus)
        if previous is not None:
            graph.add_edge(previous, node, witness=strictness_witness(n, level.member.k - 1))
        previous = node
    return graph


def set_consensus_lattice(max_m: int) -> nx.DiGraph:
    """Implementability digraph over all (m, j)-set-consensus classes with
    ``1 <= j < m <= max_m``; edge u -> v iff u implements v (reflexive
    edges omitted).  The paper's tool theorem decides every edge."""
    points = [
        SetConsensusPower(m, j)
        for m in range(2, max_m + 1)
        for j in range(1, m)
    ]
    graph = nx.DiGraph()
    for point in points:
        graph.add_node(str(point), m=point.m, j=point.j, ratio=float(point.ratio))
    for a in points:
        for b in points:
            if a != b and is_implementable(b.m, b.j, a.m, a.j):
                graph.add_edge(str(a), str(b))
    return graph


def equivalence_classes(max_m: int) -> List[List[str]]:
    """Group the (m, j) points with ``m <= max_m`` into mutual-
    implementability classes (the hierarchy's actual rungs)."""
    graph = set_consensus_lattice(max_m)
    undirected_core = nx.DiGraph(
        (u, v) for u, v in graph.edges if graph.has_edge(v, u)
    )
    undirected_core.add_nodes_from(graph.nodes)
    classes = [sorted(c) for c in nx.weakly_connected_components(undirected_core)]
    return sorted(classes, key=lambda c: (len(c), c))
