"""The paper's open questions, as executable commentary.

A reproduction should record not only what the paper proved but what it
left open.  Each function here computes the *frontier* of what this
library's objects achieve, so the open region is a number you can query
rather than a sentence in a PDF.  (Statements of openness are as of the
paper's era and its immediate follow-ups; see the references in
docs/THEORY.md.)

1. **Is a set-consensus-based hierarchy complete for deterministic
   objects?**  The paper shows consensus numbers are not; it conjectures
   set-consensus power is the right refinement.  Later work (Chan–
   Hadzilacos–Toueg) showed even that needs care outside the wait-free
   task world.  In this library the conjecture's *scope* is visible:
   :func:`power_fingerprint` reduces any profiled object to its cover
   curve, and two objects with identical curves are indistinguishable by
   every task experiment shipped here.

2. **Which ratios are achievable deterministically below 2-consensus?**
   The era's constructions reach agreement ratios down to (but not
   below) a structural frontier; for this library's consensus-number-1
   objects (n = 1 family) the asymptotic ratios are
   ``(k+1)/(k+2) ∈ {2/3, 3/4, ...}`` — never below 2/3.  Whether *any*
   deterministic consensus-number-1 object goes below 2/3 (e.g. solves
   2-set consensus for arbitrarily many processes) is the open question;
   :func:`ratio_gap` computes the gap between the library's frontier and
   a target ratio.

3. **Exact separation constants.**  The paper separates levels at
   nk+n+k processes; the reconstruction at nk+n+1.  Whether the paper's
   constant is optimal for *its* objects is not answered by either; the
   reconstruction's constant is optimal for its own family
   (:func:`separation_is_tight` checks minimality against the cover
   curves).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.power import PowerProfile, cover_agreement, family_profile
from repro.core.ratio import asymptotic_ratio


def power_fingerprint(profile: PowerProfile, up_to: int) -> Tuple[int, ...]:
    """The cover curve K(1..up_to) of an object — the complete
    task-power invariant *within this library's experiment suite*.
    Objects with equal fingerprints cannot be separated by any
    set-consensus task experiment here."""
    return tuple(cover_agreement(total, [profile]) for total in range(1, up_to + 1))


def consensus_number_one_frontier(k_max: int) -> List[Fraction]:
    """Asymptotic ratios achieved by the library's deterministic
    consensus-number-1 objects (the n = 1 family): a strictly
    increasing sequence in [2/3, 1) — the open region is everything
    below 2/3."""
    return [asymptotic_ratio(1, k) for k in range(1, k_max + 1)]


def ratio_gap(target: Fraction, n: int = 1, k_max: int = 64) -> Optional[Fraction]:
    """Distance from the library's best (smallest) achievable ratio at
    consensus number n down to ``target``; ``None`` if some level already
    reaches it (then nothing is open about that target here)."""
    best = min(asymptotic_ratio(n, k) for k in range(1, k_max + 1))
    if best <= target:
        return None
    return best - target


def separation_is_tight(n: int, k: int) -> bool:
    """Is nk+n+1 the *smallest* system size at which O(n, k) beats
    O(n, k+1)?  (Below it the two cover curves coincide.)"""
    witness = n * (k + 1) + 1
    strong = family_profile(n, k)
    weak = family_profile(n, k + 1)
    for total in range(1, witness):
        if cover_agreement(total, [strong]) != cover_agreement(total, [weak]):
            return False
    return cover_agreement(witness, [strong]) < cover_agreement(witness, [weak])


def open_region_summary(k_max: int = 8) -> Dict[str, object]:
    """One-call summary used by docs and tests."""
    frontier = consensus_number_one_frontier(k_max)
    return {
        "consensus1_best_ratio": min(frontier),
        "consensus1_frontier": frontier,
        "two_thirds_reached": min(frontier) == Fraction(2, 3),
        "below_two_thirds_open": ratio_gap(Fraction(1, 2)) is not None,
    }
