"""Wait-free renaming from registers: the Moir–Anderson splitter grid.

A *splitter* (Lamport / Moir–Anderson) is a register gadget with the
guarantee that of the ``c`` processes entering it, at most one *stops*, at
most ``c - 1`` go *right*, and at most ``c - 1`` go *down*.  Walking a
triangular grid of splitters therefore strands every one of ``c``
processes at a distinct splitter within the first ``c`` diagonals, giving
names in ``{0, ..., c(c+1)/2 - 1}``.

Renaming is the standard bridge from "protocols for processes with ids in
a small dense range" (like the O(n, k) port discipline) to arbitrary name
spaces; registers suffice, so the bridge adds no synchronization power.
The tighter (2c-1)-renaming of Afek–Merritt is cited but not implemented —
any finite target namespace serves the constructions here.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence, Tuple

from repro.algorithms.helpers import build_spec
from repro.objects.register import RegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec

#: Splitter outcomes.
STOP = "stop"
RIGHT = "right"
DOWN = "down"


def splitter_objects(name: str) -> dict:
    """The two registers of one splitter: X (last door id), Y (closed)."""
    return {f"{name}.X": RegisterSpec(), f"{name}.Y": RegisterSpec(initial=False)}


def splitter(name: str, my_id: Any) -> Generator:
    """Run one splitter; returns STOP, RIGHT, or DOWN.

    ``X.write(id); if Y: right; Y := true; if X == id: stop else down.``
    At most one process stops: a stopper wrote X, saw Y false, and read X
    unchanged — any other process's X-write would have intervened.
    Not all processes can go right (the first to write Y sees Y false),
    and not all can go down (the last to write X reads its own id back if
    it gets past Y).
    """
    yield invoke(f"{name}.X", "write", my_id)
    closed = yield invoke(f"{name}.Y", "read")
    if closed:
        return RIGHT
    yield invoke(f"{name}.Y", "write", True)
    last = yield invoke(f"{name}.X", "read")
    if last == my_id:
        return STOP
    return DOWN


def grid_name(row: int, column: int) -> int:
    """Diagonal enumeration of the grid: (r, c) -> name in
    {0, ..., (r+c)(r+c+1)/2 + r}."""
    diagonal = row + column
    return diagonal * (diagonal + 1) // 2 + row


def target_namespace(max_processes: int) -> int:
    """Names needed for ``max_processes`` participants: c(c+1)/2."""
    return max_processes * (max_processes + 1) // 2


def grid_objects(max_processes: int) -> dict:
    """Splitters for every grid position on the first ``max_processes``
    diagonals (positions (r, c) with r + c < max_processes)."""
    objects: dict = {}
    for row in range(max_processes):
        for column in range(max_processes - row):
            objects.update(splitter_objects(f"spl[{row},{column}]"))
    return objects


def rename(max_processes: int, my_id: Any) -> Generator:
    """Walk the grid until stopping; returns the acquired name.

    With at most ``max_processes`` participants the walk stops within
    ``max_processes`` splitters: each move (right or down) leaves at least
    one former companion behind, so a process on diagonal d shares its
    splitter with at most ``max_processes - d`` others, and a splitter
    entered alone always stops its visitor.
    """
    row = column = 0
    while True:
        if row + column >= max_processes:
            raise AssertionError(
                "walked off the grid: more participants than declared?"
            )
        outcome = yield from splitter(f"spl[{row},{column}]", my_id)
        if outcome == STOP:
            return grid_name(row, column)
        if outcome == RIGHT:
            column += 1
        else:
            row += 1


def renaming_spec(max_processes: int, ids: Sequence[Any]) -> SystemSpec:
    """System where each process renames; outputs are the new names."""
    if len(ids) > max_processes:
        raise ValueError("more participants than the grid was sized for")
    if len(set(ids)) != len(ids):
        raise ValueError("original ids must be pairwise distinct")
    objects = grid_objects(max_processes)

    def program(pid: int, my_id: Any) -> Generator:
        new_name = yield from rename(max_processes, my_id)
        return new_name

    return build_spec(objects, program, ids)
