"""Agreement protocols built on the O(n, k) family.

Three constructions, in increasing scope:

* :func:`consensus_spec` — n-process consensus from one O(n, k) object:
  everyone invokes a distinct slot of group 0 and decides the group winner
  (the first component of the response).  This is the executable lower
  bound "consensus number >= n" (experiment E1).

* :func:`set_consensus_spec` — the headline: ``n(k+2)`` processes, one
  object, every group occupied, **ring adoption**: decide the successor
  snapshot ``S[g]`` when it is not ``None``, else the own-group winner
  ``F[g]``.  At most k+1 distinct decisions in *every* execution,
  including crash-prefixes (experiment E2).  The proof shape:

  - all members of a group decide identically (the response is frozen at
    the group's install);
  - if every group is installed, the last-installed group's winner is
    never decided: its members adopt (their snapshot saw the earlier-
    installed successor), and its predecessor's snapshot was taken
    earlier still, so it misses the last winner;
  - if only t < k+2 groups are installed, only t winners exist at all.

* :func:`partition_set_consensus_spec` — the ratio extension: ``N``
  processes over multiple objects achieve the cover bound
  :func:`repro.core.power.family_agreement` (experiments E2/E5): whole
  rings of ``n(k+2)``, then a remainder that either ring-spreads (when
  ``r > n(k+1)``) or concentrates into n-consensus groups.
"""

from __future__ import annotations

from math import ceil
from typing import Any, Generator, Sequence

from repro.algorithms.helpers import build_spec
from repro.core.family import HierarchyObjectSpec
from repro.core.power import family_agreement
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def family_port_program(
    target: str,
    group: int,
    slot: int,
    value: Any,
) -> Generator:
    """Subroutine: invoke one port and apply the ring-adoption rule.

    Returns the decision: the frozen successor snapshot when the group's
    installer saw one, otherwise the group winner (which is the caller's
    own value when the caller installed the group).
    """
    winner, successor_snapshot = yield invoke(target, "invoke", group, slot, value)
    if successor_snapshot is not None:
        return successor_snapshot
    return winner


def consensus_spec(n: int, k: int, inputs: Sequence[Any]) -> SystemSpec:
    """n-process consensus from one O(n, k): all processes share group 0
    and decide its winner (ignoring the ring component)."""
    if len(inputs) > n:
        raise ValueError(f"group consensus admits at most n={n} processes")
    spec = HierarchyObjectSpec(n, k)

    def program(pid: int, value: Any) -> Generator:
        winner, _snapshot = yield invoke("O", "invoke", 0, pid, value)
        return winner

    return build_spec({"O": spec}, program, inputs)


def ring_spread_port(spec: HierarchyObjectSpec, offset: int) -> tuple:
    """Port assignment that covers all groups as early as possible:
    offset o -> (o mod G, o // G)."""
    group = offset % spec.groups
    slot = offset // spec.groups
    if slot >= spec.n:
        raise ValueError(f"offset {offset} exceeds {spec.ports} ports")
    return group, slot


def set_consensus_spec(n: int, k: int, inputs: Sequence[Any]) -> SystemSpec:
    """(c, k+1)-set consensus from one O(n, k), for any
    ``k+2 <= c <= n(k+2)`` processes: ring-spread port assignment plus
    ring adoption.  With ``c = n(k+2)`` this is the full-occupancy
    headline task (n(k+2), k+1)."""
    spec = HierarchyObjectSpec(n, k)
    if not spec.groups <= len(inputs) <= spec.ports:
        raise ValueError(
            f"ring protocol needs between {spec.groups} (ring coverage) and "
            f"{spec.ports} (port count) processes, got {len(inputs)}"
        )

    def program(pid: int, value: Any) -> Generator:
        group, slot = ring_spread_port(spec, pid)
        decision = yield from family_port_program("O", group, slot, value)
        return decision

    return build_spec({"O": spec}, program, inputs)


def partition_set_consensus_spec(
    n: int, k: int, inputs: Sequence[Any]
) -> SystemSpec:
    """N-process set consensus from multiple O(n, k) objects, achieving
    the cover bound of :func:`repro.core.power.family_agreement`.

    Processes are split into contiguous blocks of ``ports = n(k+2)``; each
    full block ring-spreads over its own object.  The remainder block of
    ``r`` processes ring-spreads too when ``r > n(k+1)`` (k+1 decisions
    beat concentration there) and otherwise concentrates into
    ``ceil(r/n)`` n-consensus groups, ignoring the ring component.
    """
    object_spec = HierarchyObjectSpec(n, k)
    ports = object_spec.ports
    n_processes = len(inputs)
    if n_processes == 0:
        raise ValueError("need at least one process")
    n_objects = max(1, (n_processes + ports - 1) // ports)
    objects = {f"O{b}": object_spec for b in range(n_objects)}
    full_blocks = n_processes // ports
    remainder = n_processes - full_blocks * ports
    remainder_rings = remainder > n * (k + 1)

    def program(pid: int, value: Any) -> Generator:
        block, offset = divmod(pid, ports)
        target = f"O{block}"
        if block < full_blocks or remainder_rings:
            group, slot = ring_spread_port(object_spec, offset)
            decision = yield from family_port_program(target, group, slot, value)
        else:
            # Concentrate: per-group n-consensus only.
            group, slot = divmod(offset, n)
            winner, _snapshot = yield invoke(target, "invoke", group, slot, value)
            decision = winner
        return decision

    return build_spec(objects, program, inputs)


def worst_case_agreement(n: int, k: int, n_processes: int) -> int:
    """The agreement bound the partition protocol guarantees — the cover
    closed form, re-exported so protocol and bound travel together."""
    return family_agreement(n, k, n_processes)


def concentration_bound(n: int, n_processes: int) -> int:
    """Agreement when only the n-consensus component is used:
    ceil(N/n) — the baseline the ring improves on."""
    return ceil(n_processes / n)
