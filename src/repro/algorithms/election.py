"""Election protocols.

The k-set election task is k-set consensus with inputs fixed to the
participants' own identifiers; the literature treats the two as
computationally equivalent, and the protocols here make that concrete:

* :func:`set_election_spec` — (k+1)-set election for the ports of one
  O(n, k) object: the ring-adoption protocol with ids as values;
* :func:`leader_election_spec` — 1-set election (with self-election!) for
  up to n processes from one group: the winner is the group's first
  writer, which *is* one of the electors — so the strong task is solved
  within a group;
* :func:`tas_chain_election_spec` — classical n-process *self-knowledge*
  election from test-and-set: exactly one process learns it is the leader
  (everyone else learns it lost, but not who won).  Useful as the
  canonical example of a task *weaker* than strong election yet not
  register-solvable.

The ring protocol does **not** solve the strong variant across groups:
an adopted group winner need not have elected itself.  The test suite
exhibits the violating schedule with the explorer — a deliberately
included negative result (see
``tests/algorithms/test_election.py::TestStrongElectionGap``).
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from repro.algorithms.helpers import build_spec
from repro.algorithms.set_consensus_from_family import (
    family_port_program,
    ring_spread_port,
)
from repro.core.family import HierarchyObjectSpec
from repro.objects.rmw import TestAndSetSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def set_election_spec(n: int, k: int, participants: int) -> SystemSpec:
    """(k+1)-set election among ``participants`` processes (ids = pids)
    via ring adoption on one O(n, k)."""
    spec = HierarchyObjectSpec(n, k)
    if not spec.groups <= participants <= spec.ports:
        raise ValueError(
            f"need between {spec.groups} and {spec.ports} participants"
        )

    def program(pid: int, _value) -> Generator:
        group, slot = ring_spread_port(spec, pid)
        leader = yield from family_port_program("O", group, slot, pid)
        return leader

    return build_spec({"O": spec}, program, list(range(participants)))


def leader_election_spec(n: int, k: int, participants: int) -> SystemSpec:
    """Strong election (1-set election with self-election) for up to n
    processes sharing one group: everyone elects the group's first
    writer, including the first writer itself."""
    if participants > n:
        raise ValueError(f"one group holds at most n={n} electors")
    spec = HierarchyObjectSpec(n, k)

    def program(pid: int, _value) -> Generator:
        winner, _snapshot = yield invoke("O", "invoke", 0, pid, pid)
        return winner

    return build_spec({"O": spec}, program, list(range(participants)))


def tas_chain_election_spec(participants: int) -> SystemSpec:
    """Self-knowledge election from one test-and-set: the unique winner
    returns ``("leader", pid)``, losers return ``("lost", pid)``."""

    def program(pid: int, _value) -> Generator:
        lost = yield invoke("t", "test_and_set")
        return ("leader" if lost == 0 else "lost", pid)

    return build_spec({"t": TestAndSetSpec()}, program, list(range(participants)))
