"""Election protocols.

The k-set election task is k-set consensus with inputs fixed to the
participants' own identifiers; the literature treats the two as
computationally equivalent, and the protocols here make that concrete:

* :func:`set_election_spec` — (k+1)-set election for the ports of one
  O(n, k) object: the ring-adoption protocol with ids as values;
* :func:`leader_election_spec` — 1-set election (with self-election!) for
  up to n processes from one group: the winner is the group's first
  writer, which *is* one of the electors — so the strong task is solved
  within a group;
* :func:`tas_chain_election_spec` — classical n-process *self-knowledge*
  election from test-and-set: exactly one process learns it is the leader
  (everyone else learns it lost, but not who won).  Useful as the
  canonical example of a task *weaker* than strong election yet not
  register-solvable.
* :func:`announce_election_spec` — the same self-knowledge election with
  a separate *announce* write after the test-and-set, opening a crash
  window between winning and telling anyone.  Under crash-stop the extra
  step changes nothing; under crash-recovery it is the canonical
  power-separation example (experiment E11): a winner that crashes in
  the window and recovers amnesiac re-reads its own old win as a rival's
  and concludes it lost — unless the TAS is the *recoverable*,
  caller-keyed variant.

The ring protocol does **not** solve the strong variant across groups:
an adopted group winner need not have elected itself.  The test suite
exhibits the violating schedule with the explorer — a deliberately
included negative result (see
``tests/algorithms/test_election.py::TestStrongElectionGap``).
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from repro.algorithms.helpers import build_spec
from repro.algorithms.set_consensus_from_family import (
    family_port_program,
    ring_spread_port,
)
from repro.core.family import HierarchyObjectSpec
from repro.objects.recoverable import RecoverableTestAndSetSpec
from repro.objects.register import RegisterSpec
from repro.objects.rmw import TestAndSetSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def set_election_spec(n: int, k: int, participants: int) -> SystemSpec:
    """(k+1)-set election among ``participants`` processes (ids = pids)
    via ring adoption on one O(n, k)."""
    spec = HierarchyObjectSpec(n, k)
    if not spec.groups <= participants <= spec.ports:
        raise ValueError(
            f"need between {spec.groups} and {spec.ports} participants"
        )

    def program(pid: int, _value) -> Generator:
        group, slot = ring_spread_port(spec, pid)
        leader = yield from family_port_program("O", group, slot, pid)
        return leader

    return build_spec({"O": spec}, program, list(range(participants)))


def leader_election_spec(n: int, k: int, participants: int) -> SystemSpec:
    """Strong election (1-set election with self-election) for up to n
    processes sharing one group: everyone elects the group's first
    writer, including the first writer itself."""
    if participants > n:
        raise ValueError(f"one group holds at most n={n} electors")
    spec = HierarchyObjectSpec(n, k)

    def program(pid: int, _value) -> Generator:
        winner, _snapshot = yield invoke("O", "invoke", 0, pid, pid)
        return winner

    return build_spec({"O": spec}, program, list(range(participants)))


def tas_chain_election_spec(participants: int) -> SystemSpec:
    """Self-knowledge election from one test-and-set: the unique winner
    returns ``("leader", pid)``, losers return ``("lost", pid)``."""

    def program(pid: int, _value) -> Generator:
        lost = yield invoke("t", "test_and_set")
        return ("leader" if lost == 0 else "lost", pid)

    return build_spec({"t": TestAndSetSpec()}, program, list(range(participants)))


def announce_election_spec(
    participants: int, variant: str = "tas"
) -> SystemSpec:
    """Self-knowledge election with an announce step after the TAS.

    Each process test-and-sets ``t``, then writes its verdict into the
    announce register ``r`` before returning ``"L"`` (leader) or ``"F"``
    (follower).  The announce write is what gives the crash-recovery
    adversary its window: a process can win the TAS, crash before the
    write, and restart amnesiac.

    ``variant`` selects the shared primitive: ``"tas"`` is the plain
    :class:`~repro.objects.rmw.TestAndSetSpec` (correct under crash-stop
    only), ``"recoverable-tas"`` the caller-keyed
    :class:`~repro.objects.recoverable.RecoverableTestAndSetSpec` whose
    idempotent re-win restores correctness under crash-recovery.
    """
    if variant not in ("tas", "recoverable-tas"):
        raise ValueError(
            f"unknown election variant {variant!r}; "
            "expected 'tas' or 'recoverable-tas'"
        )
    recoverable = variant == "recoverable-tas"

    def program(pid: int, _value) -> Generator:
        if recoverable:
            lost = yield invoke("t", "test_and_set", pid)
        else:
            lost = yield invoke("t", "test_and_set")
        verdict = "L" if lost == 0 else "F"
        yield invoke("r", "write", verdict)
        return verdict

    objects = {
        "t": RecoverableTestAndSetSpec() if recoverable else TestAndSetSpec(),
        "r": RegisterSpec(),
    }
    return build_spec(objects, program, list(range(participants)))
