"""Herlihy's universal construction.

*Universality* is the other half of the consensus-hierarchy story: with
n-consensus objects and registers, **any** sequentially specified object
has a wait-free linearizable implementation for n processes.  (The paper's
revelation is that the converse map — from objects back to hierarchy
levels — loses information; universality itself stands.)

This is the classical state-machine-replication form:

* process i announces its pending operation (with a unique id) in an
  announce array;
* an unbounded log of slots is filled by consensus: for slot t, each
  process proposes an operation — preferring the announced operation of
  process ``t mod n`` if it is still undecided (the round-robin *helping*
  rule), else its own pending one;
* every process replays the decided log through the object's sequential
  specification (the very :class:`~repro.objects.base.ObjectSpec` the
  linearizability checker uses — one source of truth) and returns its
  operation's response once it appears in the log.

Helping bounds the wait: by slot ``t_announce + n`` every process's
operation has priority somewhere, so each operation completes within O(n)
slots — wait-freedom, verified by step-count assertions in the tests.
Each of the n processes proposes at most once per slot, so the
slot objects' proposal budget of n is respected.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.algorithms.helpers import build_spec
from repro.errors import ProtocolError
from repro.objects.base import ObjectSpec
from repro.objects.consensus_object import NConsensusSpec
from repro.objects.register import ArraySpec
from repro.runtime.ops import call_marker, invoke, return_marker
from repro.runtime.system import SystemSpec

#: An announced operation: (unique id, method, args).
AnnouncedOp = Tuple[Tuple[int, int], str, Tuple[Any, ...]]


def universal_objects(
    name: str, n_processes: int, max_slots: int
) -> Dict[str, Any]:
    """Shared objects: the announce array plus one n-consensus object per
    log slot.  ``max_slots`` bounds the run (>= total operations + n)."""
    objects: Dict[str, Any] = {
        f"{name}.announce": ArraySpec(n_processes, initial=None)
    }
    for slot in range(max_slots):
        objects[f"{name}.slot[{slot}]"] = NConsensusSpec(n_processes)
    return objects


class UniversalReplica:
    """Per-process replica state: the decided log replayed through the
    sequential spec.  Pure local computation (no shared steps)."""

    def __init__(self, spec: ObjectSpec):
        self.spec = spec
        self.state = spec.initial_state()
        self.applied_ids: set = set()
        self.log: List[AnnouncedOp] = []

    def apply(self, operation: AnnouncedOp) -> Any:
        op_id, method, args = operation
        if op_id in self.applied_ids:
            raise ProtocolError(f"operation {op_id} decided twice")
        response, self.state = self.spec.apply_one(self.state, method, args)
        self.applied_ids.add(op_id)
        self.log.append(operation)
        return response


def perform(
    name: str,
    n_processes: int,
    pid: int,
    replica: UniversalReplica,
    cursor: List[int],
    op_seq: List[int],
    method: str,
    args: Tuple[Any, ...],
    max_slots: int,
) -> Generator:
    """Execute one operation through the universal object.

    ``cursor`` (1-cell list: next log slot to fill) and ``op_seq`` (1-cell
    list: per-process operation counter) persist across this process's
    operations.  Returns the operation's response.
    """
    op_seq[0] += 1
    my_op: AnnouncedOp = ((pid, op_seq[0]), method, tuple(args))
    yield invoke(f"{name}.announce", "write", pid, my_op)
    response: Optional[Any] = None
    mine_done = False
    while not mine_done:
        slot = cursor[0]
        if slot >= max_slots:
            raise ProtocolError(
                f"universal log exhausted its {max_slots} slots; size the "
                "construction for the workload"
            )
        # Helping rule: prefer the announced op of process (slot mod n)
        # if it exists and is still undecided; else push our own.
        helped_pid = slot % n_processes
        candidate = yield invoke(f"{name}.announce", "read", helped_pid)
        if candidate is None or candidate[0] in replica.applied_ids:
            candidate = my_op
        decided = yield invoke(f"{name}.slot[{slot}]", "propose", candidate)
        outcome = replica.apply(decided)
        cursor[0] = slot + 1
        if decided[0] == my_op[0]:
            response = outcome
            mine_done = True
    return response


def universal_program(
    name: str,
    n_processes: int,
    pid: int,
    spec: ObjectSpec,
    script: Sequence[Tuple[str, Tuple[Any, ...]]],
    max_slots: int,
) -> Generator:
    """Run a script of operations through the universal object, emitting
    call/return markers so the history can be checked linearizable against
    ``spec`` itself.  Returns the list of responses."""
    replica = UniversalReplica(spec)
    cursor = [0]
    op_seq = [0]
    responses: List[Any] = []
    # Warm-up step: annotations emitted at priming are timestamped 0 for
    # every process, which would erase the real-time precedence of each
    # process's first operation in the extracted history.
    yield invoke(f"{name}.announce", "read", pid)
    for method, args in script:
        yield call_marker(name, method, *args)
        response = yield from perform(
            name, n_processes, pid, replica, cursor, op_seq, method, args, max_slots
        )
        yield return_marker(response)
        responses.append(response)
    return responses


def universal_spec(
    spec: ObjectSpec,
    scripts: Sequence[Sequence[Tuple[str, Tuple[Any, ...]]]],
    name: str = "obj",
    slack: int = 4,
) -> SystemSpec:
    """System where process i runs ``scripts[i]`` against a universal
    implementation of ``spec``."""
    n_processes = len(scripts)
    total_ops = sum(len(s) for s in scripts)
    max_slots = total_ops + n_processes + slack
    objects = universal_objects(name, n_processes, max_slots)

    def program(pid: int, script: Any) -> Generator:
        result = yield from universal_program(
            name, n_processes, pid, spec, script, max_slots
        )
        return result

    return build_spec(objects, program, list(scripts))
