"""Wait-free atomic snapshot from registers.

The Afek–Attiya–Dolev–Gafni–Merritt–Shavit construction (unbounded
sequence numbers): one SWMR cell per process holding
``(value, seq, embedded_view)``.

* ``scan`` — repeated *double collects*.  Two identical collects mean no
  cell changed in between, so the collect is an instantaneous view.  If a
  scanner instead observes the same process's cell change **twice**, that
  process completed an entire ``update`` within the scan's interval, and
  the view embedded in its newest cell is a legitimate snapshot taken
  inside our interval — the scanner *borrows* it.  Each process can cause
  at most one "first change" before its second change triggers a borrow,
  so at most m+1 double collects: wait-free.
* ``update(i, v)`` — bump the writer's sequence number, take an embedded
  ``scan``, then write ``(v, seq, view)`` in one register write.

Snapshots have consensus number 1, so this construction adds no
synchronization power — the precise sense in which the sub-consensus world
of the paper may use snapshots "for free".  Linearizability against
:class:`repro.objects.snapshot.AtomicSnapshotSpec` is model-checked in the
tests (experiment E9).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.objects.register import ArraySpec
from repro.runtime.ops import call_marker, invoke, return_marker

#: One cell: (value, sequence number, embedded view or None).
Cell = Tuple[Any, int, Optional[Tuple[Any, ...]]]

#: Initial cell content.
EMPTY_CELL: Cell = (None, 0, None)


def snapshot_objects(name: str, size: int) -> Dict[str, ArraySpec]:
    """The shared objects backing one snapshot region: an array of
    ``size`` SWMR cells."""
    return {name: ArraySpec(size, initial=EMPTY_CELL)}


def _collect(name: str, size: int) -> Generator:
    """Read all cells, one register read per step."""
    cells: List[Cell] = []
    for index in range(size):
        cell = yield invoke(name, "read", index)
        cells.append(cell)
    return tuple(cells)


def scan(name: str, size: int) -> Generator:
    """Wait-free scan; returns the tuple of current values."""
    moved: Dict[int, int] = {}
    previous = yield from _collect(name, size)
    while True:
        current = yield from _collect(name, size)
        if current == previous:
            return tuple(cell[0] for cell in current)
        for index in range(size):
            if current[index] != previous[index]:
                moved[index] = moved.get(index, 0) + 1
                if moved[index] >= 2:
                    # index completed a full update inside our interval;
                    # borrow its embedded view.
                    borrowed = current[index][2]
                    assert borrowed is not None, "second change implies a view"
                    return borrowed
        previous = current


def update(name: str, size: int, index: int, value: Any, seq: int) -> Generator:
    """Wait-free update of cell ``index``; the caller supplies a strictly
    increasing per-process ``seq`` (e.g. a loop counter)."""
    view = yield from scan(name, size)
    yield invoke(name, "write", index, (value, seq, view))


# ----------------------------------------------------------------------
# Annotated wrappers: emit the logical-operation boundaries consumed by
# the linearizability checker (checked against AtomicSnapshotSpec).
# ----------------------------------------------------------------------
def annotated_scan(name: str, size: int) -> Generator:
    """``scan`` wrapped in call/return markers for history extraction."""
    yield call_marker(name, "scan")
    view = yield from scan(name, size)
    yield return_marker(view)
    return view


def annotated_update(
    name: str, size: int, index: int, value: Any, seq: int
) -> Generator:
    """``update`` wrapped in call/return markers for history extraction."""
    yield call_marker(name, "update", index, value)
    yield from update(name, size, index, value, seq)
    yield return_marker(None)


def updater_scanner_program(
    name: str, size: int, pid: int, values: Sequence[Any], scans: int
) -> Generator:
    """Test workload: interleave ``len(values)`` updates of own cell with
    ``scans`` scans; returns the list of scan results.  Starts with a
    warm-up read so the first logical operation's interval begins at the
    process's first scheduled step rather than at priming time."""
    results: List[Tuple[Any, ...]] = []
    seq = 0
    yield invoke(name, "read", pid)  # warm-up
    for round_index in range(max(len(values), scans)):
        if round_index < len(values):
            seq += 1
            yield from annotated_update(name, size, pid, values[round_index], seq)
        if round_index < scans:
            view = yield from annotated_scan(name, size)
            results.append(view)
    return results
