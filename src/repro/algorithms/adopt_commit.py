"""Adopt-commit from registers (Gafni; Yang–Neiger style).

Adopt-commit is the canonical *sub-consensus* agreement object: it is
register-implementable (consensus number 1), yet it captures exactly the
"graded agreement" that round-based consensus protocols need.  Its
``propose(v)`` returns ``(COMMIT, w)`` or ``(ADOPT, w)`` with:

* **commit-validity** — if every participant proposes the same value, all
  return ``(COMMIT, v)``;
* **agreement** — if anyone returns ``(COMMIT, w)``, everyone returns
  ``(*, w)``;
* **validity** — returned values were proposed.

Its presence in the library anchors the bottom of the hierarchy: plenty of
interesting agreement semantics live at consensus number 1 — the paper's
point is that *strictly more* than this (actual set-consensus power) also
lives below 2-consensus... for nondeterministic objects, and at every
level n for its deterministic family.

Implementation: two snapshot phases.

1. write ``v``; scan; set flag True iff every announced value equals v;
2. write ``(v, flag)``; scan; commit iff all announced flags are True,
   else adopt the (unique — two True flags cannot disagree) flagged value
   if one is visible, else keep v.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.algorithms.helpers import build_spec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec

COMMIT = "commit"
ADOPT = "adopt"


def adopt_commit_objects(name: str, participants: int) -> dict:
    """Shared objects of one instance: two announcement snapshots."""
    return {
        f"{name}.R1": AtomicSnapshotSpec(participants),
        f"{name}.R2": AtomicSnapshotSpec(participants),
    }


def propose(name: str, me: int, value: Any) -> Generator:
    """Run the two-phase protocol; returns (COMMIT|ADOPT, value)."""
    yield invoke(f"{name}.R1", "update", me, value)
    first_view = yield invoke(f"{name}.R1", "scan")
    unanimous = all(v is None or v == value for v in first_view)
    yield invoke(f"{name}.R2", "update", me, (value, unanimous))
    second_view = yield invoke(f"{name}.R2", "scan")
    flagged = [entry for entry in second_view if entry is not None and entry[1]]
    present = [entry for entry in second_view if entry is not None]
    if flagged and len(flagged) == len(present):
        return (COMMIT, flagged[0][0])
    if flagged:
        return (ADOPT, flagged[0][0])
    return (ADOPT, value)


def adopt_commit_spec(participants: int, inputs: Sequence[Any]) -> SystemSpec:
    """System where every process proposes once to a single instance."""
    if len(inputs) > participants:
        raise ValueError("more inputs than participant slots")
    objects = adopt_commit_objects("ac", participants)

    def program(pid: int, value: Any) -> Generator:
        outcome = yield from propose("ac", pid, value)
        return outcome

    return build_spec(objects, program, inputs)
