"""Obstruction-free consensus from registers.

Wait-free consensus from registers is impossible (FLP/Herlihy — see
`repro.analysis.valency`), but weakening the progress condition to
**obstruction-freedom** (a process must terminate only if it eventually
runs alone) makes consensus register-solvable.  The classical round
structure:

    round r:  (grade, value) <- adopt_commit_r(my value)
              if grade == COMMIT: decide value
              else:               adopt value, next round

* **Safety in every execution** — adopt-commit's agreement property
  makes a commit at round r force every round-r participant onto the
  same value, which then owns all later rounds: decisions can never
  disagree, no matter the schedule (the tests check all bounded
  executions).
* **Progress only without contention** — a solo runner commits in its
  next round; an adversary interleaving two processes can alternate
  adopts forever (the explorer exhibits the livelock, and the
  wait-freedom auditor formally refuses to certify the protocol).

This pins the boundary the paper lives on: the consensus *number*
hierarchy is about wait-free power; with weaker progress the landscape
collapses, which is why all comparisons in this library (and the paper)
are wait-free/non-blocking.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.algorithms import adopt_commit
from repro.algorithms.helpers import build_spec
from repro.runtime.system import SystemSpec


def obstruction_free_objects(name: str, participants: int, max_rounds: int) -> dict:
    """One adopt-commit instance per round."""
    objects: dict = {}
    for round_index in range(max_rounds):
        objects.update(
            adopt_commit.adopt_commit_objects(
                f"{name}[{round_index}]", participants
            )
        )
    return objects


def obstruction_free_consensus(
    name: str,
    participants: int,
    me: int,
    value: Any,
    max_rounds: int,
) -> Generator:
    """Round loop; returns the decision, or ``None`` if the round budget
    ran out undecided (a livelock prefix — only possible under
    contention)."""
    estimate = value
    for round_index in range(max_rounds):
        grade, estimate = yield from adopt_commit.propose(
            f"{name}[{round_index}]", me, estimate
        )
        if grade == adopt_commit.COMMIT:
            return estimate
    return None


def obstruction_free_spec(
    inputs: Sequence[Any], max_rounds: int = 8
) -> SystemSpec:
    """System running the round protocol with a bounded round budget
    (the budget models 'the adversary eventually backs off')."""
    participants = len(inputs)
    if participants == 0:
        raise ValueError("need at least one participant")
    objects = obstruction_free_objects("ofc", participants, max_rounds)

    def program(pid: int, value: Any) -> Generator:
        decision = yield from obstruction_free_consensus(
            "ofc", participants, pid, value, max_rounds
        )
        return decision

    return build_spec(objects, program, list(inputs))
