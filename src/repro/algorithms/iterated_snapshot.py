"""Iterated immediate snapshot (IIS).

The iterated model runs a fresh one-shot immediate-snapshot memory per
round; a process's round-(r+1) input is its round-r view.  Topologically
each round applies the standard chromatic subdivision again, so after R
rounds the output complex of n processes is the R-fold iterated
subdivision — for two processes, an edge subdivided into ``3^R`` edges
(the tests and experiment E8 count exactly that, executably).

IIS is the combinatorial normal form of wait-free computation: every
register protocol factors through enough IIS rounds, which is why it is
the natural substrate of the simulation machinery behind the paper's
separations.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Generator, Sequence, Tuple

from repro.algorithms.helpers import build_spec
from repro.algorithms.immediate_snapshot import (
    immediate_snapshot,
    immediate_snapshot_objects,
)
from repro.runtime.system import SystemSpec

View = FrozenSet[Tuple[int, Any]]


def iis_objects(name: str, participants: int, rounds: int) -> dict:
    """One immediate-snapshot memory per round."""
    objects: dict = {}
    for round_index in range(rounds):
        objects.update(
            immediate_snapshot_objects(f"{name}[{round_index}]", participants)
        )
    return objects


def iterated_immediate_snapshot(
    name: str,
    participants: int,
    me: int,
    value: Any,
    rounds: int,
) -> Generator:
    """Run ``rounds`` rounds; returns the final view (whose pairs carry
    each visible process's *previous-round view* as its value)."""
    current: Any = value
    view: View = frozenset()
    for round_index in range(rounds):
        view = yield from immediate_snapshot(
            f"{name}[{round_index}]", participants, me, current
        )
        current = view
    return view


def iis_spec(inputs: Sequence[Any], rounds: int) -> SystemSpec:
    """System where process i runs ``rounds`` IIS rounds on ``inputs[i]``."""
    participants = len(inputs)
    if participants == 0:
        raise ValueError("need at least one participant")
    if rounds < 1:
        raise ValueError("need at least one round")
    objects = iis_objects("iis", participants, rounds)

    def program(pid: int, value: Any) -> Generator:
        view = yield from iterated_immediate_snapshot(
            "iis", participants, pid, value, rounds
        )
        return view

    return build_spec(objects, program, list(inputs))


def flatten_view(view: View, depth: int) -> FrozenSet[int]:
    """The set of pids transitively visible in a depth-``depth`` view
    (depth 1 = the pids in the view itself)."""
    pids = frozenset(pid for pid, _payload in view)
    if depth <= 1:
        return pids
    nested = [payload for _pid, payload in view if isinstance(payload, frozenset)]
    for inner in nested:
        pids |= flatten_view(inner, depth - 1)
    return pids
