"""Baselines built on n-consensus objects.

Two constructions:

* :func:`consensus_spec` — consensus for up to n processes from a single
  n-consensus object (the definitional lower bound of consensus number).
* :func:`partition_set_consensus_spec` — the best n-consensus objects can
  do at scale: N processes in blocks of n, one object per block, giving
  ceil(N/n)-set consensus.  The implementability theorem says nothing
  beats this — which is exactly the bar O(n, k) clears (it reaches k+1 at
  N = n(k+2), one better), and, at n = 2, the executable half of the
  Common2 refutation (experiment E6).
"""

from __future__ import annotations

from math import ceil
from typing import Any, Generator, Sequence

from repro.algorithms.helpers import build_spec
from repro.objects.consensus_object import NConsensusSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def consensus_spec(n: int, inputs: Sequence[Any]) -> SystemSpec:
    """Consensus for up to n processes: propose to one n-consensus object,
    decide its answer (the first value proposed)."""
    if len(inputs) > n:
        raise ValueError(f"an {n}-consensus object serves at most {n} processes")

    def program(pid: int, value: Any) -> Generator:
        decision = yield invoke("C", "propose", value)
        return decision

    return build_spec({"C": NConsensusSpec(n)}, program, inputs)


def partition_set_consensus_spec(n: int, inputs: Sequence[Any]) -> SystemSpec:
    """ceil(N/n)-set consensus for N processes from n-consensus objects:
    contiguous blocks of n share one object each and decide its answer."""
    n_processes = len(inputs)
    if n_processes == 0:
        raise ValueError("need at least one process")
    n_objects = ceil(n_processes / n)
    objects = {f"C{b}": NConsensusSpec(n) for b in range(n_objects)}

    def program(pid: int, value: Any) -> Generator:
        block = pid // n
        decision = yield invoke(f"C{block}", "propose", value)
        return decision

    return build_spec(objects, program, inputs)


def partition_bound(n: int, n_processes: int) -> int:
    """Worst-case distinct decisions of the partition protocol —
    also the provable optimum for n-consensus objects (theorem)."""
    return ceil(n_processes / n)
