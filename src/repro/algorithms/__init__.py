"""Wait-free protocols: the positive results, executable.

Every module builds :class:`~repro.runtime.system.SystemSpec` instances
(or reusable program subroutines) for one construction from the paper's
world:

* :mod:`repro.algorithms.set_consensus_from_family` — the family's raison
  d'être: (n(k+2), k+1)-set consensus and n-process consensus from O(n, k);
* :mod:`repro.algorithms.consensus_from_n_consensus` — the n-consensus
  baseline and its partition-based set consensus (what Common2 members can
  do at best);
* :mod:`repro.algorithms.set_consensus_transfer` — the positive direction
  of the implementability theorem: (N, K) from (m, j) objects;
* :mod:`repro.algorithms.relaxed_family` — flag-principle port guards for
  safely sharing one-shot ports;
* :mod:`repro.algorithms.snapshot_impl` — wait-free atomic snapshot from
  registers (Afek–Attiya–Dolev–Gafni–Merritt–Shavit);
* :mod:`repro.algorithms.safe_agreement` — the BG building block;
* :mod:`repro.algorithms.bg_simulation` — the Borowsky–Gafni simulation
  (the machinery behind the paper's lower bounds);
* :mod:`repro.algorithms.renaming` — wait-free splitter-grid renaming;
* :mod:`repro.algorithms.adopt_commit` — adopt-commit from registers;
* :mod:`repro.algorithms.universal` — Herlihy's universal construction;
* :mod:`repro.algorithms.immediate_snapshot` — the Borowsky–Gafni
  one-shot immediate snapshot (descending levels);
* :mod:`repro.algorithms.election` — set election from the family, and
  the deliberate strong-election gap demonstration.
"""

from repro.algorithms.helpers import build_spec, programs_from

__all__ = ["build_spec", "programs_from"]
