"""Flag-principle guards for one-shot ports.

One-shot objects are fragile: two processes touching the same port is
misuse.  The classical *flag principle* repair wraps each port with a
counter (increment and read are separate atomic register-implementable
steps): a process first increments the port's counter, then reads it, and
invokes the port only if it read exactly 1.  At most one process can ever
read 1 (the second incrementer must read at least 2), so the port is
provably used at most once; when every port is contended by exactly one
process, every port is used.

The guarded invocation returns ``(None, None)`` (a "gave up" response)
when the guard denies access; callers fall back to their own value.  This
weakens nothing in the full-occupancy case and makes the object safe for
speculative use by processes with uncertain port assignments — the
standard bridge from "unique ids in 0..m-1" protocols toward protocols for
arbitrary name spaces (combine with :mod:`repro.algorithms.renaming`).
"""

from __future__ import annotations

from typing import Any, Generator, Sequence, Tuple

from repro.algorithms.helpers import build_spec
from repro.algorithms.set_consensus_from_family import ring_spread_port
from repro.core.family import HierarchyObjectSpec
from repro.objects.counter import CounterSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def guard_name(target: str, group: int, slot: int) -> str:
    """Name of the counter guarding one port of one object."""
    return f"{target}.guard[{group},{slot}]"


def guard_objects(target: str, spec: HierarchyObjectSpec) -> dict:
    """All counters guarding ``target``'s ports (one per port)."""
    return {
        guard_name(target, group, slot): CounterSpec()
        for group in range(spec.groups)
        for slot in range(spec.n)
    }


def guarded_invoke(
    target: str, group: int, slot: int, value: Any
) -> Generator:
    """Subroutine: invoke a one-shot port at most once, flag-principle
    guarded.  Returns the object's response, or ``(None, None)`` if the
    guard denied access."""
    counter = guard_name(target, group, slot)
    yield invoke(counter, "inc")
    observed = yield invoke(counter, "read")
    if observed == 1:
        response = yield invoke(target, "invoke", group, slot, value)
        return response
    return (None, None)


def guarded_ring_program(
    target: str,
    spec: HierarchyObjectSpec,
    offset: int,
    value: Any,
) -> Generator:
    """Ring-adoption through the guard: decide the successor snapshot if
    visible, the group winner otherwise, or the caller's own value if the
    guard denied the port."""
    group, slot = ring_spread_port(spec, offset)
    winner, snapshot = yield from guarded_invoke(target, group, slot, value)
    if snapshot is not None:
        return snapshot
    if winner is not None:
        return winner
    return value


def guarded_set_consensus_spec(
    n: int, k: int, inputs: Sequence[Any]
) -> SystemSpec:
    """The guarded variant of the headline protocol: identical guarantees
    when processes hold distinct ports, and no misuse ever — even if the
    port assignment were buggy or contended."""
    spec = HierarchyObjectSpec(n, k)
    if not spec.groups <= len(inputs) <= spec.ports:
        raise ValueError(
            f"need between {spec.groups} and {spec.ports} processes, "
            f"got {len(inputs)}"
        )
    objects = {"O": spec}
    objects.update(guard_objects("O", spec))

    def program(pid: int, value: Any) -> Generator:
        decision = yield from guarded_ring_program("O", spec, pid, value)
        return decision

    return build_spec(objects, program, inputs)


def contended_spec(
    n: int, k: int, inputs: Sequence[Any], port_of: Sequence[Tuple[int, int]]
) -> SystemSpec:
    """Adversarial fixture: processes use *caller-chosen* (possibly
    colliding) ports through the guard.  Used by the tests to prove the
    flag principle: the underlying one-shot object never sees a reused
    port, no matter the assignment."""
    spec = HierarchyObjectSpec(n, k)
    if len(port_of) != len(inputs):
        raise ValueError("one port per process required")
    objects = {"O": spec}
    objects.update(guard_objects("O", spec))

    def program(pid: int, value: Any) -> Generator:
        group, slot = port_of[pid]
        winner, snapshot = yield from guarded_invoke("O", group, slot, value)
        if snapshot is not None:
            return snapshot
        if winner is not None:
            return winner
        return value

    return build_spec(objects, program, inputs)
