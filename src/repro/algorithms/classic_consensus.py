"""The classical consensus-number lower-bound constructions (Herlihy).

Each function builds the textbook wait-free consensus protocol that
*witnesses* an object's place in the hierarchy — the constructive half of
the consensus numbers recorded in
:mod:`repro.core.consensus_number`:

* 2-process consensus from **test-and-set**, **swap**, **fetch-and-add**,
  or a pre-filled **queue** (all consensus number 2 — the Common2 cast);
* n-process consensus from **compare-and-swap** or a **sticky register**
  (consensus number infinity).

All protocols share the same shape: announce your value in a register,
use the object once to decide a total order, and the loser(s) adopt the
winner's announced value.  The matching *upper* bounds (that e.g. TAS
cannot do 3) are the subject of the valency/certificate tools in
:mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.algorithms.helpers import build_spec
from repro.objects.queue_stack import QueueSpec
from repro.objects.register import RegisterSpec
from repro.objects.rmw import CompareAndSwapSpec, FetchAndAddSpec, SwapSpec, TestAndSetSpec
from repro.objects.sticky import StickyRegisterSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def _announce_objects(n_processes: int) -> dict:
    return {f"announce{i}": RegisterSpec() for i in range(n_processes)}


def _two_process(objects: dict, decide_winner) -> SystemSpec:
    """Common two-process shape: announce, race, winner keeps own value,
    loser reads the winner's announcement."""

    def program(pid: int, value: Any) -> Generator:
        yield invoke(f"announce{pid}", "write", value)
        iwon = yield from decide_winner(pid)
        if iwon:
            return value
        other = yield invoke(f"announce{1 - pid}", "read")
        return other

    return objects, program


def consensus_from_test_and_set(inputs: Sequence[Any]) -> SystemSpec:
    """2-process consensus from one TAS: first test-and-set wins."""
    if len(inputs) > 2:
        raise ValueError("TAS solves consensus for at most 2 processes")

    def decide_winner(pid: int) -> Generator:
        lost = yield invoke("tas", "test_and_set")
        return lost == 0

    objects = {"tas": TestAndSetSpec(), **_announce_objects(2)}
    objects, program = _two_process(objects, decide_winner)
    return build_spec(objects, program, inputs)


def consensus_from_swap(inputs: Sequence[Any]) -> SystemSpec:
    """2-process consensus from one swap: whoever swaps out the initial
    ``None`` wins."""
    if len(inputs) > 2:
        raise ValueError("swap solves consensus for at most 2 processes")

    def decide_winner(pid: int) -> Generator:
        previous = yield invoke("swap", "swap", pid)
        return previous is None

    objects = {"swap": SwapSpec(), **_announce_objects(2)}
    objects, program = _two_process(objects, decide_winner)
    return build_spec(objects, program, inputs)


def consensus_from_fetch_and_add(inputs: Sequence[Any]) -> SystemSpec:
    """2-process consensus from one fetch-and-add: ticket 0 wins."""
    if len(inputs) > 2:
        raise ValueError("fetch-and-add solves consensus for at most 2 processes")

    def decide_winner(pid: int) -> Generator:
        ticket = yield invoke("faa", "fetch_and_add")
        return ticket == 0

    objects = {"faa": FetchAndAddSpec(), **_announce_objects(2)}
    objects, program = _two_process(objects, decide_winner)
    return build_spec(objects, program, inputs)


class _PrefilledQueue(QueueSpec):
    """Queue holding the two-element win/lose sequence."""

    def initial_state(self):
        return ("winner", "loser")


def consensus_from_queue(inputs: Sequence[Any]) -> SystemSpec:
    """2-process consensus from a pre-filled FIFO queue: the process that
    dequeues the head wins (Herlihy's queue construction)."""
    if len(inputs) > 2:
        raise ValueError("a queue solves consensus for at most 2 processes")

    def decide_winner(pid: int) -> Generator:
        token = yield invoke("queue", "dequeue")
        return token == "winner"

    objects = {"queue": _PrefilledQueue(), **_announce_objects(2)}
    objects, program = _two_process(objects, decide_winner)
    return build_spec(objects, program, inputs)


def consensus_from_cas(inputs: Sequence[Any]) -> SystemSpec:
    """n-process consensus from one compare-and-swap, any n."""

    def program(pid: int, value: Any) -> Generator:
        seen = yield invoke("cas", "compare_and_swap", None, value)
        return value if seen is None else seen

    return build_spec({"cas": CompareAndSwapSpec()}, program, inputs)


def consensus_from_sticky(inputs: Sequence[Any]) -> SystemSpec:
    """n-process consensus from one sticky register, any n."""

    def program(pid: int, value: Any) -> Generator:
        decision = yield invoke("sticky", "propose", value)
        return decision

    return build_spec({"sticky": StickyRegisterSpec()}, program, inputs)


#: The constructive witnesses, keyed by a human-readable object name:
#: (builder, max participants or None for unbounded).
WITNESSES = {
    "test-and-set": (consensus_from_test_and_set, 2),
    "swap": (consensus_from_swap, 2),
    "fetch-and-add": (consensus_from_fetch_and_add, 2),
    "queue": (consensus_from_queue, 2),
    "compare-and-swap": (consensus_from_cas, None),
    "sticky-register": (consensus_from_sticky, None),
}
