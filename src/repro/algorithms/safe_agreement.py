"""Safe agreement — the Borowsky–Gafni building block.

Safe agreement is consensus with a *safety valve*: agreement and validity
always hold, termination is wait-free **except** while some process is
inside a short "unsafe section" (between announcing its value and settling
its level).  A process that crashes inside the unsafe section may block
the instance forever — but blocks nothing else.  This containment is the
engine of the BG simulation (and thereby of the set-consensus lower
bounds the paper builds on).

Protocol (one snapshot segment per participant, levels 0/1/2):

1. ``update(i, (v, 1))`` — announce at level 1 (unsafe section begins);
2. ``scan``; if some segment is at level 2, retreat: ``update(i, (v, 0))``
   else advance: ``update(i, (v, 2))`` (unsafe section ends);
3. repeatedly ``scan`` until no segment is at level 1; decide the value of
   the minimum-index level-2 segment.

Once any scan shows no level-1 segments, the level-2 set is frozen (late
arrivals see a level-2 segment — one provably exists — and retreat), so
all deciders read the same set: agreement.

:func:`propose_blocking` runs step 3 as a busy-wait loop;
:func:`SafeAgreementInstance` exposes the split *announce / try-decide*
interface the BG simulation needs to stay non-blocking across instances.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence, Tuple

from repro.algorithms.helpers import build_spec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec

#: Segment content: (value, level).
IDLE = (None, 0)


def safe_agreement_objects(name: str, participants: int) -> dict:
    """Shared objects of one instance: a snapshot with one segment per
    participant.  (The snapshot is register-implementable —
    :mod:`repro.algorithms.snapshot_impl` — so the instance is too.)"""
    return {name: AtomicSnapshotSpec(participants, initial=IDLE)}


def announce(name: str, me: int, value: Any) -> Generator:
    """Steps 1–2: traverse the unsafe section.  Returns the level this
    participant settled at (0 = retreated, 2 = advanced)."""
    yield invoke(name, "update", me, (value, 1))
    view = yield from _scan(name)
    if any(level == 2 for _v, level in view):
        yield invoke(name, "update", me, (value, 0))
        return 0
    yield invoke(name, "update", me, (value, 2))
    return 2


def try_decide(name: str) -> Generator:
    """Step 3, non-blocking: one scan.  Returns the agreed value, or
    ``None`` while some participant is still at level 1."""
    view = yield from _scan(name)
    if any(level == 1 for _v, level in view):
        return None
    for value, level in view:
        if level == 2:
            return value
    raise AssertionError("no level-1 and no level-2 segment: nobody announced")


def propose_blocking(name: str, me: int, value: Any) -> Generator:
    """Full propose: announce, then busy-wait for a decision.

    Wait-free unless some participant crashes inside its unsafe section,
    in which case this spins (the documented blocking mode).
    """
    yield from announce(name, me, value)
    while True:
        decision = yield from try_decide(name)
        if decision is not None:
            return decision


def _scan(name: str) -> Generator:
    view = yield invoke(name, "scan")
    return view


class SafeAgreementInstance:
    """Convenience handle bundling the instance name and participant count
    for callers that juggle many instances (the BG simulation)."""

    def __init__(self, name: str, participants: int):
        self.name = name
        self.participants = participants

    def objects(self) -> dict:
        return safe_agreement_objects(self.name, self.participants)

    def announce(self, me: int, value: Any) -> Generator:
        return announce(self.name, me, value)

    def try_decide(self) -> Generator:
        return try_decide(self.name)

    def propose_blocking(self, me: int, value: Any) -> Generator:
        return propose_blocking(self.name, me, value)


def consensus_spec(participants: int, inputs: Sequence[Any]) -> SystemSpec:
    """A system in which every process runs blocking safe agreement on one
    instance — consensus whenever no process crashes in the unsafe window
    (the tests exercise both the clean and the crashing schedules)."""
    if len(inputs) > participants:
        raise ValueError("more inputs than participant slots")
    objects = safe_agreement_objects("sa", participants)

    def program(pid: int, value: Any) -> Generator:
        decision = yield from propose_blocking("sa", pid, value)
        return decision

    return build_spec(objects, program, inputs)
