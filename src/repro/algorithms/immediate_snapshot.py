"""One-shot immediate snapshot from registers (Borowsky–Gafni 1993).

The classic *descending levels* algorithm.  Shared state: one atomic
snapshot with a segment per process holding ``(value, level)``.  Each
process starts at level ``n`` and repeats:

1. descend one level and publish ``(value, level)``;
2. scan; let ``S`` be the processes whose published level is at most the
   scanner's current level;
3. if ``|S| >= level``, return the pairs of ``S`` as the view, else
   repeat.

Intuition: level L is a trapdoor floor that can hold at most L processes;
a process stops at the highest floor that is "full enough" from its own
vantage point.  Termination: a process at level 1 always sees itself, so
at most n iterations.  The returned views satisfy self-inclusion,
containment and immediacy — validated here both exhaustively (small n)
and by seeded sweeps (:mod:`tests.algorithms.test_immediate_snapshot`).
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.algorithms.helpers import build_spec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def immediate_snapshot_objects(name: str, participants: int) -> dict:
    """Shared objects: one (value, level) snapshot segment per process."""
    return {name: AtomicSnapshotSpec(participants, initial=None)}


def immediate_snapshot(
    name: str, participants: int, me: int, value: Any
) -> Generator:
    """Run the descending-levels algorithm; returns the view as a
    frozenset of (pid, value) pairs."""
    level = participants
    while True:
        yield invoke(name, "update", me, (value, level))
        view = yield invoke(name, "scan")
        floor = [
            (pid, cell[0])
            for pid, cell in enumerate(view)
            if cell is not None and cell[1] <= level
        ]
        if len(floor) >= level:
            return frozenset(floor)
        level -= 1
        assert level >= 1, "descended past level 1: algorithm invariant broken"


def immediate_snapshot_spec(inputs: Sequence[Any]) -> SystemSpec:
    """System where process i contributes ``inputs[i]`` and returns its
    immediate-snapshot view."""
    participants = len(inputs)
    if participants == 0:
        raise ValueError("need at least one participant")
    objects = immediate_snapshot_objects("is", participants)

    def program(pid: int, value: Any) -> Generator:
        view = yield from immediate_snapshot("is", participants, pid, value)
        return view

    return build_spec(objects, program, inputs)
