"""One-shot test-and-set from 2-consensus objects: doorway + tournament.

This is the *positive* half of the Common2 story, opposite the paper's
refutation: some consensus-number-2 objects genuinely are implementable
from 2-consensus objects and registers — test-and-set is the classic
member (Afek–Weisberger–Weisman).  Together with
:mod:`repro.core.common2` the two halves delimit the conjecture exactly:
TAS is inside Common2, O(2, k) is not.

Construction, two stages:

1. **Doorway** — read a register; if it is already closed, return LOSE
   immediately; otherwise close it and proceed.  Whoever starts after
   *any* invocation completed finds the doorway closed (every completed
   invocation closed it, or lost to someone who had), so late starters
   can never win — the real-time constraint linearizability needs.
   A bare tournament famously lacks this: a process can lose and return
   while the eventual winner is still mid-tree, and a later starter may
   then win the root.
2. **Tournament** — entrants ascend a binary tree with one 2-consensus
   object per node, proposing their id; the unique root winner returns
   WIN, everyone else LOSE.  Each node is reached only by the winners of
   its two subtrees, respecting the 2-proposal budget.

Guarantees (model-checked in the tests against the one-shot TAS
sequential spec):

* at most one WIN, and exactly one when every participant runs;
* linearizable one-shot TAS: every completed history embeds into a
  legal first-wins order (a run where all completed invocations lost —
  the winner still mid-tree — linearizes the pending winner first).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Sequence

from repro.algorithms.helpers import build_spec
from repro.objects.consensus_object import NConsensusSpec
from repro.objects.register import RegisterSpec
from repro.runtime.ops import call_marker, invoke, return_marker
from repro.runtime.system import SystemSpec

#: Responses, mirroring TestAndSetSpec's 0 = won / 1 = lost.
WIN = 0
LOSE = 1


def _tree_levels(n_processes: int) -> int:
    levels = 0
    while (1 << levels) < n_processes:
        levels += 1
    return max(1, levels)


def tournament_objects(name: str, n_processes: int) -> Dict[str, Any]:
    """The doorway register plus one 2-consensus object per internal
    node.  Nodes are addressed ``(level, index)``; the last level is the
    root."""
    levels = _tree_levels(n_processes)
    objects: Dict[str, Any] = {
        f"{name}.door": RegisterSpec(initial="open"),
        # Scratch register read once before the logical operation begins,
        # so the annotated interval starts at the caller's first scheduled
        # step (annotations emitted at priming are timestamped 0 for
        # everyone, which would erase the real-time constraints the
        # linearizability check is supposed to enforce).
        f"{name}.warm": RegisterSpec(),
    }
    for level in range(levels):
        for index in range(1 << (levels - level - 1)):
            objects[f"{name}[{level},{index}]"] = NConsensusSpec(2)
    return objects


def tournament_tas(name: str, n_processes: int, me: int) -> Generator:
    """Doorway check, then ascend the tree; returns WIN (0) or LOSE (1)."""
    door = yield invoke(f"{name}.door", "read")
    if door != "open":
        return LOSE
    yield invoke(f"{name}.door", "write", "closed")
    levels = _tree_levels(n_processes)
    position = me
    for level in range(levels):
        position //= 2
        node = f"{name}[{level},{position}]"
        decided = yield invoke(node, "propose", me)
        if decided != me:
            return LOSE
    return WIN


def annotated_tournament_tas(
    name: str, n_processes: int, me: int
) -> Generator:
    """Tournament TAS wrapped in call/return markers so histories can be
    checked against the one-shot TAS sequential specification.  A warm-up
    read precedes the call marker (see :func:`tournament_objects`)."""
    yield invoke(f"{name}.warm", "read")
    yield call_marker(name, "test_and_set")
    outcome = yield from tournament_tas(name, n_processes, me)
    yield return_marker(outcome)
    return outcome


def tournament_spec(
    n_processes: int, participants: Sequence[int] = None
) -> SystemSpec:
    """System in which each listed participant (default: everyone)
    performs one tournament TAS and returns its outcome."""
    if n_processes < 2:
        raise ValueError("a tournament needs at least 2 slots")
    chosen = list(range(n_processes)) if participants is None else list(participants)
    if any(not 0 <= p < n_processes for p in chosen):
        raise ValueError("participants must be valid leaf ids")
    if len(set(chosen)) != len(chosen):
        raise ValueError("participants must be distinct")
    objects = tournament_objects("tas", n_processes)

    def program(pid: int, leaf: int) -> Generator:
        outcome = yield from annotated_tournament_tas("tas", n_processes, leaf)
        return outcome

    return build_spec(objects, program, chosen)
