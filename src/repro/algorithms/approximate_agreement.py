"""Wait-free ε-approximate agreement from registers.

The classic averaging algorithm over atomic snapshots: in each round every
process publishes its current estimate, snapshots all published estimates
for that round, and moves to the midpoint of what it saw.  Each round at
least halves the diameter of the live estimates, so

    rounds = ceil(log2(range / ε))

suffice.  Termination is data-dependent but *schedule-independent*:
the library sizes the round count from the a-priori input range.

Why it belongs here: approximate agreement is solvable at consensus
number 1 while (exact) consensus is not — the first hint that the space
below consensus is structured, which the paper's set-consensus strata
then refine.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Generator, Sequence

from repro.algorithms.helpers import build_spec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def rounds_needed(value_range: float, epsilon: float) -> int:
    """Rounds sufficient to shrink ``value_range`` below ``epsilon``
    when each round halves the diameter."""
    if value_range <= epsilon:
        return 1
    return max(1, ceil(log2(value_range / epsilon)))


def approximate_agreement(
    name: str,
    participants: int,
    me: int,
    value: float,
    rounds: int,
) -> Generator:
    """Run ``rounds`` of publish/snapshot/average; returns the estimate.

    Round r uses segment slot content ``(r, estimate)``; a process only
    averages estimates of its own round or later (stale slower processes
    are ignored — their estimates are already within the current
    interval, by the standard inductive argument).
    """
    estimate = float(value)
    for round_index in range(rounds):
        yield invoke(name, "update", me, (round_index, estimate))
        view = yield invoke(name, "scan")
        current = [
            est
            for cell in view
            if cell is not None
            for r, est in [cell]
            if r >= round_index
        ]
        estimate = (min(current) + max(current)) / 2.0
    return estimate


def approximate_agreement_spec(
    inputs: Sequence[float], epsilon: float
) -> SystemSpec:
    """System solving ε-approximate agreement for the given inputs."""
    participants = len(inputs)
    if participants == 0:
        raise ValueError("need at least one participant")
    spread = max(inputs) - min(inputs)
    rounds = rounds_needed(spread, epsilon)
    objects = {"aa": AtomicSnapshotSpec(participants, initial=None)}

    def program(pid: int, value: float) -> Generator:
        result = yield from approximate_agreement(
            "aa", participants, pid, value, rounds
        )
        return result

    return build_spec(objects, program, list(inputs))
