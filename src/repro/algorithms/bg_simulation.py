"""The Borowsky–Gafni simulation.

``s`` *simulators* jointly execute a register-protocol for ``p`` simulated
processes so that the simulated execution is a legal execution of the
protocol, and at most ``f`` simulated processes stall if at most ``f``
simulators crash.  This is the machinery behind the set-consensus lower
bounds the paper's separations rest on (and the historical engine of the
k-set-consensus impossibility).

Scope of this implementation
----------------------------
Simulated protocols are *full-information snapshot protocols*: each
simulated process alternates «write my state» / «scan everyone's state»
until it decides (the normal form every wait-free register protocol can be
compiled to).  The only nondeterminism is what each scan returns — so that
is the only thing simulators must agree on, and they do, via one
safe-agreement instance per (simulated process, round):

* every simulator performs a real scan of the simulated memory and
  proposes its view;
* safe agreement picks one proposal; the winning view drives the simulated
  process's deterministic transition, so all simulators compute identical
  simulated states;
* writes are idempotent (every simulator writes the same agreed value into
  the simulated process's segment).

A simulator that crashes inside one instance's unsafe section blocks only
that simulated process; simulators cycle over simulated processes with the
non-blocking announce / try-decide interface, so every other simulated
process keeps making progress — the BG containment property, which the
tests crash-inject to verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.algorithms.helpers import build_spec
from repro.algorithms import safe_agreement
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


@dataclass(frozen=True)
class SimulatedProtocol:
    """A full-information snapshot protocol for ``p`` simulated processes.

    ``transition(q, state, view) -> (new_state, decision)`` consumes the
    agreed scan ``view`` (a tuple of the latest written states, ``None``
    for silent processes) and must be **deterministic**; ``decision`` is
    ``None`` until the simulated process decides.  ``initial_state(q,
    input)`` seeds the per-process state, which is also what gets written
    to the simulated memory before each scan.
    """

    n_processes: int
    initial_state: Callable[[int, Any], Any]
    transition: Callable[[int, Any, Tuple[Any, ...]], Tuple[Any, Optional[Any]]]
    max_rounds: int = 64


def write_scan_protocol(n_processes: int, rounds: int = 1) -> SimulatedProtocol:
    """The canonical test protocol: write input, scan, repeat ``rounds``
    times, then decide the set of inputs seen (as a sorted tuple).  Its
    decisions reveal exactly which interleaving the simulators agreed on.
    """

    def initial_state(q: int, value: Any) -> Any:
        return ("input", value)

    def transition(q: int, state: Any, view: Tuple[Any, ...]) -> Tuple[Any, Optional[Any]]:
        kind, payload = state[0], state[1]
        round_index = 0 if kind == "input" else state[2]
        # Every cell carries its process's input as the payload, whatever
        # round that process has reached.
        seen = tuple(sorted(cell[1] for cell in view if cell is not None))
        if round_index + 1 >= rounds:
            return state, seen
        return ("working", payload, round_index + 1), None

    return SimulatedProtocol(
        n_processes=n_processes,
        initial_state=initial_state,
        transition=transition,
        max_rounds=rounds + 1,
    )


def bg_objects(protocol: SimulatedProtocol, n_simulators: int) -> dict:
    """Shared objects: the simulated memory plus one safe-agreement
    instance per (simulated process, round)."""
    objects: dict = {
        "mem": AtomicSnapshotSpec(protocol.n_processes, initial=None)
    }
    for q in range(protocol.n_processes):
        for r in range(protocol.max_rounds):
            instance = safe_agreement.SafeAgreementInstance(
                _instance_name(q, r), n_simulators
            )
            objects.update(instance.objects())
    return objects


def _instance_name(q: int, round_index: int) -> str:
    return f"sa[{q},{round_index}]"


def simulator_program(
    protocol: SimulatedProtocol,
    sim_id: int,
    inputs: Sequence[Any],
    give_up_after_sweeps: int = 16,
) -> Generator:
    """One simulator: cycle over simulated processes, advancing each by one
    write/scan/agree/transition round per visit, skipping processes whose
    current agreement instance is still unsafe.

    Returns the dict of simulated decisions this simulator witnessed.  The
    simulator retires after ``give_up_after_sweeps`` consecutive sweeps
    without progress — necessary because a simulator crashed inside an
    unsafe section blocks its instance forever and survivors must not spin
    eternally.  The BG guarantee is about the union of witnessed
    decisions: with at most f crashed simulators, the surviving
    simulators' sweeps jointly complete all but at most f simulated
    processes (crash-injected in the tests).
    """
    states: Dict[int, Any] = {
        q: protocol.initial_state(q, inputs[q]) for q in range(protocol.n_processes)
    }
    rounds: Dict[int, int] = {q: 0 for q in range(protocol.n_processes)}
    announced: Dict[Tuple[int, int], bool] = {}
    decisions: Dict[int, Any] = {}
    # Keep cycling while some undecided simulated process might advance.
    stalled_sweeps = 0
    while len(decisions) < protocol.n_processes and stalled_sweeps < give_up_after_sweeps:
        progressed = False
        for q in range(protocol.n_processes):
            if q in decisions or rounds[q] >= protocol.max_rounds:
                continue
            r = rounds[q]
            instance = _instance_name(q, r)
            if not announced.get((q, r)):
                # Write q's current state (idempotent across simulators),
                # then propose a freshly scanned view.
                yield invoke("mem", "update", q, states[q])
                view = yield invoke("mem", "scan")
                yield from safe_agreement.announce(instance, sim_id, view)
                announced[(q, r)] = True
            agreed_view = yield from safe_agreement.try_decide(instance)
            if agreed_view is None:
                continue  # unsafe: some simulator parked mid-announce
            new_state, decision = protocol.transition(q, states[q], agreed_view)
            states[q] = new_state
            rounds[q] = r + 1
            if decision is not None:
                decisions[q] = decision
            progressed = True
        if progressed:
            stalled_sweeps = 0
        else:
            stalled_sweeps += 1
    return dict(sorted(decisions.items()))


def simulation_spec(
    protocol: SimulatedProtocol,
    n_simulators: int,
    inputs: Sequence[Any],
) -> SystemSpec:
    """System of ``n_simulators`` simulators jointly running ``protocol``
    on ``inputs`` (one input per simulated process)."""
    if len(inputs) != protocol.n_processes:
        raise ValueError("one input per simulated process required")
    objects = bg_objects(protocol, n_simulators)
    frozen_inputs = tuple(inputs)

    def program(sim_id: int, _value: Any) -> Generator:
        result = yield from simulator_program(protocol, sim_id, frozen_inputs)
        return result

    return build_spec(objects, program, [None] * n_simulators)
