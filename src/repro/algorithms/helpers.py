"""Shared plumbing for protocol construction.

Programs in this package are written as generator functions taking
``(pid, input, ...)``; :func:`programs_from` closes them over their
arguments into the zero-argument factories the runtime wants, and
:func:`build_spec` assembles a full :class:`~repro.runtime.system.SystemSpec`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro.runtime.system import SystemSpec


def programs_from(
    program: Callable, inputs: Sequence[Any]
) -> List[Callable]:
    """Close ``program(pid, value)`` over each pid/input pair.

    Returns one zero-argument generator factory per process, suitable for
    :class:`~repro.runtime.system.SystemSpec`.
    """

    def make(pid: int, value: Any) -> Callable:
        return lambda: program(pid, value)

    return [make(pid, value) for pid, value in enumerate(inputs)]


def build_spec(
    objects: Mapping[str, Any],
    program: Callable,
    inputs: Sequence[Any],
) -> SystemSpec:
    """System spec where process ``i`` runs ``program(i, inputs[i])``."""
    return SystemSpec(objects, programs_from(program, inputs))


def inputs_dict(inputs: Sequence[Any]) -> Dict[int, Any]:
    """``pid -> input`` mapping for task validators."""
    return dict(enumerate(inputs))
