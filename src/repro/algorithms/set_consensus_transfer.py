"""The positive direction of the implementability theorem.

(N, K)-set consensus from (m, j)-set-consensus objects and registers:
split the N processes into ``floor(N/m)`` full cohorts of m plus a
remainder cohort; each cohort proposes to its own object and decides the
response.  Full cohorts contribute at most j distinct decisions, the
remainder at most ``min(N mod m, j)`` — total

    K = j * floor(N/m) + min(N mod m, j),

exactly :func:`repro.core.theorem.max_agreement`.  The matching negative
direction (no construction does better) is the theorem's lower bound; the
experiments exhibit the adversary that drives this very protocol to the
bound, showing the analysis tight (experiment E4).
"""

from __future__ import annotations

from math import ceil
from typing import Any, Generator, Sequence

from repro.algorithms.helpers import build_spec
from repro.core.theorem import max_agreement
from repro.errors import ImplementabilityError
from repro.objects.set_consensus import SetConsensusSpec
from repro.runtime.ops import invoke
from repro.runtime.system import SystemSpec


def transfer_spec(m: int, j: int, inputs: Sequence[Any]) -> SystemSpec:
    """The partition protocol: N = len(inputs) processes over
    ceil(N/m) (m, j)-set-consensus objects."""
    n_processes = len(inputs)
    if n_processes == 0:
        raise ValueError("need at least one process")
    n_objects = ceil(n_processes / m)
    objects = {f"S{b}": SetConsensusSpec(m, j) for b in range(n_objects)}

    def program(pid: int, value: Any) -> Generator:
        block = pid // m
        decision = yield invoke(f"S{block}", "propose", value)
        return decision

    return build_spec(objects, program, inputs)


def transfer_bound(m: int, j: int, n_processes: int) -> int:
    """Worst-case distinct decisions of :func:`transfer_spec` — the
    theorem's exact agreement value."""
    return max_agreement(n_processes, m, j)


def checked_transfer_spec(
    n: int, k: int, m: int, j: int, inputs: Sequence[Any]
) -> SystemSpec:
    """Like :func:`transfer_spec`, but first verifies the theorem permits
    implementing (n, k)-set consensus from (m, j) at all, raising
    :class:`~repro.errors.ImplementabilityError` otherwise.

    ``len(inputs)`` must not exceed n.
    """
    from repro.core.theorem import is_implementable

    if len(inputs) > n:
        raise ValueError(f"at most n={n} participants allowed")
    if not is_implementable(n, k, m, j):
        raise ImplementabilityError(
            f"({n}, {k})-set consensus is not implementable from "
            f"({m}, {j})-set-consensus objects: needs "
            f"{max_agreement(n, m, j)}-agreement at best"
        )
    return transfer_spec(m, j, inputs)
