"""The structured event bus: one emit call, pluggable destinations.

Events are ``(name, fields)`` pairs — a short dotted name plus a flat dict
of JSON-serializable fields.  Producers call :func:`emit`; the bus fans
out to the installed :class:`Sink` and to any registered subscribers
(callables, e.g. a live :class:`~repro.obs.metrics.MetricsRegistry` or a
:class:`~repro.obs.progress.ProgressReporter`).

The default sink is :data:`NULL_SINK` and the subscriber list is empty, in
which case :func:`is_enabled` is False.  Hot paths guard event
construction behind that flag::

    if events.is_enabled():
        events.emit("step", pid=pid, object=op.target, method=op.method)

so a run with no instrumentation attached pays a single attribute check
per step — measured at well under the 5% overhead budget by
``benchmarks/bench_e10_runtime.py::test_e10_obs_overhead``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

Subscriber = Callable[[str, Dict[str, Any]], None]


class Sink:
    """Destination for events.  Subclasses override :meth:`emit`.

    ``enabled`` is a class-level flag the bus consults before building
    event dicts; only :class:`NullSink` sets it False.
    """

    enabled = True

    def emit(self, name: str, fields: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""


class NullSink(Sink):
    """Discards everything; the zero-overhead default.

    Because ``enabled`` is False the bus never even calls :meth:`emit`
    (tests assert this — see ``tests/obs/test_events.py``).
    """

    enabled = False

    def emit(self, name: str, fields: Dict[str, Any]) -> None:
        pass


class RingBufferSink(Sink):
    """Keeps the last ``capacity`` events in memory.

    Useful in tests and for post-mortem inspection of a failing run
    without paying for a file.
    """

    def __init__(self, capacity: int = 4096):
        from collections import deque

        self.capacity = capacity
        self._events: "Any" = deque(maxlen=capacity)

    def emit(self, name: str, fields: Dict[str, Any]) -> None:
        self._events.append((name, dict(fields)))

    @property
    def events(self) -> List[Tuple[str, Dict[str, Any]]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()


class JsonlSink(Sink):
    """Appends one JSON object per event to a file.

    Each line is ``{"i": <sequence number>, "event": <name>, ...fields}``.
    The sequence number is a monotonic per-sink counter, so archived
    streams keep their order even if post-processed.  Values that JSON
    cannot encode are stringified via ``repr`` rather than failing the
    run being observed.
    """

    def __init__(self, path_or_file: Union[str, Any]):
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns_file = False
            self.path: Optional[str] = None
        else:
            from repro.fsutil import ensure_parent

            self.path = ensure_parent(str(path_or_file))
            self._file = open(self.path, "w", encoding="utf-8")
            self._owns_file = True
        self._count = 0

    def emit(self, name: str, fields: Dict[str, Any]) -> None:
        record = {"i": self._count, "event": name}
        for key, value in fields.items():
            if key in ("i", "event"):
                key = f"field_{key}"
            record[key] = value
        try:
            line = json.dumps(record, default=repr)
        except (TypeError, ValueError):
            line = json.dumps({"i": self._count, "event": name, "error": "unserializable"})
        self._file.write(line + "\n")
        self._count += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()


class JsonlReadStats:
    """Line accounting surfaced by :func:`read_jsonl`.

    ``skipped`` counts corrupt lines (JSON that fails to parse, or parses
    to something other than an object) — the usual debris of a trace from
    a killed run, whose final line is truncated mid-record.
    """

    __slots__ = ("lines", "events", "skipped")

    def __init__(self) -> None:
        self.lines = 0
        self.events = 0
        self.skipped = 0


def read_jsonl(
    path: str, stats: Optional[JsonlReadStats] = None
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Stream ``(name, fields)`` pairs back out of a JSONL event file.

    Blank lines and records without an ``event`` key are skipped, so the
    format can grow new record kinds without breaking old readers.
    Corrupt lines (e.g. the truncated tail of a trace from a killed run)
    are skipped too rather than aborting the read; pass a
    :class:`JsonlReadStats` to count them.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if stats is not None:
                stats.lines += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if stats is not None:
                    stats.skipped += 1
                continue
            if not isinstance(record, dict):
                if stats is not None:
                    stats.skipped += 1
                continue
            if "event" not in record:
                continue  # future record kind, not corruption
            name = record.pop("event")
            record.pop("i", None)
            if stats is not None:
                stats.events += 1
            yield name, record


#: The shared zero-overhead sink (and the bus default).
NULL_SINK = NullSink()

_sink: Sink = NULL_SINK
_subscribers: List[Subscriber] = []
_active = False


def _recompute_active() -> None:
    global _active
    _active = _sink.enabled or bool(_subscribers)


def is_enabled() -> bool:
    """True when at least one real sink or subscriber is attached.

    Hot paths check this before building event field dicts.
    """
    return _active


def get_sink() -> Sink:
    """The currently installed sink."""
    return _sink


def set_sink(sink: Optional[Sink]) -> Sink:
    """Install ``sink`` as the bus destination (``None`` → :data:`NULL_SINK`).

    Returns the previously installed sink so callers can restore it.
    """
    global _sink
    previous = _sink
    _sink = NULL_SINK if sink is None else sink
    _recompute_active()
    return previous


@contextmanager
def use_sink(sink: Optional[Sink]):
    """Install ``sink`` for the duration of a ``with`` block."""
    previous = set_sink(sink)
    try:
        yield sink
    finally:
        set_sink(previous)


def subscribe(fn: Subscriber) -> Subscriber:
    """Register a ``fn(name, fields)`` callback for every event."""
    _subscribers.append(fn)
    _recompute_active()
    return fn


def unsubscribe(fn: Subscriber) -> None:
    """Remove a previously registered subscriber (idempotent)."""
    try:
        _subscribers.remove(fn)
    except ValueError:
        pass
    _recompute_active()


def emit(name: str, **fields: Any) -> None:
    """Deliver an event to the sink and all subscribers.

    Safe to call unconditionally (a disabled bus discards immediately),
    but hot paths should guard with :func:`is_enabled` to skip building
    the fields dict at all.
    """
    if not _active:
        return
    if _sink.enabled:
        _sink.emit(name, fields)
    for fn in _subscribers:
        fn(name, fields)
