"""Witness explanation: ddmin shrinking and human-readable rendering.

A captured counterexample (see :mod:`repro.obs.witness`) is *replayable*
but rarely *readable* — the first refuting execution an exhaustive DFS
finds routinely carries dozens of steps that have nothing to do with the
violation.  This module turns an archived witness into an explanation in
two moves:

1. **Shrink** — :func:`shrink_execution` runs Zeller-style delta
   debugging (:func:`ddmin`) over the witness's full decision sequence
   (fault decisions — crashes *and* recoveries — included), replay-
   validating every candidate through
   :meth:`~repro.runtime.system.SystemSpec.replay` and keeping only
   subsequences that still satisfy the witness predicate.  The result is
   **1-minimal**: removing any single decision either breaks the replay
   or no longer violates the property.  The search is deterministic —
   same spec, decisions, and predicate always shrink to the same
   schedule — so explanations are byte-stable across reruns and
   machines.
2. **Render** — three views over the shrunk execution, all built from
   the same neutral :class:`StepView` sequence so they agree with each
   other: :func:`lane_diagram` (ASCII space-time lanes, one column per
   process, with the happens-before edges of the logical operation
   history below), :func:`lanes_html` (the same lanes as an embeddable
   HTML table, used by the run report), and :func:`narrative`
   (step-by-step prose ending in the decision-set summary).

``python -m repro explain <witness.jsonl | RUN_ID>`` (:func:`run_explain`)
glues it together: resolve a bundle path or a ledger-linked run id,
replay, shrink, render.  Shrinking emits a ``witness_shrunk`` event,
which the metrics registry folds into ``witness_shrink_steps`` /
``witness_min_length`` histograms.

Everything here is deliberately wall-clock free: positions in diagrams
are logical step indices, and no renderer embeds a timestamp, so two
invocations over the same bundle produce identical bytes (asserted in
CI).  See docs/EXPLAIN.md for the reading guide.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from html import escape
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import events as _events
from repro.runtime.execution import Execution
from repro.runtime.history import History, history_from_execution
from repro.runtime.system import SystemSpec

Decision = Tuple[int, int]


# ----------------------------------------------------------------------
# ddmin — deterministic delta debugging over decision sequences
# ----------------------------------------------------------------------
def ddmin(
    items: Sequence[Any],
    test: Callable[[List[Any]], bool],
    *,
    max_tests: int = 100_000,
) -> Tuple[List[Any], int]:
    """Minimize ``items`` to a 1-minimal subsequence still passing ``test``.

    Classic ddmin (Zeller & Hildebrandt): partition into ``n`` chunks,
    try removing each chunk (complement testing), double granularity
    when stuck.  Returns ``(minimal, tests_run)``.

    Guarantees:

    * the result passes ``test`` (assuming the input did — this is
      *checked*: a ``ValueError`` is raised otherwise, because a witness
      that fails its own predicate is a bug worth surfacing, not
      shrinking);
    * the result is **1-minimal**: no single element can be removed
      without failing ``test``;
    * the run is deterministic — chunks are tried in a fixed order and
      nothing samples randomness, so equal inputs give equal outputs.

    ``test`` must itself be deterministic; results are memoized by
    candidate content, so a flaky predicate would be masked rather than
    averaged.  ``max_tests`` is a runaway backstop, far above anything a
    witness-sized sequence can hit.
    """
    memo: Dict[Tuple[Any, ...], bool] = {}
    tests_run = 0

    def run_test(candidate: List[Any]) -> bool:
        nonlocal tests_run
        key = tuple(candidate)
        if key in memo:
            return memo[key]
        if tests_run >= max_tests:
            return False
        tests_run += 1
        memo[key] = bool(test(candidate))
        return memo[key]

    current = list(items)
    if not run_test(current):
        raise ValueError("ddmin: the unshrunk input does not pass the test")
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if candidate and run_test(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, tests_run


@dataclass
class ShrinkResult:
    """Outcome of :func:`shrink_execution`.

    ``execution`` is the replayed, finalized run of the minimal decision
    sequence ``decisions``; ``original_length`` counts the unshrunk
    decisions (crash decisions included) for the removed-steps account.
    """

    execution: Execution
    decisions: List[Decision] = field(default_factory=list)
    original_length: int = 0
    tests: int = 0

    @property
    def min_length(self) -> int:
        return len(self.decisions)

    @property
    def removed(self) -> int:
        return self.original_length - self.min_length


def shrink_execution(
    spec: SystemSpec,
    execution: Execution,
    predicate: Callable[[Execution], bool],
) -> ShrinkResult:
    """ddmin a witness execution down to a 1-minimal refuting schedule.

    Candidates are subsequences of :attr:`Execution.full_decisions`, so
    fault decisions (crashes and recoveries) shrink away exactly like
    step decisions when the violation does not need them — a recovery
    whose crash was dropped replays as a no-op, so holes cannot corrupt
    the candidate.  A candidate passes only if it still
    *replays* — dropping a decision routinely invalidates later ones
    (the pid is no longer enabled, the outcome index is out of range,
    the protocol trips over a hole in its own state), and any exception
    from the replay is treated as "predicate not satisfied", not an
    error — and its finalized execution still satisfies ``predicate``.

    Raises ``ValueError`` when the witness itself fails ``predicate``
    (spec drift caught by the caller's fingerprint check should make
    this near-impossible; a fresh capture bug should be loud).
    """
    original = list(execution.full_decisions)
    best: Dict[Tuple[Decision, ...], Execution] = {}

    def attempt(candidate: List[Decision]) -> bool:
        try:
            replayed = spec.replay(candidate).finalize()
        except Exception:
            return False
        if predicate(replayed):
            best[tuple(candidate)] = replayed
            return True
        return False

    try:
        minimal, tests = ddmin(original, attempt)
    except ValueError:
        raise ValueError(
            "witness execution does not satisfy its own predicate on "
            "replay — the capture or its provenance is wrong"
        )
    result = ShrinkResult(
        execution=best[tuple(minimal)],
        decisions=minimal,
        original_length=len(original),
        tests=tests,
    )
    if _events.is_enabled():
        _events.emit(
            "witness_shrunk",
            original_length=result.original_length,
            min_length=result.min_length,
            removed=result.removed,
            tests=result.tests,
        )
    return result


# ----------------------------------------------------------------------
# StepView — the renderer-neutral event sequence
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StepView:
    """One lane-diagram event: an atomic step, a crash-stop, or a
    recovery.

    Everything is pre-stringified (args and responses as ``repr`` text)
    so views built live from an :class:`Execution` and views rebuilt
    from an archived bundle's compact ``steps`` table render
    identically.
    """

    kind: str  # "step" | "crash" | "recover"
    pid: int
    target: str = ""
    method: str = ""
    args: Tuple[str, ...] = ()
    response: str = ""

    def cell(self) -> str:
        if self.kind == "crash":
            return "CRASH"
        if self.kind == "recover":
            return "RECOVER"
        return f"{self.target}.{self.method}({', '.join(self.args)}) -> {self.response}"


class _FaultCursor:
    """Interleaves ``(step_index, pid)`` crash and recovery records into
    fault :class:`StepView` rows, in the same order
    :func:`~repro.runtime.execution.merge_fault_decisions` emits them
    (crashes of live pids first, then recoveries of crashed pids, per
    step index) — so lane diagrams and replayed decision sequences
    always agree on event order."""

    def __init__(self, crashes, recoveries):
        self.crashes = list(crashes)
        self.recoveries = list(recoveries)
        self.crashed: set = set()
        self._ci = 0
        self._ri = 0

    def drain(self, at: float) -> List[StepView]:
        views: List[StepView] = []
        while True:
            if (
                self._ci < len(self.crashes)
                and self.crashes[self._ci][0] <= at
                and self.crashes[self._ci][1] not in self.crashed
            ):
                pid = self.crashes[self._ci][1]
                self.crashed.add(pid)
                views.append(StepView(kind="crash", pid=pid))
                self._ci += 1
                continue
            if (
                self._ri < len(self.recoveries)
                and self.recoveries[self._ri][0] <= at
                and self.recoveries[self._ri][1] in self.crashed
            ):
                pid = self.recoveries[self._ri][1]
                self.crashed.discard(pid)
                views.append(StepView(kind="recover", pid=pid))
                self._ri += 1
                continue
            return views


@dataclass
class WitnessView:
    """A renderable witness: events plus the per-process outcome."""

    views: List[StepView]
    pids: List[int]
    outputs: Dict[int, str]  # pid -> repr of the decided value
    statuses: Dict[int, str]  # pid -> final status string
    history: Optional[History] = None

    def decision_set(self) -> List[str]:
        return sorted(set(self.outputs.values()))


def view_from_execution(execution: Execution) -> WitnessView:
    """Build the renderable view of a live (or replayed) execution."""
    views: List[StepView] = []
    faults = _FaultCursor(execution.crashes, execution.recoveries)
    for step in execution.steps:
        views.extend(faults.drain(step.index))
        views.append(
            StepView(
                kind="step",
                pid=step.pid,
                target=step.operation.target,
                method=step.operation.method,
                args=tuple(repr(a) for a in step.operation.args),
                response=repr(step.response),
            )
        )
    views.extend(faults.drain(float("inf")))
    try:
        history = history_from_execution(execution)
        if not history.events:
            history = None
    except Exception:
        history = None  # no call/return annotations — lanes only
    return WitnessView(
        views=views,
        pids=sorted(execution.statuses),
        outputs={pid: repr(execution.outputs[pid]) for pid in execution.outputs},
        statuses={
            pid: execution.statuses[pid].value for pid in execution.statuses
        },
        history=history,
    )


def view_from_record(record: Dict[str, Any]) -> WitnessView:
    """Build the renderable view straight from an archived bundle.

    Used when the witness's spec provenance cannot be resolved: the
    compact ``steps`` table (args/responses already ``repr``-ed at
    capture time) renders without replaying — no happens-before edges,
    since those need the replay's annotations.
    """
    views: List[StepView] = []
    trace = record.get("trace", {})
    faults = _FaultCursor(
        [(at, pid) for at, pid in trace.get("crashes", [])],
        [(at, pid) for at, pid in trace.get("recoveries", [])],
    )
    for index, (pid, target, method, args, response) in enumerate(
        record.get("steps", [])
    ):
        views.extend(faults.drain(index))
        views.append(
            StepView(
                kind="step",
                pid=int(pid),
                target=str(target),
                method=str(method),
                args=tuple(str(a) for a in args),
                response=str(response),
            )
        )
    views.extend(faults.drain(float("inf")))
    statuses = {
        int(pid): str(status) for pid, status in record.get("statuses", {}).items()
    }
    return WitnessView(
        views=views,
        pids=sorted(statuses),
        outputs={
            int(pid): str(value)
            for pid, value in record.get("outputs", {}).items()
        },
        statuses=statuses,
    )


# ----------------------------------------------------------------------
# Renderer 1: ASCII space-time lane diagram
# ----------------------------------------------------------------------
def _hb_edges(history: History) -> List[Tuple[Any, Any]]:
    """Happens-before edges of the complete logical operations, reduced
    to the covering relation (transitive reduction) so the list shows
    the *structure*, not every consequence of it."""
    done = sorted(history.complete, key=lambda e: (e.invoked_at, e.pid))
    edges = []
    for a in done:
        for b in done:
            if a is b or not a.precedes(b):
                continue
            if any(
                c is not a and c is not b and a.precedes(c) and c.precedes(b)
                for c in done
            ):
                continue
            edges.append((a, b))
    return edges


def lane_diagram(view: WitnessView) -> str:
    """ASCII space-time diagram: one column (lane) per process, one row
    per event, time flowing top to bottom.

    Idle lanes show ``.`` at each tick so the eye can follow a process
    through time; crash rows mark the lane with ``CRASH`` and the lane
    goes silent below — until a ``RECOVER`` row revives it (the lane
    resumes ticking, its program restarted from scratch).  After the
    event rows, each lane closes with the process's outcome, and — when
    the logical-operation history is available — the happens-before
    edges (transitive reduction) are listed below the diagram.
    """
    pids = view.pids or sorted({v.pid for v in view.views})
    cells: List[Dict[int, str]] = [
        {v.pid: v.cell()} for v in view.views
    ]
    outcome_row: Dict[int, str] = {}
    for pid in pids:
        status = view.statuses.get(pid, "?")
        if pid in view.outputs:
            outcome_row[pid] = f"=> {view.outputs[pid]}"
        else:
            outcome_row[pid] = f"({status})"
    widths = {
        pid: max(
            [len(f"p{pid}"), len(outcome_row.get(pid, ""))]
            + [len(row[pid]) for row in cells if pid in row]
        )
        for pid in pids
    }
    index_width = max(4, len(str(max(len(cells) - 1, 0))))
    lines = [
        " " * index_width
        + "  "
        + "  ".join(f"p{pid}".ljust(widths[pid]) for pid in pids)
    ]
    lines.append(
        "-" * index_width + "  " + "  ".join("-" * widths[pid] for pid in pids)
    )
    crashed: set = set()
    for index, row in enumerate(cells):
        parts = []
        for pid in pids:
            if pid in row:
                parts.append(row[pid].ljust(widths[pid]))
            elif pid in crashed:
                parts.append(" " * widths[pid])
            else:
                parts.append(".".ljust(widths[pid]))
        lines.append(str(index).rjust(index_width) + "  " + "  ".join(parts))
        event = view.views[index]
        if event.kind == "crash":
            crashed.add(event.pid)
        elif event.kind == "recover":
            crashed.discard(event.pid)
    lines.append(
        " " * index_width
        + "  "
        + "  ".join(outcome_row.get(pid, "").ljust(widths[pid]) for pid in pids)
    )
    if view.history is not None:
        edges = _hb_edges(view.history)
        if edges:
            lines.append("")
            lines.append("happens-before (logical operations, covering edges):")
            for a, b in edges:
                lines.append(f"  {a}  -->  {b}")
        pending = view.history.pending
        if pending:
            lines.append("pending (never responded):")
            for event in sorted(pending, key=lambda e: (e.invoked_at, e.pid)):
                lines.append(f"  {event}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Renderer 2: HTML lane view (embeddable fragment + standalone page)
# ----------------------------------------------------------------------
LANES_CSS = """
table.lanes { border-collapse: collapse; font-family: ui-monospace,
              SFMono-Regular, Menlo, monospace; font-size: .8rem; }
table.lanes th, table.lanes td { border: 1px solid #e0e0e0;
              padding: .15rem .5rem; text-align: left; }
table.lanes th { background: #f5f5f7; }
table.lanes td.idle { color: #ccc; text-align: center; }
table.lanes td.gone { background: #fafafa; }
table.lanes td.crash { background: #fdecea; color: #c62828;
              font-weight: 600; }
table.lanes td.recover { background: #e8f5e9; color: #2e7d32;
              font-weight: 600; }
table.lanes td.op { background: #eef3fb; }
table.lanes tr.outcome td { border-top: 2px solid #bbb;
              font-weight: 600; }
"""


def lanes_html(view: WitnessView, caption: str = "") -> str:
    """The lane diagram as an embeddable ``<table class="lanes">``.

    Pure CSS (styles in :data:`LANES_CSS`), no scripts — interactivity
    is the browser's own hover/selection over a real table, keeping the
    run report dependency-free and safe to mail around.
    """
    pids = view.pids or sorted({v.pid for v in view.views})
    out = ['<table class="lanes">']
    if caption:
        out.append(f"<caption>{escape(caption)}</caption>")
    out.append(
        "<tr><th>#</th>"
        + "".join(f"<th>p{pid}</th>" for pid in pids)
        + "</tr>"
    )
    crashed: set = set()
    for index, event in enumerate(view.views):
        row = [f"<tr><td>{index}</td>"]
        for pid in pids:
            if pid == event.pid:
                if event.kind == "crash":
                    row.append('<td class="crash">CRASH</td>')
                elif event.kind == "recover":
                    row.append('<td class="recover">RECOVER</td>')
                else:
                    row.append(f'<td class="op">{escape(event.cell())}</td>')
            elif pid in crashed:
                row.append('<td class="gone"></td>')
            else:
                row.append('<td class="idle">·</td>')
        row.append("</tr>")
        out.append("".join(row))
        if event.kind == "crash":
            crashed.add(event.pid)
        elif event.kind == "recover":
            crashed.discard(event.pid)
    outcome = ['<tr class="outcome"><td></td>']
    for pid in pids:
        if pid in view.outputs:
            outcome.append(f"<td>=&gt; {escape(view.outputs[pid])}</td>")
        else:
            outcome.append(f"<td>({escape(view.statuses.get(pid, '?'))})</td>")
    outcome.append("</tr>")
    out.append("".join(outcome))
    out.append("</table>")
    return "\n".join(out)


def lanes_page(view: WitnessView, title: str = "witness lanes") -> str:
    """A standalone HTML page around :func:`lanes_html` (the ``--html``
    output of ``repro explain``)."""
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{escape(title)}</title>"
        f"<style>{LANES_CSS}</style></head>\n<body>\n"
        f"<h1>{escape(title)}</h1>\n"
        + lanes_html(view)
        + "\n</body></html>\n"
    )


# ----------------------------------------------------------------------
# Renderer 3: step-by-step narrative
# ----------------------------------------------------------------------
def narrative(view: WitnessView) -> str:
    """Prose account of the execution, one sentence per event, closing
    with each process's fate and the decision-set summary."""
    lines: List[str] = []
    counts: Dict[int, int] = {}
    for index, event in enumerate(view.views):
        if event.kind == "crash":
            taken = counts.get(event.pid, 0)
            returns = any(
                later.kind == "recover" and later.pid == event.pid
                for later in view.views[index + 1:]
            )
            fate = "it will come back" if returns else "it never moves again"
            lines.append(
                f"{index:3d}. p{event.pid} crashes after taking {taken} "
                f"step{'s' if taken != 1 else ''}; {fate}."
            )
            continue
        if event.kind == "recover":
            lines.append(
                f"{index:3d}. p{event.pid} recovers with amnesia; its "
                "program restarts from scratch while shared objects keep "
                "their state."
            )
            continue
        counts[event.pid] = counts.get(event.pid, 0) + 1
        call = f"{event.target}.{event.method}({', '.join(event.args)})"
        lines.append(
            f"{index:3d}. p{event.pid} applies {call} and observes "
            f"{event.response}."
        )
    lines.append("")
    for pid in view.pids:
        if pid in view.outputs:
            lines.append(f"p{pid} decides {view.outputs[pid]}.")
        else:
            status = view.statuses.get(pid, "?")
            if status == "crashed":
                lines.append(f"p{pid} crashed before deciding.")
            else:
                lines.append(f"p{pid} never decides (status: {status}).")
    decisions = view.decision_set()
    lines.append(
        f"Decision set: {{{', '.join(decisions)}}} — "
        f"{len(decisions)} distinct value{'s' if len(decisions) != 1 else ''}."
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The `repro explain` core
# ----------------------------------------------------------------------
def resolve_witness_target(
    target: str, ledger_path: Optional[str] = None
) -> List[str]:
    """Resolve the CLI's ``<witness.jsonl | RUN_ID>`` argument to bundle
    paths: an existing file is itself; anything else is looked up in the
    run ledger and must name a record with captured witnesses."""
    if os.path.exists(target):
        return [target]
    from repro.obs import ledger as run_ledger

    path = ledger_path or run_ledger.default_ledger_path()
    records, _skipped = run_ledger.read_ledger(path)
    record = run_ledger.find_record(records, target)  # raises ValueError
    witnesses = record.get("witnesses")
    if not witnesses:
        raise ValueError(
            f"run {record.get('run_id')} has no captured witnesses "
            "(was it run with --witness-dir?)"
        )
    return [str(w) for w in witnesses]


def explain_record(
    record: Dict[str, Any],
    *,
    shrink: bool = True,
    out: Callable[[str], None] = print,
) -> Tuple[WitnessView, Optional[ShrinkResult]]:
    """Replay, shrink, and print one witness record.

    Falls back to rendering the archived step table (no shrink, no
    happens-before edges) when the bundle carries no resolvable spec or
    predicate provenance — an archived witness should always *show*
    something, even when the code that can replay it is absent.
    """
    from repro.obs import witness as _witness

    kind = record.get("kind", "?")
    label = record.get("label") or record.get("trace", {}).get("label") or ""
    header = f"witness: {kind}"
    if label:
        header += f" — {label}"
    if record.get("reason"):
        header += f" ({record['reason']})"
    out(header)
    out(f"source: {record.get('source', '?')}")

    spec = predicate = None
    provenance_problem = None
    try:
        spec = _witness.resolve_spec(record)
        predicate = _witness.resolve_predicate(record)
    except ValueError as error:
        provenance_problem = str(error)

    shrink_result: Optional[ShrinkResult] = None
    if spec is not None and predicate is not None:
        execution = _witness.replay_witness(record, spec)  # fingerprint-checked
        recoveries = (
            f", {len(execution.recoveries)} recovery(ies)"
            if execution.recoveries
            else ""
        )
        out(
            f"replayed: {len(execution.steps)} steps, "
            f"{len(execution.crashes)} crash(es){recoveries}, "
            "fingerprint verified"
        )
        if shrink:
            shrink_result = shrink_execution(spec, execution, predicate)
            out(
                f"shrunk: {shrink_result.original_length} -> "
                f"{shrink_result.min_length} decisions "
                f"({shrink_result.removed} removed, "
                f"{shrink_result.tests} replays tried, 1-minimal)"
            )
            view = view_from_execution(shrink_result.execution)
        else:
            view = view_from_execution(execution)
    else:
        out(
            "note: rendering the archived steps without replay "
            f"({provenance_problem})"
        )
        view = view_from_record(record)

    out("")
    out(lane_diagram(view))
    out("")
    out(narrative(view))
    return view, shrink_result


def run_explain(
    target: str,
    *,
    shrink: bool = True,
    html_out: Optional[str] = None,
    ledger_path: Optional[str] = None,
    out: Callable[[str], None] = print,
) -> int:
    """CLI core of ``repro explain``; returns the exit code.

    2 — the target or its witnesses could not be resolved/read;
    0 — every witness in the bundle(s) rendered.
    """
    from repro.errors import ProtocolError
    from repro.obs import witness as _witness

    try:
        paths = resolve_witness_target(target, ledger_path)
    except ValueError as error:
        out(f"explain: {error}")
        return 2
    pages: List[str] = []
    first = True
    for path in paths:
        try:
            records, skipped = _witness.read_witness(path)
        except OSError as error:
            out(f"explain: cannot read {path}: {error}")
            return 2
        if not records:
            out(f"explain: no witness records in {path}"
                + (f" ({skipped} corrupt lines skipped)" if skipped else ""))
            return 2
        for record in records:
            if not first:
                out("")
                out("=" * 60)
                out("")
            first = False
            out(f"bundle: {path}")
            try:
                view, _shrunk = explain_record(record, shrink=shrink, out=out)
            except (ProtocolError, ValueError) as error:
                out(f"explain: {error}")
                return 2
            if html_out:
                title = record.get("label") or f"{record.get('kind', 'witness')}"
                pages.append(lanes_html(view, caption=title))
    if html_out:
        from repro.fsutil import ensure_parent

        body = "\n<hr>\n".join(pages)
        page = (
            "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
            f"<title>repro explain — {escape(target)}</title>"
            f"<style>{LANES_CSS}</style></head>\n<body>\n"
            f"<h1>repro explain — {escape(target)}</h1>\n"
            + body
            + "\n</body></html>\n"
        )
        with open(ensure_parent(html_out), "w", encoding="utf-8") as handle:
            handle.write(page)
        out("")
        out(f"wrote HTML lane view to {html_out}")
    return 0
