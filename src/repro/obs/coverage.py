"""Online coverage and ETA estimation for exhaustive explorations.

An exhaustive DFS knows exactly what it has done (executions yielded) but
not what remains — the tree is only discovered as it is walked.  This
module turns the observables the walk *does* have into a live estimate:

* **rate** — an exponentially-weighted moving average of executions per
  second, computed from successive heartbeats (robust to the bursty
  progress of replay-based DFS);
* **remaining work** — a frontier-weighted bound: every pending prefix at
  depth ``d`` is assumed to expand into roughly ``b ** (L - d)`` maximal
  executions, where ``b`` is the mean branching factor observed so far
  and ``L`` the mean depth of completed executions.  Shallow pending
  prefixes therefore weigh exponentially more than nearly-finished ones,
  which is exactly how DFS frontiers behave;
* **ETA / coverage** — remaining over rate, and done over done+remaining.

The estimator is deterministic given its inputs: the explorer feeds it
from the DFS loop and embeds the outputs in ``explore_heartbeat`` events,
so a replayed trace reconstructs the same estimates the live run showed
(see :meth:`repro.obs.metrics.MetricsRegistry.consume_event`).

Estimates are heuristics, not bounds: a tree whose branching factor
drifts with depth will see the ETA drift too.  They exist so a multi-hour
``repro explore --serve`` answers "roughly how far along is it?" — the
enumeration itself never trusts them.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

#: Estimates are clamped here — beyond ~1e15 pending executions the
#: number is astronomy, not planning, and float exponentiation overflows.
REMAINING_CAP = 1e15


class CoverageEstimator:
    """Incremental rate/remaining/ETA estimator fed by DFS heartbeats.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor for the execution rate; 1.0 means "latest
        interval only", small values smooth harder.
    """

    def __init__(self, alpha: float = 0.3):
        self.alpha = alpha
        self.rate: Optional[float] = None  # executions / second (EWMA)
        self._last_executions: Optional[int] = None
        self._last_elapsed: Optional[float] = None

    # ------------------------------------------------------------------
    # Updating
    # ------------------------------------------------------------------
    def update(
        self,
        executions: int,
        elapsed: float,
        frontier_depths: Mapping[int, int],
        mean_branch: float,
        mean_leaf_depth: float,
    ) -> Dict[str, Any]:
        """Fold in one heartbeat; return the current estimate fields.

        ``frontier_depths`` maps prefix depth -> count of pending prefixes
        at that depth.  The returned dict holds ``rate``,
        ``remaining_estimate``, ``eta_seconds`` and ``coverage`` — any of
        which may be absent when not yet estimable (first heartbeat, zero
        rate); absent beats garbage.
        """
        if self._last_executions is not None and self._last_elapsed is not None:
            d_exec = executions - self._last_executions
            d_time = elapsed - self._last_elapsed
            if d_time > 0 and d_exec >= 0:
                instant = d_exec / d_time
                if self.rate is None:
                    self.rate = instant
                else:
                    self.rate += self.alpha * (instant - self.rate)
        self._last_executions = executions
        self._last_elapsed = elapsed

        remaining = estimate_remaining(
            frontier_depths, mean_branch, mean_leaf_depth
        )
        out: Dict[str, Any] = {}
        if self.rate is not None:
            out["rate"] = round(self.rate, 3)
        if remaining is not None:
            out["remaining_estimate"] = round(remaining, 1)
            total = executions + remaining
            if total > 0:
                out["coverage"] = round(executions / total, 6)
            if self.rate:
                out["eta_seconds"] = round(remaining / self.rate, 3)
        return out


def estimate_remaining(
    frontier_depths: Mapping[int, int],
    mean_branch: float,
    mean_leaf_depth: float,
) -> Optional[float]:
    """Frontier-weighted remaining-execution estimate.

    Each pending prefix at depth ``d`` contributes
    ``max(1, mean_branch ** (mean_leaf_depth - d))`` expected maximal
    executions (it is at least one execution itself).  ``None`` when the
    inputs cannot support an estimate yet (no branching statistics); an
    empty frontier estimates 0.0 — the walk is done.
    """
    if not frontier_depths:
        return 0.0
    if mean_branch <= 0 or mean_leaf_depth <= 0:
        return None
    base = max(mean_branch, 1.0)
    total = 0.0
    for depth, count in frontier_depths.items():
        levels = mean_leaf_depth - float(depth)
        if levels <= 0 or base == 1.0:
            per_prefix = 1.0
        else:
            try:
                per_prefix = min(base ** levels, REMAINING_CAP)
            except OverflowError:
                per_prefix = REMAINING_CAP
        total += per_prefix * count
        if total >= REMAINING_CAP:
            return REMAINING_CAP
    return total
