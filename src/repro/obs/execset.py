"""Execution-set digests: the set of runs behind a verdict, as an artifact.

Every verdict the explorer produces is a claim about a *set of
executions* — Gafni's "captured by a set of runs" framing made literal.
Until now that set existed only as a scalar count; two runs that visited
the same *number* of executions could silently have visited different
executions (the exact failure mode frontier sharding and DPOR-style
reductions must be audited against).  This module turns execution-set
identity into a content-addressed, persisted, diffable artifact.

Format (``repro-execset/1``): JSONL with one header object, one compact
record per maximal execution, and one footer object::

    {"format": "repro-execset/1", "spec": {"task": "set-consensus", ...}}
    {"id": "9f2c01d4a8b3", "depth": 7, "decisions": [[0,0],[1,-1],...],
     "config": "5b1d9e0a7c4f2e61", "canonical": "e61a...", "distinct": 1,
     "done": false, "crashes": 1, "recoveries": 0}
    ...
    {"format": "repro-execset/1", "footer": true, "records": 42,
     "digest": "<64 hex>", "base_digest": null, "base_records": 0,
     "merged_digest": "<64 hex>", "total_records": 42}

Per-record fields:

``id``
    :func:`repro.obs.fingerprint.content_id` over the execution's
    ``full_decisions`` + ``crashes`` + ``recoveries`` — the same material
    (and hashing convention) as witness bundle ids, so an execution's
    identity is invariant between live capture and replayed capture.
``decisions``
    The ``full_decisions`` sequence itself (crash/recovery sentinels
    inline), so a missing execution can be replayed through
    :meth:`~repro.runtime.system.SystemSpec.replay` and rendered by
    :mod:`repro.obs.explain` when two runs diverge.
``config`` / ``canonical``
    The final configuration's exact and pid-symmetry-quotiented
    fingerprints (:mod:`repro.obs.fingerprint`).
``depth`` / ``distinct`` / ``done`` / ``crashes`` / ``recoveries``
    Decision depth and the execution's verdict contribution: how many
    distinct values were decided, whether every process finished, and
    the fault counts.

Records are written sorted by ``id`` and carry no wall-clock, so two
identical explorations produce byte-identical files.  The footer digest
is **order-independent**: the XOR of the full sha256 of each distinct
record id.  XOR over a *set* of ids makes shard digests mergeable
without ordering guarantees — the digest of a disjoint union is the XOR
of the shard digests, and any permutation of the records folds to the
same value.  A resumed run seeds its digest from the checkpoint header's
``execset`` entry (see :mod:`repro.faults.checkpoint`), so
``merged_digest`` covers the whole multi-session exploration while
``digest`` covers only this file's records.

``repro diff`` (:mod:`repro.obs.diff`) consumes these files (directly or
through the run ledger) and compares two runs on set identity, not just
counts — the acceptance instrument for the ROADMAP's sharding and
DPOR/symmetry items.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.fsutil import ensure_parent
from repro.obs import events as _events
from repro.obs import ledger as _ledger
from repro.obs.fingerprint import (
    FINGERPRINT_LENGTH,
    canonical_body,
    content_digest,
    content_id,
    stable_json,
)

FORMAT = "repro-execset/1"

#: Default directory for ``repro explore``'s digest streams, next to the
#: run ledger and witness bundles.
DEFAULT_DIR = os.path.join(".repro", "execsets")


def default_dir() -> str:
    """Directory for default-named streams: ``$REPRO_EXECSET_DIR`` when
    set (the test suite points it at a tmpdir, mirroring
    ``$REPRO_LEDGER``), else :data:`DEFAULT_DIR`."""
    return os.environ.get("REPRO_EXECSET_DIR") or DEFAULT_DIR

#: The empty set's digest: 256 zero bits, as hex.
ZERO_DIGEST = "0" * 64

#: Hex digits of the digest surfaced in tables, ledgers, and dashboards
#: (the full 64-hex value is kept in files and JSON for comparisons).
SHORT_DIGEST_LENGTH = 16


def execution_id(execution: Any) -> str:
    """Content address of one maximal execution.

    Hashes ``full_decisions`` + ``crashes`` + ``recoveries`` through
    :func:`~repro.obs.fingerprint.content_id` — the witness-id material —
    so live and replayed captures of the same execution share an id.
    The raw tuple sequences are hashed directly: JSON serializes tuples
    and lists identically, so the id matches the list form persisted in
    the stream without per-execution list rebuilding (this runs once per
    maximal execution on the explorer hot path).
    """
    return content_id(
        [execution.full_decisions, execution.crashes, execution.recoveries]
    )


def fold_digest(digest_hex: str, record_id: str) -> str:
    """Fold one record id into a rolling set digest (XOR of sha256s).

    XOR is commutative and associative, so any permutation of the same
    records folds to the same digest — the property the merge and
    resume paths rely on.
    """
    return format(
        int(digest_hex, 16) ^ int(content_digest(record_id), 16), "064x"
    )


def set_digest(ids: Iterable[str]) -> str:
    """The order-independent digest of a *set* of record ids.

    Duplicates are folded once: the digest names the set, not the
    multiset, so overlapping shards merge to the digest of their union.
    """
    accumulator = int(ZERO_DIGEST, 16)
    seen = set()
    for record_id in ids:
        if record_id in seen:
            continue
        seen.add(record_id)
        accumulator ^= int(content_digest(record_id), 16)
    return format(accumulator, "064x")


def merge_digests(a: str, b: str) -> str:
    """Digest of a disjoint union, from the two shard digests."""
    return format(int(a, 16) ^ int(b, 16), "064x")


def short_digest(digest_hex: Optional[str]) -> str:
    """Display form of a digest (``n/a`` for ``None``)."""
    if not digest_hex:
        return "n/a"
    return str(digest_hex)[:SHORT_DIGEST_LENGTH]


def record_for(
    execution: Any, system: Optional[Any] = None,
    value_alphabet: Optional[List[Any]] = None,
    canonical_cache: Optional[Dict[str, str]] = None,
    record_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one ``repro-execset/1`` record from a maximal execution.

    ``system`` is the live (or replayed) :class:`~repro.runtime.system.
    System` at the execution's final configuration; when given, the
    record carries its exact and canonical fingerprints.  One
    ``configuration()`` snapshot feeds both hashes.

    ``canonical_cache`` maps full config digests to canonical
    fingerprints.  Many executions funnel into few final configurations
    (a 720-execution set-consensus walk reaches only 48), and the
    canonical body — the symmetry quotient — is by far the costliest
    hash, so the recorder keys it by the exact digest it computes
    anyway.  ``record_id`` skips rehashing when the caller already
    computed :func:`execution_id`.
    """
    # full_decisions is a merge-on-access property — fetch it once.
    decisions = execution.full_decisions
    crashes = execution.crashes
    recoveries = execution.recoveries
    if record_id is None:
        record_id = content_id([decisions, crashes, recoveries])
    record: Dict[str, Any] = {
        "id": record_id,
        "depth": len(decisions),
        "decisions": decisions,
        "distinct": len(execution.distinct_outputs()),
        "done": execution.all_done(),
        "crashes": len(crashes),
        "recoveries": len(recoveries),
    }
    if system is not None:
        snapshot = system.configuration()
        config = content_digest(stable_json(snapshot))
        record["config"] = config[:FINGERPRINT_LENGTH]
        canonical = (
            canonical_cache.get(config)
            if canonical_cache is not None
            else None
        )
        if canonical is None:
            canonical = content_digest(
                canonical_body(snapshot, value_alphabet)
            )[:FINGERPRINT_LENGTH]
            if canonical_cache is not None:
                canonical_cache[config] = canonical
        record["canonical"] = canonical
    return record


# ----------------------------------------------------------------------
# The recorder (attachable to an Explorer)
# ----------------------------------------------------------------------
class ExecutionSetRecorder:
    """Accumulates one run's execution-set records and rolling digest.

    Attach to an :class:`~repro.runtime.explorer.Explorer` via its
    ``execset`` parameter: :meth:`observe` is called once per maximal
    execution with the live system still at its final configuration.
    Purely observational — the walk order and every verdict are
    identical with and without it; when unset the hook costs one
    ``None`` check per execution.

    ``base_digest``/``base_records`` seed a resumed run from its
    checkpoint header's digest-so-far, making ``merged_digest`` cover
    the whole multi-session exploration.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        spec_meta: Optional[Dict[str, Any]] = None,
        value_alphabet: Optional[List[Any]] = None,
        base_digest: Optional[str] = None,
        base_records: int = 0,
    ):
        self.path = path
        self.spec_meta = dict(spec_meta or {})
        self.value_alphabet = value_alphabet
        self.base_digest = base_digest
        self.base_records = int(base_records)
        self.records: List[Dict[str, Any]] = []
        self._digest = int(ZERO_DIGEST, 16)
        self._seen: set = set()
        self._canonical_cache: Dict[str, str] = {}

    def observe(self, execution: Any, system: Optional[Any] = None) -> None:
        """Fold one maximal execution into the set (hot-path hook)."""
        record = record_for(
            execution,
            system=system,
            value_alphabet=self.value_alphabet,
            canonical_cache=self._canonical_cache,
        )
        record_id = record["id"]
        if record_id in self._seen:
            return
        self._seen.add(record_id)
        self.records.append(record)
        self._digest ^= int(content_digest(record_id), 16)

    # -- digests -------------------------------------------------------
    @property
    def digest(self) -> str:
        """Digest of this run's own records only."""
        return format(self._digest, "064x")

    @property
    def merged_digest(self) -> str:
        """Digest including the resumed base (equals :attr:`digest` for
        a fresh run)."""
        if self.base_digest:
            return merge_digests(self.base_digest, self.digest)
        return self.digest

    @property
    def total_records(self) -> int:
        return self.base_records + len(self.records)

    def checkpoint_state(self) -> Dict[str, Any]:
        """The digest-so-far carried in checkpoint headers, so a resumed
        run's merged digest is well-defined."""
        return {"digest": self.merged_digest, "records": self.total_records}

    def ledger_summary(self) -> Dict[str, Any]:
        """The ``execset`` field recorded in the run ledger."""
        summary: Dict[str, Any] = {
            "digest": self.merged_digest,
            "records": self.total_records,
        }
        if self.path:
            summary["path"] = self.path
        return summary

    # -- persistence ---------------------------------------------------
    def write(self, path: Optional[str] = None) -> str:
        """Atomically write the ``repro-execset/1`` file.

        Records are sorted by id and the file carries no wall-clock, so
        two identical explorations write byte-identical artifacts.
        Emits an ``execset_digest`` event (digest, record counts, path)
        when the bus is enabled.
        """
        destination = path or self.path
        if destination is None:
            raise ValueError("no execset path configured")
        header: Dict[str, Any] = {"format": FORMAT, "spec": self.spec_meta}
        if self.base_digest:
            header["base_digest"] = self.base_digest
            header["base_records"] = self.base_records
        footer = {
            "format": FORMAT,
            "footer": True,
            "records": len(self.records),
            "digest": self.digest,
            "base_digest": self.base_digest,
            "base_records": self.base_records,
            "merged_digest": self.merged_digest,
            "total_records": self.total_records,
        }
        ensure_parent(os.path.abspath(destination))
        directory = os.path.dirname(os.path.abspath(destination)) or "."
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".execset-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(header, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
                for record in sorted(self.records, key=lambda r: r["id"]):
                    handle.write(
                        json.dumps(
                            record, sort_keys=True, separators=(",", ":")
                        )
                        + "\n"
                    )
                handle.write(
                    json.dumps(footer, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
            os.replace(temp_path, destination)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.path = destination
        _ledger.annotate(execset=self.ledger_summary())
        if _events.is_enabled():
            _events.emit(
                "execset_digest",
                digest=short_digest(self.merged_digest),
                records=len(self.records),
                total_records=self.total_records,
                path=destination,
            )
        return destination


# ----------------------------------------------------------------------
# Reading and merging
# ----------------------------------------------------------------------
@dataclass
class ExecSetFile:
    """A parsed ``repro-execset/1`` file."""

    path: str
    header: Dict[str, Any] = field(default_factory=dict)
    #: ``id -> record``, duplicates collapsed.
    records: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    footer: Dict[str, Any] = field(default_factory=dict)
    skipped: int = 0

    @property
    def spec(self) -> Dict[str, Any]:
        return dict(self.header.get("spec") or {})

    @property
    def own_digest(self) -> str:
        """Digest recomputed from the records actually present."""
        return set_digest(self.records)

    @property
    def merged_digest(self) -> Optional[str]:
        """The footer's whole-exploration digest (recomputed own digest
        folded with the declared base when the footer is missing)."""
        declared = self.footer.get("merged_digest")
        if isinstance(declared, str) and declared:
            return declared
        base = self.header.get("base_digest")
        if isinstance(base, str) and base:
            return merge_digests(base, self.own_digest)
        return self.own_digest

    @property
    def base_records(self) -> int:
        value = self.footer.get("base_records", self.header.get("base_records"))
        return int(value) if isinstance(value, int) else 0

    @property
    def partial(self) -> bool:
        """True when the file's records do not cover the whole digest
        (a resumed run whose parent file is elsewhere)."""
        return self.base_records > 0

    @property
    def consistent(self) -> bool:
        """True when the footer's own-records digest matches the records
        actually read back (an integrity check on the artifact)."""
        declared = self.footer.get("digest")
        if not isinstance(declared, str) or not declared:
            return True  # no footer to check against (truncated write)
        return declared == self.own_digest


def read_execset(path: str) -> ExecSetFile:
    """Parse an execset file, tolerantly.

    Same tolerance as the ledger and witness readers: lines that fail to
    parse are skipped and counted.  Raises ``OSError`` only when the
    file itself cannot be read.
    """
    parsed = ExecSetFile(path=path)
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                parsed.skipped += 1
                continue
            if not isinstance(record, dict):
                parsed.skipped += 1
                continue
            if record.get("format") == FORMAT:
                if record.get("footer"):
                    parsed.footer = record
                else:
                    parsed.header = record
                continue
            record_id = record.get("id")
            if not isinstance(record_id, str) or not record_id:
                parsed.skipped += 1
                continue
            parsed.records.setdefault(record_id, record)
    return parsed


def peek_footer(path: str) -> Optional[Dict[str, Any]]:
    """Tolerant footer read for dashboards: the last line's footer
    object, or ``None`` on any missing/unreadable/malformed file."""
    try:
        with open(path, "rb") as handle:
            try:
                handle.seek(-4096, os.SEEK_END)
            except OSError:
                handle.seek(0)
            tail = handle.read().decode("utf-8", "replace")
    except OSError:
        return None
    for line in reversed(tail.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if isinstance(record, dict) and record.get("footer"):
            return record
        return None
    return None


def merge_records(
    files: Iterable[ExecSetFile],
) -> Tuple[Dict[str, Dict[str, Any]], str]:
    """Union the records of several shards: ``(records, digest)``.

    Deduplicates by id, so overlapping shards merge to the union's
    digest — the property the Hypothesis suite pins.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for parsed in files:
        for record_id, record in parsed.records.items():
            merged.setdefault(record_id, record)
    return merged, set_digest(merged)
