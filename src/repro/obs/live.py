"""Live run telemetry: an in-process HTTP status/metrics endpoint.

``python -m repro <command> --serve [PORT]`` starts a stdlib-only
:class:`ThreadingHTTPServer` next to the running command (default: an
ephemeral port on 127.0.0.1, printed at startup).  Three endpoints:

``GET /status``
    JSON snapshot of the run: command and argv, run id, uptime, open
    span stack, per-span duration breakdown (``spans`` — count and total
    seconds per span name, closed spans only),
    live counters (steps, schedules, runs, states, faults),
    verdict tallies, the latest explorer heartbeat (executions done,
    frontier size, execution rate, coverage and ETA — absent until the
    first heartbeat), suite progress, budget state, last checkpoint,
    the witness bundles captured so far (``witnesses`` — path, kind,
    source per archived deciding execution; absent until one exists),
    and the state-audit summary (``audit`` — revisit ratio, commuting
    fraction, orbit savings; absent until an ``audit_summary`` event
    arrives, see :mod:`repro.obs.audit`).  The execution-set digest
    (``execset`` — digest, record counts, stream path) appears once an
    ``execset_digest`` event arrives (see :mod:`repro.obs.execset`).
``GET /metrics``
    The process-wide metrics registry rendered by
    :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus` — the
    same bytes ``--metrics-out`` would write at this instant.
``GET /events?n=100``
    JSON tail of the last ``n`` (default 100, capped at the ring size)
    bus events, for quick "what is it doing right now" inspection.

Everything is fed by the ordinary event bus: a :class:`StatusBoard` and
a bounded event ring subscribe like any other consumer, so serving adds
no new instrumentation points — and the exploration itself never blocks
on a slow HTTP client (handlers run on daemon threads and only read
snapshots under a lock).

Lifecycle: :func:`serve` starts the server and subscribes the feeds;
:meth:`LiveSession.close` unsubscribes, shuts the server down, and joins
its threads — called from the CLI's ``finally``, it also runs on SIGINT.

The building blocks here are deliberately reusable: the multi-run
``repro serve`` daemon (:mod:`repro.obs.service`) shares
:class:`SnapshotHandler` (JSON/text responses with ``Cache-Control:
no-store``), :class:`EventRing`, and :func:`parse_tail_count` rather
than reimplementing them.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.faults.budget import get_active_budget
from repro.obs import events as _events
from repro.obs import metrics as _metrics

#: Counter events folded into the /status ``counters`` object.
_COUNTED = {
    "step": "steps",
    "schedule_explored": "schedules",
    "run_end": "runs",
    "crash": "faults",
    "recover": "recoveries",
}


class StatusBoard:
    """Thread-safe accumulator behind ``GET /status``.

    Subscribed to the event bus on the producing thread; snapshotted
    under the same lock from HTTP handler threads.
    """

    def __init__(
        self,
        command: Optional[str] = None,
        argv: Optional[List[str]] = None,
        run_id: Optional[str] = None,
    ):
        self.command = command
        self.argv = list(argv or [])
        self.run_id = run_id
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._counters: Dict[str, int] = {}
        self._spans: List[str] = []
        #: closed-span totals: name -> [count, total seconds]
        self._span_totals: Dict[str, List[float]] = {}
        self._verdicts: Dict[str, int] = {}
        self._heartbeat: Optional[Dict[str, Any]] = None
        self._suite: Optional[Dict[str, Any]] = None
        self._checkpoint: Optional[Dict[str, Any]] = None
        self._budget_trip: Optional[str] = None
        self._witnesses: List[Dict[str, Any]] = []
        self._audit: Optional[Dict[str, Any]] = None
        self._execset: Optional[Dict[str, Any]] = None

    # -- event bus subscriber -----------------------------------------
    def __call__(self, name: str, fields: Dict[str, Any]) -> None:
        with self._lock:
            counter = _COUNTED.get(name)
            if counter is not None:
                self._counters[counter] = self._counters.get(counter, 0) + 1
            elif name == "states_visited":
                states = fields.get("states", 0)
                if isinstance(states, int):
                    self._counters["states"] = (
                        self._counters.get("states", 0) + states
                    )
            elif name == "span_start":
                self._spans.append(str(fields.get("span")))
            elif name == "span_end":
                span = str(fields.get("span"))
                if span in self._spans:
                    for index in range(len(self._spans) - 1, -1, -1):
                        if self._spans[index] == span:
                            del self._spans[index]
                            break
                seconds = fields.get("seconds")
                if isinstance(seconds, (int, float)) and not isinstance(
                    seconds, bool
                ):
                    total = self._span_totals.setdefault(span, [0, 0.0])
                    total[0] += 1
                    total[1] += float(seconds)
            elif name == "run_verdict":
                verdict = str(fields.get("verdict", "unknown"))
                self._verdicts[verdict] = self._verdicts.get(verdict, 0) + 1
            elif name == "explore_heartbeat":
                self._heartbeat = dict(fields)
            elif name == "suite_progress":
                self._suite = dict(fields)
            elif name == "checkpoint_written":
                self._checkpoint = dict(fields)
            elif name == "budget_exhausted":
                self._budget_trip = str(fields.get("reason", "exhausted"))
            elif name == "audit_summary":
                self._audit = dict(fields)
            elif name == "execset_digest":
                self._execset = dict(fields)
            elif name == "witness_captured":
                self._witnesses.append(
                    {
                        "path": str(fields.get("path", "")),
                        "kind": str(fields.get("kind", "")),
                        "source": str(fields.get("source", "")),
                        "steps": fields.get("steps"),
                    }
                )

    # -- reading -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The /status payload.  Estimation fields (``explore.rate``,
        ``explore.eta_seconds``, ``explore.coverage``) appear only once a
        heartbeat carried them — absent, never garbage."""
        with self._lock:
            payload: Dict[str, Any] = {
                "command": self.command,
                "argv": self.argv,
                "run_id": self.run_id,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "phases": list(self._spans),
                "counters": dict(self._counters),
                "verdicts": dict(self._verdicts),
            }
            if self._span_totals:
                # Per-phase duration breakdown (closed spans only): how
                # the command's wall time splits across its span names.
                payload["spans"] = {
                    name: {"count": int(count), "seconds": round(seconds, 6)}
                    for name, (count, seconds) in sorted(
                        self._span_totals.items()
                    )
                }
            if self._heartbeat is not None:
                payload["explore"] = dict(self._heartbeat)
            if self._suite is not None:
                payload["suite"] = dict(self._suite)
            if self._checkpoint is not None:
                payload["checkpoint"] = dict(self._checkpoint)
            if self._witnesses:
                payload["witnesses"] = [dict(w) for w in self._witnesses]
            if self._audit is not None:
                payload["audit"] = dict(self._audit)
            if self._execset is not None:
                payload["execset"] = dict(self._execset)
        budget = get_active_budget()
        if budget is not None:
            payload["budget"] = {
                "describe": budget.describe(),
                "elapsed_seconds": round(budget.elapsed, 3),
                "steps_charged": budget.steps_charged,
                "exhausted": self._budget_trip,
            }
        return payload


class EventRing:
    """Lock-protected bounded buffer of recent events (``GET /events``)."""

    def __init__(self, capacity: int = 2048):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._seen = 0

    def __call__(self, name: str, fields: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append({"i": self._seen, "event": name, **fields})
            self._seen += 1

    def tail(self, n: int) -> List[Dict[str, Any]]:
        with self._lock:
            events = list(self._events)
        return events[-n:] if n > 0 else []

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def parse_tail_count(
    query: Dict[str, List[str]], key: str = "n", default: int = 100
) -> int:
    """Parse a ``?n=`` tail-length query parameter, strictly.

    Live endpoints are queried by scripts as much as by humans; a typo'd
    ``?n=abc`` silently treated as the default hides the caller's bug.
    Non-integer, zero, or negative values raise ``ValueError`` (mapped to
    HTTP 400 by the handlers) — only a well-formed positive count passes.
    """
    raw = query.get(key, [str(default)])[0]
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"query parameter {key!r} must be an integer, got {raw!r}")
    if value <= 0:
        raise ValueError(f"query parameter {key!r} must be positive, got {value}")
    return value


class SnapshotHandler(BaseHTTPRequestHandler):
    """Shared HTTP plumbing for the live and service endpoints.

    Subclasses route in ``do_GET``/``do_POST`` and respond through
    :meth:`_send_json` / :meth:`_send_text` / :meth:`_send_json_error`.
    Every response carries ``Cache-Control: no-store``: these are live
    snapshots, and a proxy replaying yesterday's frontier would be worse
    than an error.
    """

    server_version = "repro-live/1"

    def _send_json(self, payload: Dict[str, Any], status: int = 200) -> None:
        self._send_text(
            json.dumps(payload, default=repr, indent=2) + "\n",
            "application/json",
            status=status,
        )

    def _send_json_error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _send_text(
        self, body: str, content_type: str, status: int = 200
    ) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep the observed run's stdout/stderr clean


class _Handler(SnapshotHandler):
    """Routes /status, /metrics, /events.  The server instance carries
    the board/registry/ring (set by :class:`LiveSession`)."""

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parsed = urlparse(self.path)
        if parsed.path == "/status":
            self._send_json(self.server.board.snapshot())  # type: ignore[attr-defined]
        elif parsed.path == "/metrics":
            self._send_text(self._render_metrics(), "text/plain; version=0.0.4")
        elif parsed.path == "/events":
            try:
                n = parse_tail_count(parse_qs(parsed.query))
            except ValueError as error:
                self._send_json_error(400, str(error))
                return
            ring: EventRing = self.server.ring  # type: ignore[attr-defined]
            self._send_json({"events": ring.tail(n), "buffered": len(ring)})
        else:
            self.send_error(404, "unknown endpoint (try /status, /metrics, /events)")

    def _render_metrics(self) -> str:
        registry: _metrics.MetricsRegistry = self.server.registry  # type: ignore[attr-defined]
        # The producing thread mutates the registry concurrently; a dict
        # that grows mid-iteration raises RuntimeError.  Rendering is
        # cheap, so retry a few times rather than locking the hot path.
        for _attempt in range(5):
            try:
                return registry.render_prometheus()
            except RuntimeError:
                time.sleep(0.005)
        return registry.render_prometheus()


class LiveSession:
    """A running live-telemetry server plus its bus subscriptions."""

    def __init__(
        self,
        board: StatusBoard,
        registry: _metrics.MetricsRegistry,
        ring: EventRing,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.board = board
        self.ring = ring
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.board = board  # type: ignore[attr-defined]
        self._server.registry = registry  # type: ignore[attr-defined]
        self._server.ring = ring  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-live-server",
            daemon=True,
        )
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "LiveSession":
        _events.subscribe(self.board)
        _events.subscribe(self.ring)
        self._thread.start()
        return self

    def close(self) -> None:
        """Unsubscribe the feeds, stop serving, join the server thread.

        Idempotent; safe from a ``finally`` after SIGINT.
        """
        if self._closed:
            return
        self._closed = True
        _events.unsubscribe(self.board)
        _events.unsubscribe(self.ring)
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    # -- addressing ----------------------------------------------------
    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    def url(self, path: str = "/status") -> str:
        return f"http://{self.host}:{self.port}{path}"


def serve(
    command: Optional[str] = None,
    argv: Optional[List[str]] = None,
    run_id: Optional[str] = None,
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[_metrics.MetricsRegistry] = None,
    ring_capacity: int = 2048,
) -> LiveSession:
    """Start live telemetry for the current process; returns the session.

    ``port=0`` binds an ephemeral port (read it back from
    ``session.port``).  The caller owns the session and must ``close()``
    it when the command finishes.
    """
    board = StatusBoard(command=command, argv=argv, run_id=run_id)
    session = LiveSession(
        board,
        registry if registry is not None else _metrics.get_registry(),
        EventRing(ring_capacity),
        host=host,
        port=port,
    )
    return session.start()
