"""Stitch daemon and worker traces into one causal tree, and render it.

A ``repro serve`` job leaves several JSONL event traces behind: the
daemon-side job trace (``trace-daemon.jsonl`` — ``queue_wait``,
``attempt_N``, ``resume_gap`` spans written by
:class:`repro.obs.jobs.JobTrace`) and one worker trace per attempt
(``trace-1.jsonl`` …, written by the worker's ``--trace-out`` sink).
Every span in those files carries the deterministic
``span_id``/``parent_id``/``trace_id`` identity minted by
:mod:`repro.obs.spans`, and each worker's outermost span is parented
under the daemon's per-attempt span via ``REPRO_TRACEPARENT`` — so
stitching is pure id-joining: no clocks, no heuristics.

:func:`stitch_files` builds the tree; layout then computes, per span:

* **effective seconds** — the recorded duration, or (for a span whose
  worker was killed before ``span_end``) the sum of its children's;
* **start offset** — reconstructed, not measured: each child starts
  where its previous sibling ended, at the parent's start for the first
  child (the same convention as the run report's waterfall, so
  identical inputs render byte-identically);
* **self seconds** — effective time minus the children's;
* **critical path** — the root-to-leaf descent that always follows the
  most expensive child (the dominant-cost chain, starred in both
  renderings).

Renderers: a byte-stable ASCII waterfall (``repro trace show``), an
embeddable/standalone HTML waterfall (reusing
:data:`repro.obs.report.BASE_CSS`), a nested-dict export for the
service's ``/jobs/<id>/trace`` endpoint, and a flat JSONL export
(``repro-stitched-trace/1``) for CI artifacts.
"""

from __future__ import annotations

import json
import os
import re
import sys
from html import escape
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as _events
from repro.obs import ledger as _ledger
from repro.obs.report import BASE_CSS

#: First line of the flat JSONL export.
STITCHED_FORMAT = "repro-stitched-trace/1"

#: The daemon-side job trace filename inside a job directory.
DAEMON_TRACE = "trace-daemon.jsonl"

_ATTEMPT_TRACE = re.compile(r"^trace-(\d+)\.jsonl$")


class TraceSpan:
    """One span instance in a stitched trace."""

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "seconds", "error",
        "fields", "source", "order", "children",
        "start", "effective", "self_seconds", "critical",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        trace_id: Optional[str],
        source: str,
        order: int,
        fields: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.source = source
        self.order = order
        self.fields: Dict[str, Any] = dict(fields or {})
        self.seconds: Optional[float] = None  # None = never closed
        self.error: Optional[str] = None
        self.children: List["TraceSpan"] = []
        # layout results (filled by _layout)
        self.start = 0.0
        self.effective = 0.0
        self.self_seconds = 0.0
        self.critical = False

    @property
    def closed(self) -> bool:
        return self.seconds is not None


class StitchedTrace:
    """The result of stitching: roots, all spans in join order, and
    accounting of what the source files contained."""

    def __init__(self) -> None:
        self.roots: List[TraceSpan] = []
        self.spans: List[TraceSpan] = []
        self.sources: List[str] = []
        self.trace_id: Optional[str] = None
        #: span_start records dropped (no id, or a duplicate id).
        self.dropped = 0
        #: spans whose parent id never appeared (promoted to roots).
        self.orphans = 0

    # -- aggregates ----------------------------------------------------
    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def duration_seconds(self) -> float:
        return sum(root.effective for root in self.roots)

    def self_seconds_by_name(self) -> Dict[str, float]:
        """Total self time per span name (the ``span_self_seconds``
        Prometheus samples)."""
        totals: Dict[str, float] = {}
        for node in self.spans:
            totals[node.name] = totals.get(node.name, 0.0) + node.self_seconds
        return totals

    def find(self, name: str) -> List[TraceSpan]:
        return [node for node in self.spans if node.name == name]

    def walk(self) -> List[TraceSpan]:
        """Preorder traversal (roots in order, children before siblings)."""
        out: List[TraceSpan] = []

        def visit(node: TraceSpan) -> None:
            out.append(node)
            for child in node.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return out


# ----------------------------------------------------------------------
# Reading and stitching
# ----------------------------------------------------------------------
def _span_events(path: str) -> List[Tuple[str, Dict[str, Any]]]:
    out = []
    for name, fields in _events.read_jsonl(path):
        if name in ("span_start", "span_end"):
            out.append((name, fields))
    return out


def stitch_files(paths: List[str]) -> StitchedTrace:
    """Join span events from ``paths`` (daemon trace first, then worker
    attempts in order) into one tree keyed purely on span ids.

    Files that cannot be read are skipped — a SIGKILLed attempt may have
    died before its sink wrote a single line.  ``span_start`` records
    without a ``span_id`` (pre-identity traces) are counted in
    ``dropped`` rather than guessed at.
    """
    trace = StitchedTrace()
    by_id: Dict[str, TraceSpan] = {}
    order = 0
    for path in paths:
        try:
            events = _span_events(path)
        except OSError:
            continue
        trace.sources.append(path)
        source = os.path.basename(path)
        for name, fields in events:
            span_id = fields.get("span_id")
            span_name = str(fields.get("span", "?"))
            if not isinstance(span_id, str) or not span_id:
                trace.dropped += 1
                continue
            if name == "span_start":
                if span_id in by_id:
                    trace.dropped += 1
                    continue
                parent_id = fields.get("parent_id")
                node = TraceSpan(
                    name=span_name,
                    span_id=span_id,
                    parent_id=parent_id if isinstance(parent_id, str) else None,
                    trace_id=(
                        fields["trace_id"]
                        if isinstance(fields.get("trace_id"), str)
                        else None
                    ),
                    source=source,
                    order=order,
                    fields={
                        k: v
                        for k, v in fields.items()
                        if k not in (
                            "span", "span_id", "parent_id", "trace_id", "depth"
                        )
                    },
                )
                order += 1
                by_id[span_id] = node
                trace.spans.append(node)
                if trace.trace_id is None and node.trace_id is not None:
                    trace.trace_id = node.trace_id
            else:  # span_end
                node = by_id.get(span_id)
                if node is None:
                    trace.dropped += 1
                    continue
                seconds = fields.get("seconds")
                if isinstance(seconds, (int, float)) and not isinstance(
                    seconds, bool
                ):
                    node.seconds = float(seconds)
                error = fields.get("error")
                if error is not None:
                    node.error = str(error)
    for node in trace.spans:
        parent = by_id.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            if node.parent_id:
                trace.orphans += 1
            trace.roots.append(node)
    for node in trace.spans:
        node.children.sort(key=lambda child: child.order)
    trace.roots.sort(key=lambda root: root.order)
    _layout(trace)
    return trace


def _layout(trace: StitchedTrace) -> None:
    """Fill effective/start/self/critical on every span (see module
    docstring for the conventions)."""

    def effective(node: TraceSpan) -> float:
        child_total = sum(effective(child) for child in node.children)
        if node.seconds is None:
            node.effective = child_total
        else:
            node.effective = float(node.seconds)
        node.self_seconds = max(0.0, node.effective - child_total)
        return node.effective

    def place(node: TraceSpan, start: float) -> None:
        node.start = start
        cursor = start
        for child in node.children:
            place(child, cursor)
            cursor += child.effective

    def mark_critical(node: TraceSpan) -> None:
        node.critical = True
        if not node.children:
            return
        best = node.children[0]
        for child in node.children[1:]:
            if child.effective > best.effective:
                best = child
        mark_critical(best)

    cursor = 0.0
    for root in trace.roots:
        effective(root)
        place(root, cursor)
        cursor += root.effective
    if trace.roots:
        dominant = trace.roots[0]
        for root in trace.roots[1:]:
            if root.effective > dominant.effective:
                dominant = root
        mark_critical(dominant)


# ----------------------------------------------------------------------
# Locating trace files
# ----------------------------------------------------------------------
def job_dir_trace_files(job_dir: str) -> List[str]:
    """The stitchable files of one job directory: the daemon trace (when
    present) followed by the per-attempt worker traces in attempt order."""
    files: List[str] = []
    daemon = os.path.join(job_dir, DAEMON_TRACE)
    if os.path.isfile(daemon):
        files.append(daemon)
    attempts: List[Tuple[int, str]] = []
    try:
        names = os.listdir(job_dir)
    except OSError:
        return files
    for name in names:
        match = _ATTEMPT_TRACE.match(name)
        if match:
            attempts.append((int(match.group(1)), os.path.join(job_dir, name)))
    files.extend(path for _n, path in sorted(attempts))
    return files


def run_trace_files(
    records: List[Dict[str, Any]], run_id: str, ledger_dir: str = "."
) -> List[str]:
    """Trace files of a ledger run's whole resume chain, oldest first.

    Each chain record contributes its ``artifacts.trace_out`` path,
    resolved as written or (for relative paths recorded from another
    working directory) relative to the ledger's own directory.  Raises
    ``ValueError`` for an unknown/ambiguous run id (from
    :func:`repro.obs.ledger.resume_chain`).
    """
    files: List[str] = []
    for record in _ledger.resume_chain(records, run_id):
        artifacts = record.get("artifacts")
        trace_out = (
            artifacts.get("trace_out") if isinstance(artifacts, dict) else None
        )
        if not isinstance(trace_out, str) or not trace_out:
            continue
        for candidate in (trace_out, os.path.join(ledger_dir, trace_out)):
            if os.path.isfile(candidate) and candidate not in files:
                files.append(candidate)
                break
    return files


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_seconds(node: TraceSpan) -> str:
    if node.seconds is None:
        return f"{node.effective:.3f}s?"  # unclosed: children's total
    return f"{node.effective:.3f}s"


def render_ascii(trace: StitchedTrace, bar_width: int = 32) -> str:
    """Byte-stable text waterfall: tree, durations, self time, bars.

    Everything printed derives from the trace files alone (no clocks,
    no paths beyond basenames), so two invocations over the same job
    render identical bytes — CI `cmp`s them.
    """
    if not trace.spans:
        return "(no spans found)"
    total = trace.duration_seconds
    header = (
        f"trace {trace.trace_id or '?'} · {len(trace.sources)} file(s) · "
        f"{trace.span_count} spans · {total:.3f}s"
    )
    lines = [header]
    if trace.dropped or trace.orphans:
        lines.append(
            f"({trace.dropped} unidentifiable span record(s) dropped, "
            f"{trace.orphans} orphan(s) promoted to roots)"
        )
    lines.append(
        f"{'span':<34} {'total':>9} {'self':>9}  waterfall"
        f"{'':<{max(0, bar_width - 9)}}critical"
    )

    def bar(node: TraceSpan) -> str:
        if total <= 0:
            return ""
        left = int(round(bar_width * node.start / total))
        width = max(1, int(round(bar_width * node.effective / total)))
        left = min(left, bar_width - 1)
        width = min(width, bar_width - left)
        return "·" * left + "#" * width + " " * (bar_width - left - width)

    def walk(node: TraceSpan, depth: int) -> None:
        label = "  " * depth + node.name
        if node.error:
            label += f" [{node.error}]"
        if not node.closed:
            label += " [unclosed]"
        lines.append(
            f"{label:<34} {_fmt_seconds(node):>9} "
            f"{node.self_seconds:>8.3f}s  {bar(node)}"
            + ("  *" if node.critical else "")
        )
        for child in node.children:
            walk(child, depth + 1)

    for root in trace.roots:
        walk(root, 0)
    lines.append(
        "(* = critical path: the dominant-cost descent; offsets are "
        "reconstructed from span order, durations are measured)"
    )
    return "\n".join(lines)


#: Extra stylesheet for the waterfall page/section, on top of BASE_CSS.
WATERFALL_CSS = """
.wf .bar.crit { background: #c44e52; }
.wf .lbl .t { opacity: .8; }
.trace-meta { color: #777; font-size: .85rem; margin: .3rem 0 .8rem; }
"""


def waterfall_section(trace: StitchedTrace, max_rows: int = 120) -> str:
    """An embeddable HTML fragment: the stitched waterfall (no <html>
    wrapper; style with BASE_CSS + WATERFALL_CSS)."""
    if not trace.spans:
        return '<p class="muted">no spans found</p>'
    total = trace.duration_seconds
    parts = [
        '<p class="trace-meta">'
        + escape(
            f"trace {trace.trace_id or '?'} · {len(trace.sources)} file(s) · "
            f"{trace.span_count} spans · {total:.3f}s · "
            "red = critical path (dominant-cost descent)"
        )
        + "</p>"
    ]
    nodes = trace.walk()
    shown = nodes
    if len(nodes) > max_rows:
        parts.append(
            f'<p class="muted">showing the {max_rows} longest of '
            f"{len(nodes)} spans</p>"
        )
        shown = sorted(nodes, key=lambda n: -n.effective)[:max_rows]
        shown.sort(key=lambda n: n.order)
    depth_of: Dict[str, int] = {}
    for node in nodes:
        parent_depth = depth_of.get(node.parent_id or "", -1)
        depth_of[node.span_id] = parent_depth + 1
    for node in shown:
        left = 100.0 * node.start / total if total else 0.0
        width = max(0.3, 100.0 * node.effective / total if total else 0.0)
        label = f"{node.name} — {_fmt_seconds(node)}"
        if node.error:
            label += f" [{node.error}]"
        if not node.closed:
            label += " [unclosed]"
        indent = depth_of.get(node.span_id, 0) * 0.6
        crit = " crit" if node.critical else ""
        parts.append(
            f'<div class="wf" style="margin-left:{indent:.1f}rem">'
            f'<div class="bar{crit}" '
            f'style="left:{left:.2f}%;width:{width:.2f}%"></div>'
            f'<div class="lbl" style="left:calc({left:.2f}% + .3rem)">'
            f"{escape(label)}</div></div>"
        )
    parts.append(
        '<p class="muted">durations are measured; horizontal offsets are '
        "reconstructed (spans carry no wall-clock timestamps so identical "
        "jobs render byte-identically).</p>"
    )
    return "\n".join(parts)


def waterfall_page(trace: StitchedTrace, title: str) -> str:
    """A standalone, dependency-free HTML page around the waterfall."""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>{BASE_CSS}{WATERFALL_CSS}</style></head><body>\n"
        f"<h1>{escape(title)}</h1>\n"
        + waterfall_section(trace)
        + "\n</body></html>\n"
    )


# ----------------------------------------------------------------------
# Structured exports
# ----------------------------------------------------------------------
def _node_dict(node: TraceSpan) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "span": node.name,
        "span_id": node.span_id,
        "parent_id": node.parent_id,
        "seconds": node.seconds,
        "self_seconds": round(node.self_seconds, 9),
        "start": round(node.start, 9),
        "critical": node.critical,
        "source": node.source,
    }
    if node.error:
        out["error"] = node.error
    if not node.closed:
        out["unclosed"] = True
    out["children"] = [_node_dict(child) for child in node.children]
    return out


def trace_as_dict(trace: StitchedTrace) -> Dict[str, Any]:
    """The ``/jobs/<id>/trace`` payload: tree plus accounting."""
    return {
        "trace_id": trace.trace_id,
        "sources": [os.path.basename(path) for path in trace.sources],
        "spans": trace.span_count,
        "duration_seconds": round(trace.duration_seconds, 9),
        "dropped": trace.dropped,
        "orphans": trace.orphans,
        "tree": [_node_dict(root) for root in trace.roots],
    }


def stitched_jsonl_lines(trace: StitchedTrace) -> List[str]:
    """Flat JSONL export: a header line, then one line per span in
    preorder — the CI artifact format (``repro-stitched-trace/1``)."""
    header = {
        "format": STITCHED_FORMAT,
        "trace_id": trace.trace_id,
        "sources": [os.path.basename(path) for path in trace.sources],
        "spans": trace.span_count,
        "duration_seconds": round(trace.duration_seconds, 9),
    }
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for node in trace.walk():
        record = {
            key: value
            for key, value in _node_dict(node).items()
            if key != "children"
        }
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return lines


# ----------------------------------------------------------------------
# The ``repro trace show`` command body
# ----------------------------------------------------------------------
def run_trace_show(
    target: str,
    html_out: Optional[str] = None,
    jsonl_out: Optional[str] = None,
    as_json: bool = False,
    ledger_path: Optional[str] = None,
) -> int:
    """Resolve ``target`` (job dir, single trace file, or ledger run
    id), stitch, and render.  Exit 2 on an unknown target or a target
    with no stitchable spans; stdout output is byte-stable."""
    from repro.fsutil import ensure_parent

    if os.path.isdir(target):
        files = job_dir_trace_files(target)
        title = f"trace — {os.path.basename(os.path.normpath(target))}"
        if not files:
            print(
                f"trace show: no trace files in {target} "
                f"(expected {DAEMON_TRACE} / trace-N.jsonl)",
                file=sys.stderr,
            )
            return 2
    elif os.path.isfile(target):
        files = [target]
        title = f"trace — {os.path.basename(target)}"
    else:
        path = ledger_path or _ledger.default_ledger_path()
        records, _skipped = _ledger.read_ledger(path)
        try:
            files = run_trace_files(
                records, target, ledger_dir=os.path.dirname(path) or "."
            )
        except ValueError as error:
            print(f"trace show: {error}", file=sys.stderr)
            return 2
        title = f"trace — run {target}"
        if not files:
            print(
                f"trace show: run {target!r} recorded no --trace-out "
                "artifacts to stitch",
                file=sys.stderr,
            )
            return 2
    trace = stitch_files(files)
    if not trace.spans:
        print(
            f"trace show: no spans in {', '.join(files)} (traces predate "
            "span identity?)",
            file=sys.stderr,
        )
        return 2
    if as_json:
        print(json.dumps(trace_as_dict(trace), indent=2, sort_keys=True))
    else:
        print(render_ascii(trace))
    try:
        if html_out:
            with open(ensure_parent(html_out), "w", encoding="utf-8") as handle:
                handle.write(waterfall_page(trace, title))
            print(f"wrote HTML waterfall to {html_out}", file=sys.stderr)
        if jsonl_out:
            with open(ensure_parent(jsonl_out), "w", encoding="utf-8") as handle:
                handle.write("\n".join(stitched_jsonl_lines(trace)) + "\n")
            print(f"wrote stitched trace to {jsonl_out}", file=sys.stderr)
    except OSError as error:
        print(f"trace show: cannot write output: {error}", file=sys.stderr)
        return 2
    return 0
