"""``repro serve``: the standing multi-run verdict service.

Where ``--serve`` (:mod:`repro.obs.live`) is a telemetry sidecar that
dies with its one run, ``repro serve`` is a daemon: it *owns* runs.
Exploration jobs arrive over HTTP, execute in supervised subprocess
workers (:mod:`repro.obs.jobs`), survive worker crashes via automatic
checkpoint resume, and leave their ledger records, witness bundles and
traces under one ``--data-dir`` that the read side serves back out.

Endpoints
---------
``GET /``
    Self-contained HTML dashboard: job table (state, verdict, attempts,
    progress), recent ledger rows with their execution-set digests,
    witness index.  Plain refreshable HTML — no JavaScript framework,
    same stylesheet as ``repro report``.
``POST /jobs``
    Submit a job.  Body: JSON object with ``task`` (an explore task
    name), ``n``, ``k``, ``max_crashes``, ``max_depth``, ``deadline``,
    ``max_steps``, ``checkpoint_every``, ``seed`` (recorded provenance
    for future randomized schedulers), ``label``.  Returns 201 with the
    job snapshot, 400 on a bad spec, 503 while draining.
``GET /jobs`` / ``GET /jobs/<id>``
    Queue listing / one job's full status: state, attempts, resume
    chain (``run_ids``), exit codes, and the worker's latest
    ``explore_heartbeat`` (executions, rate, coverage, ETA) tailed from
    its trace file.
``GET /jobs/<id>/events``
    The worker's JSONL trace as Server-Sent Events (``text/event-stream``;
    one ``data:`` line per bus event).  ``?follow=0`` dumps what exists
    and closes (CI-friendly); the default follows until the job reaches
    a final state.
``GET /jobs/<id>/trace``
    The job's stitched causal trace (daemon spans + every worker
    attempt, joined on span ids by :mod:`repro.obs.trace_view`).
    JSON tree by default; ``?format=html`` renders the waterfall page,
    ``?format=text`` the byte-stable ASCII waterfall ``repro trace
    show`` prints.
``GET /metrics``
    Daemon-wide Prometheus text: uptime, jobs per state, per-job
    executions/rate gauges, ledger verdict tallies, witness count, and
    ``repro_execset_*`` gauges (streams, records, digest labels) peeked
    from each job's newest execution-set file.
``GET /runs`` / ``GET /runs/<id>``
    The daemon's ledger as JSON; ``?verdict=PROVED`` filters (same
    vocabulary as ``repro runs list --verdict``).
``GET /witnesses`` / ``/witnesses/<id>`` / ``/witnesses/<id>/lane``
    Witness index, raw ``repro-witness/1`` bundle, and the HTML lane
    view rendered by :mod:`repro.obs.explain`.

Handlers run on daemon threads and only ever read snapshots or files —
never a lock a worker holds — so a slow dashboard cannot stall an
exploration (the same guarantee ``--serve`` makes, scaled up).
"""

from __future__ import annotations

import json
import os
import threading
import time
from html import escape
from http.server import ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs import execset as _execset
from repro.obs import explain as _explain
from repro.obs import ledger as _ledger
from repro.obs import trace_view as _trace_view
from repro.obs import witness as _witness
from repro.obs.jobs import FINAL_STATES, JobManager
from repro.obs.live import EventRing, SnapshotHandler, parse_tail_count
from repro.obs.report import BASE_CSS

#: How long a followed SSE stream sleeps between trace polls.
SSE_POLL_INTERVAL = 0.25
#: A followed SSE stream gives up after this long without the job
#: finishing (belt and braces against orphaned client connections).
SSE_MAX_FOLLOW = 3600.0


def _witness_path(witness_dir: str, witness_id: str) -> Optional[str]:
    """Resolve ``/witnesses/<id>`` to a file, refusing path escapes.

    The id must be a plain bundle filename (with or without the
    ``.jsonl`` suffix) living directly in the witness directory —
    separators, ``..`` and symlinked escapes all resolve to ``None``.
    """
    name = witness_id if witness_id.endswith(".jsonl") else witness_id + ".jsonl"
    if os.path.basename(name) != name or name.startswith("."):
        return None
    path = os.path.join(witness_dir, name)
    base = os.path.realpath(witness_dir)
    if os.path.commonpath([os.path.realpath(path), base]) != base:
        return None
    return path if os.path.isfile(path) else None


def _list_witnesses(witness_dir: str) -> List[Dict[str, Any]]:
    entries = []
    try:
        names = sorted(os.listdir(witness_dir))
    except OSError:
        return []
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        path = os.path.join(witness_dir, name)
        try:
            size = os.path.getsize(path)
        except OSError:
            continue
        entries.append({"id": name[: -len(".jsonl")], "bytes": size})
    return entries


def _job_execset_footers(manager: JobManager) -> List[Tuple[str, Dict[str, Any]]]:
    """``(job_id, footer)`` for each job's newest execution-set stream.

    Peeks footers (:func:`repro.obs.execset.peek_footer`) rather than
    parsing whole files — a dashboard refresh must stay cheap even when
    jobs explored millions of executions.  Jobs whose workers predate
    the execset format, or whose stream is still mid-write (no footer
    yet), are simply absent.
    """
    out: List[Tuple[str, Dict[str, Any]]] = []
    for job in manager.list_jobs():
        attempts = int(job.get("attempts", 0) or 0)
        for attempt in range(attempts, 0, -1):
            path = os.path.join(
                manager.jobs_dir, job["id"], f"execset-{attempt}.jsonl"
            )
            footer = _execset.peek_footer(path)
            if footer is not None:
                out.append((job["id"], footer))
                break
    return out


def render_service_metrics(manager: JobManager, ring: EventRing) -> str:
    """Daemon-wide Prometheus text exposition.

    Hand-rendered rather than going through the process-global
    :class:`MetricsRegistry`: the work happens in *subprocesses*, so the
    daemon aggregates from its own job table and ledger instead of
    in-process counters.
    """
    lines: List[str] = []

    def gauge(name: str, help_text: str, samples: List[Tuple[str, Any]]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            lines.append(f"{name}{labels} {value}")

    gauge(
        "repro_service_uptime_seconds",
        "Seconds since the daemon started.",
        [("", round(time.time() - manager.started_at, 3))],
    )
    states, job_verdicts = manager.counts()
    gauge(
        "repro_service_jobs",
        "Jobs per lifecycle state.",
        [(f'{{state="{state}"}}', count) for state, count in sorted(states.items())],
    )
    if job_verdicts:
        gauge(
            "repro_service_job_verdicts",
            "Finished jobs per verdict.",
            [
                (f'{{verdict="{verdict}"}}', count)
                for verdict, count in sorted(job_verdicts.items())
            ],
        )
    executions: List[Tuple[str, Any]] = []
    rates: List[Tuple[str, Any]] = []
    for job in manager.list_jobs():
        snap = manager.job_snapshot(job["id"]) or {}
        explore = snap.get("explore") or {}
        if "executions" in explore:
            executions.append(
                (f'{{job="{job["id"]}"}}', explore["executions"])
            )
        if "rate" in explore:
            rates.append((f'{{job="{job["id"]}"}}', explore["rate"]))
    if executions:
        gauge(
            "repro_service_job_executions",
            "Maximal executions explored, per job (latest heartbeat).",
            executions,
        )
    if rates:
        gauge(
            "repro_service_job_rate",
            "Executions per second, per job (latest heartbeat).",
            rates,
        )
    records, skipped = manager.read_ledger()
    tallies: Dict[str, int] = {}
    for record in records:
        verdict = str(record.get("verdict", "error"))
        tallies[verdict] = tallies.get(verdict, 0) + 1
    gauge(
        "repro_service_runs_total",
        "Ledger records per verdict (every worker attempt that finished).",
        [
            (f'{{verdict="{verdict}"}}', count)
            for verdict, count in sorted(tallies.items())
        ]
        or [('{verdict="proved"}', 0)],
    )
    gauge(
        "repro_service_ledger_corrupt_lines",
        "Ledger lines skipped as corrupt.",
        [("", skipped)],
    )
    gauge(
        "repro_service_witnesses",
        "Witness bundles archived under the data dir.",
        [("", len(_list_witnesses(manager.witness_dir)))],
    )
    execsets = _job_execset_footers(manager)
    gauge(
        "repro_execset_streams",
        "Jobs with a completed execution-set digest stream.",
        [("", len(execsets))],
    )
    if execsets:
        record_samples: List[Tuple[str, Any]] = []
        digest_samples: List[Tuple[str, Any]] = []
        for job_id, footer in execsets:
            total = footer.get("total_records", footer.get("records", 0))
            record_samples.append((f'{{job="{job_id}"}}', total))
            digest = _execset.short_digest(
                footer.get("merged_digest") or footer.get("digest")
            )
            digest_samples.append(
                (f'{{job="{job_id}",digest="{digest}"}}', 1)
            )
        gauge(
            "repro_execset_records",
            "Distinct executions in the job's newest execset stream "
            "(including any resumed-from base).",
            record_samples,
        )
        gauge(
            "repro_execset_digest_info",
            "Execution-set digest per job; the digest is the label, the "
            "value is always 1.",
            digest_samples,
        )
    span_total, span_self = manager.trace_totals()
    gauge(
        "repro_service_trace_spans_total",
        "Spans in the stitched causal traces of finished jobs.",
        [("", span_total)],
    )
    if span_self:
        gauge(
            "repro_service_span_self_seconds",
            "Self time (excluding children) per span name, summed over "
            "finished jobs' stitched traces.",
            [
                (f'{{span="{name}"}}', round(seconds, 6))
                for name, seconds in sorted(span_self.items())
            ],
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
_DASH_CSS = (
    BASE_CSS
    + _trace_view.WATERFALL_CSS
    + """
.state-queued { color: #777; } .state-running { color: #1565c0; }
.state-done { color: #2e7d32; } .state-error { color: #c62828; }
.state-interrupted { color: #e65100; }
code { background: #f4f4f6; padding: .05rem .3rem; border-radius: 3px; }
"""
)


def _job_row(snap: Dict[str, Any]) -> str:
    spec = snap.get("spec", {})
    describe = "{task}(n={n}, k={k}, f={f})".format(
        task=spec.get("task", "?"),
        n=spec.get("n", "?"),
        k=spec.get("k", "?"),
        f=spec.get("max_crashes", 0),
    )
    # .get() keeps job records from before the crash-recovery model
    # rendering; the budget shows only when a job actually set it.
    if spec.get("max_recoveries"):
        describe = describe[:-1] + f", r={spec['max_recoveries']})"
    explore = snap.get("explore") or {}
    progress = ""
    if "executions" in explore:
        progress = f"{explore['executions']} execs"
        if "rate" in explore:
            progress += f" @ {explore['rate']:.0f}/s"
        if "coverage" in explore:
            progress += f", {100 * explore['coverage']:.0f}%"
    state = escape(str(snap.get("state", "?")))
    verdict = escape(str(snap.get("verdict", "")))
    return (
        "<tr>"
        f"<td><a href=\"/jobs/{escape(snap['id'])}\">{escape(snap['id'])}</a></td>"
        f"<td>{escape(describe)}</td>"
        f"<td class=\"state-{state}\">{state}</td>"
        f"<td>{verdict or '—'}</td>"
        f"<td class=\"num\">{snap.get('attempts', 0)}</td>"
        f"<td>{escape(progress) or '—'}</td>"
        f"<td><a href=\"/jobs/{escape(snap['id'])}/trace?format=html\">trace</a></td>"
        "</tr>"
    )


def render_dashboard(manager: JobManager, ring: EventRing) -> str:
    """The ``GET /`` page: jobs, recent runs, witnesses — one HTML file."""
    jobs = [manager.job_snapshot(j["id"]) or j for j in manager.list_jobs()]
    records, skipped = manager.read_ledger()
    witnesses = _list_witnesses(manager.witness_dir)
    states, _ = manager.counts()
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro serve</title>",
        f"<style>{_DASH_CSS}</style></head><body>",
        "<h1>repro serve</h1>",
        '<p class="muted">'
        + escape(
            ", ".join(f"{count} {state}" for state, count in sorted(states.items()) if count)
            or "no jobs yet"
        )
        + " · <code>POST /jobs</code> to submit · "
        '<a href="/metrics">metrics</a> · <a href="/runs">runs</a></p>',
        "<h2>Jobs</h2>",
    ]
    if jobs:
        parts.append(
            "<table><tr><th>job</th><th>instance</th><th>state</th>"
            "<th>verdict</th><th class=\"num\">attempts</th><th>progress</th>"
            "<th>trace</th></tr>"
        )
        parts.extend(_job_row(snap) for snap in jobs)
        parts.append("</table>")
    else:
        parts.append('<p class="muted">none — submit one:</p>')
        parts.append(
            "<pre><code>curl -X POST localhost:PORT/jobs -d "
            "'{\"task\": \"consensus\", \"n\": 2, \"k\": 1}'</code></pre>"
        )
    # Waterfall of the most recently finished job: the causal timeline
    # (queue wait → attempts → resume gaps → worker phases) at a glance.
    finished = [j for j in jobs if j.get("state") in FINAL_STATES]
    if finished:
        latest = max(finished, key=lambda j: str(j.get("finished_at") or ""))
        trace = manager.stitched_trace(latest["id"])
        if trace is not None and trace.spans:
            parts.append(
                f"<h2>Trace — {escape(latest['id'])} "
                f"<a href=\"/jobs/{escape(latest['id'])}/trace?format=html\">"
                "(full page)</a></h2>"
            )
            parts.append(_trace_view.waterfall_section(trace, max_rows=40))
    parts.append("<h2>Recent runs</h2>")
    if records:
        parts.append(
            "<table><tr><th>run id</th><th>command</th><th>verdict</th>"
            "<th class=\"num\">executions</th><th>execset</th><th>resumes</th></tr>"
        )
        for record in records[-15:]:
            verdict = str(record.get("verdict", "?"))
            cls = "ok" if verdict == "proved" else ("bad" if verdict == "error" else "")
            execset_note = record.get("execset")
            digest = _execset.short_digest(
                execset_note.get("digest") if isinstance(execset_note, dict) else None
            )
            parts.append(
                "<tr>"
                f"<td><code>{escape(str(record.get('run_id', '?')))}</code></td>"
                f"<td>{escape(str(record.get('command', '?')))}</td>"
                f"<td class=\"{cls}\">{escape(verdict)}</td>"
                f"<td class=\"num\">{escape(str(record.get('executions', '—')))}</td>"
                f"<td><code>{escape(digest)}</code></td>"
                f"<td>{escape(str(record.get('parent_run_id', '') or '—'))}</td>"
                "</tr>"
            )
        parts.append("</table>")
        if skipped:
            parts.append(
                f'<p class="bad">{skipped} corrupt ledger line(s) skipped</p>'
            )
    else:
        parts.append('<p class="muted">ledger is empty</p>')
    parts.append("<h2>Witnesses</h2>")
    if witnesses:
        parts.append("<ul>")
        for entry in witnesses:
            wid = escape(entry["id"])
            parts.append(
                f'<li><code>{wid}</code> ({entry["bytes"]} bytes) — '
                f'<a href="/witnesses/{wid}">raw</a> · '
                f'<a href="/witnesses/{wid}/lane">lane view</a></li>'
            )
        parts.append("</ul>")
    else:
        parts.append('<p class="muted">none captured yet</p>')
    parts.append(
        '<p class="muted">Live snapshot — refresh for updates. '
        "See docs/SERVICE.md for the full API.</p>"
    )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


# ----------------------------------------------------------------------
# The handler
# ----------------------------------------------------------------------
class ServiceHandler(SnapshotHandler):
    """Routes the service API.  The server object carries the manager
    and the daemon's own event ring (set by :class:`ServiceSession`)."""

    server_version = "repro-serve/1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # -- POST ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 — http.server API
        parsed = urlparse(self.path)
        if parsed.path != "/jobs":
            self._send_json_error(404, "POST is only accepted on /jobs")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except ValueError:
            self._send_json_error(400, "request body is not valid JSON")
            return
        try:
            snapshot = self.manager.submit(payload)
        except ValueError as error:
            self._send_json_error(400, str(error))
            return
        except RuntimeError as error:
            self._send_json_error(503, str(error))
            return
        self._send_json(snapshot, status=201)

    # -- GET -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        parts = [p for p in parsed.path.split("/") if p]
        try:
            if parsed.path == "/":
                self._send_text(
                    render_dashboard(self.manager, self.server.ring),  # type: ignore[attr-defined]
                    "text/html; charset=utf-8",
                )
            elif parsed.path == "/jobs":
                self._send_json({"jobs": self.manager.list_jobs()})
            elif parts[0] == "jobs" and len(parts) == 2:
                self._get_job(parts[1])
            elif parts[0] == "jobs" and len(parts) == 3 and parts[2] == "events":
                self._stream_job_events(parts[1], query)
            elif parts[0] == "jobs" and len(parts) == 3 and parts[2] == "trace":
                self._get_job_trace(parts[1], query)
            elif parsed.path == "/metrics":
                self._send_text(
                    render_service_metrics(self.manager, self.server.ring),  # type: ignore[attr-defined]
                    "text/plain; version=0.0.4",
                )
            elif parsed.path == "/events":
                self._get_daemon_events(query)
            elif parsed.path == "/runs":
                self._get_runs(query)
            elif parts[0] == "runs" and len(parts) == 2:
                self._get_run(parts[1])
            elif parsed.path == "/witnesses":
                self._send_json(
                    {"witnesses": _list_witnesses(self.manager.witness_dir)}
                )
            elif parts[0] == "witnesses" and len(parts) == 2:
                self._get_witness(parts[1], lane=False)
            elif parts[0] == "witnesses" and len(parts) == 3 and parts[2] == "lane":
                self._get_witness(parts[1], lane=True)
            else:
                self._send_json_error(
                    404,
                    "unknown endpoint (try /, /jobs, /metrics, /runs, /witnesses)",
                )
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to clean up

    def _get_job(self, job_id: str) -> None:
        snapshot = self.manager.job_snapshot(job_id)
        if snapshot is None:
            self._send_json_error(404, f"no job {job_id!r}")
            return
        self._send_json(snapshot)

    def _get_job_trace(self, job_id: str, query: Dict[str, List[str]]) -> None:
        """``GET /jobs/<id>/trace``: the stitched causal tree."""
        trace = self.manager.stitched_trace(job_id)
        if trace is None:
            self._send_json_error(404, f"no job {job_id!r}")
            return
        fmt = query.get("format", ["json"])[0]
        if fmt == "html":
            self._send_text(
                _trace_view.waterfall_page(trace, title=f"trace — {job_id}"),
                "text/html; charset=utf-8",
            )
        elif fmt == "text":
            self._send_text(
                _trace_view.render_ascii(trace) + "\n",
                "text/plain; charset=utf-8",
            )
        elif fmt == "json":
            self._send_json(_trace_view.trace_as_dict(trace))
        else:
            self._send_json_error(
                400, f"unknown trace format {fmt!r} (json, text, html)"
            )

    def _get_daemon_events(self, query: Dict[str, List[str]]) -> None:
        try:
            n = parse_tail_count(query)
        except ValueError as error:
            self._send_json_error(400, str(error))
            return
        ring: EventRing = self.server.ring  # type: ignore[attr-defined]
        self._send_json({"events": ring.tail(n), "buffered": len(ring)})

    def _get_runs(self, query: Dict[str, List[str]]) -> None:
        records, skipped = self.manager.read_ledger()
        verdict = query.get("verdict", [None])[0]
        if verdict is not None:
            try:
                records = _ledger.filter_by_verdict(records, verdict)
            except ValueError as error:
                self._send_json_error(400, str(error))
                return
        self._send_json({"runs": records, "corrupt_lines": skipped})

    def _get_run(self, run_id: str) -> None:
        records, _skipped = self.manager.read_ledger()
        try:
            record = _ledger.find_record(records, run_id)
        except ValueError as error:
            self._send_json_error(404, str(error))
            return
        self._send_json(record)

    def _get_witness(self, witness_id: str, lane: bool) -> None:
        path = _witness_path(self.manager.witness_dir, witness_id)
        if path is None:
            self._send_json_error(404, f"no witness {witness_id!r}")
            return
        if not lane:
            with open(path, "r", encoding="utf-8") as handle:
                self._send_text(handle.read(), "application/jsonl")
            return
        records, _skipped = _witness.read_witness(path)
        if not records:
            self._send_json_error(404, f"witness {witness_id!r} is empty")
            return
        view = _explain.view_from_record(records[0])
        self._send_text(
            _explain.lanes_page(view, title=f"witness {witness_id}"),
            "text/html; charset=utf-8",
        )

    # -- SSE -----------------------------------------------------------
    def _stream_job_events(
        self, job_id: str, query: Dict[str, List[str]]
    ) -> None:
        """``GET /jobs/<id>/events``: the worker trace as SSE.

        Reads the job's per-attempt trace files directly (complete lines
        only), so the stream works on a job that already finished and
        never touches worker state.  With ``follow`` (the default) it
        polls until the job reaches a final state; ``?follow=0`` dumps
        and closes.
        """
        snapshot = self.manager.job_snapshot(job_id)
        if snapshot is None:
            self._send_json_error(404, f"no job {job_id!r}")
            return
        follow = query.get("follow", ["1"])[0] not in ("0", "false", "no")
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        file_index, offset = 0, 0
        deadline = time.monotonic() + SSE_MAX_FOLLOW
        while True:
            snapshot = self.manager.job_snapshot(job_id) or {}
            traces = [
                os.path.join(snapshot.get("job_dir", ""), f"trace-{a}.jsonl")
                for a in range(1, snapshot.get("attempts", 0) + 1)
            ]
            progressed = True
            while progressed:
                progressed = False
                if file_index < len(traces):
                    lines, offset = self._read_lines(traces[file_index], offset)
                    for line in lines:
                        self.wfile.write(b"data: " + line + b"\n\n")
                        progressed = True
                    if not lines and file_index + 1 < len(traces):
                        file_index, offset = file_index + 1, 0
                        progressed = True
                if progressed:
                    self.wfile.flush()
            final = snapshot.get("state") in FINAL_STATES
            if not follow or final or time.monotonic() > deadline:
                self.wfile.write(
                    b"event: end\ndata: "
                    + json.dumps(
                        {
                            "state": snapshot.get("state"),
                            "verdict": snapshot.get("verdict"),
                        }
                    ).encode("utf-8")
                    + b"\n\n"
                )
                self.wfile.flush()
                return
            time.sleep(SSE_POLL_INTERVAL)

    @staticmethod
    def _read_lines(path: str, offset: int) -> Tuple[List[bytes], int]:
        """New complete lines of ``path`` past ``offset`` (and the new
        offset) — a partial line mid-write is left for the next poll."""
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read(4 << 20)
        except OSError:
            return [], offset
        end = chunk.rfind(b"\n")
        if end < 0:
            return [], offset
        return chunk[: end + 1].splitlines(), offset + end + 1


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class ServiceSession:
    """A running ``repro serve`` daemon: HTTP server plus job manager."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        ring_capacity: int = 2048,
    ):
        self.manager = manager
        self.ring = EventRing(ring_capacity)
        self._server = ThreadingHTTPServer((host, port), ServiceHandler)
        self._server.daemon_threads = True
        self._server.manager = manager  # type: ignore[attr-defined]
        self._server.ring = self.ring  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._closed = False

    def start(self) -> "ServiceSession":
        self._thread.start()
        return self

    def close(self, drain_timeout: float = 15.0) -> None:
        """Drain the job manager, then stop the HTTP server.  Idempotent.

        Order matters: draining first means a client polling ``/jobs``
        watches its jobs flip to INTERRUPTED before the socket dies.
        """
        if self._closed:
            return
        self._closed = True
        self.manager.drain(timeout=drain_timeout)
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    # -- addressing ----------------------------------------------------
    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"


def serve_service(
    data_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 2,
    max_retries: int = 2,
    worker_prefix: Optional[List[str]] = None,
) -> ServiceSession:
    """Start the daemon; returns the session (caller must ``close()``).

    ``port=0`` binds an ephemeral port, read back from ``session.port``.
    ``worker_prefix`` overrides the worker command for tests.
    """
    manager = JobManager(
        data_dir,
        max_workers=max_workers,
        max_retries=max_retries,
        worker_prefix=worker_prefix,
    )
    return ServiceSession(manager, host=host, port=port).start()
