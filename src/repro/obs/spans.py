"""Spans: nesting context managers that time a phase of work.

A span reports twice — to the event bus (``span_start`` / ``span_end``
events, guarded by :func:`repro.obs.events.is_enabled`) and directly into
the default metrics registry's ``phase_seconds{span}`` histogram.  Spans
are coarse-grained (per experiment, per exploration, per CLI command), so
the unconditional histogram write is negligible next to the work being
timed.

Usage::

    with span("explore", n=2, k=1):
        for execution in explorer.executions():
            ...

Spans nest; :func:`current_span` exposes the innermost open span, and
each ``span_*`` event carries its nesting ``depth``.

Causal identity
---------------
Every span carries three ids (emitted on both ``span_*`` events):

``span_id``
    Content address of ``(trace_id, parent_id, sequence, name)`` via
    :func:`repro.obs.fingerprint.content_id` — the sequence number is
    the process's trace-local span counter.  No wall clock, no RNG:
    two identical runs mint identical ids, so a live trace and its
    replay stitch into the same tree.
``parent_id``
    The enclosing open span's id — or, for the outermost span, the
    parent adopted from the ``REPRO_TRACEPARENT`` environment variable
    (``<trace_id>-<span_id>``, Dapper/W3C-traceparent style).  That is
    how a ``repro serve`` worker subprocess roots its whole trace under
    the daemon's per-attempt span (see :mod:`repro.obs.jobs`).
``trace_id``
    Inherited from ``REPRO_TRACEPARENT`` when present; otherwise the
    first span of the process names the trace (its own ``span_id``).

:mod:`repro.obs.trace_view` stitches the resulting JSONL traces from a
daemon and all its worker attempts into one causal tree.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as _events
from repro.obs import fingerprint as _fingerprint
from repro.obs import metrics as _metrics

#: Environment variable carrying trace context across process spawns
#: (``<trace_id>-<parent_span_id>``; see :func:`format_traceparent`).
TRACEPARENT_ENV = "REPRO_TRACEPARENT"

#: Hex digits in a span/trace id (:func:`fingerprint.content_id` default).
ID_LENGTH = 12

_stack: List["Span"] = []


def derive_span_id(
    name: str, seq: int, trace_id: Optional[str], parent_id: Optional[str]
) -> str:
    """Deterministic span id: content address of the identity tuple.

    ``seq`` is the minting process's trace-local counter, so ids within
    one process never collide; two *processes* sharing a trace (e.g. a
    crashed worker and its resume) both count from zero but hang off
    different parent spans, and the parent id in the hash keeps their
    subtrees distinct.
    """
    return _fingerprint.content_id(
        {"name": name, "parent": parent_id, "seq": seq, "trace": trace_id},
        length=ID_LENGTH,
    )


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Serialize trace context for ``REPRO_TRACEPARENT``."""
    return f"{trace_id}-{span_id}"


def parse_traceparent(text: Optional[str]) -> Optional[Tuple[str, str]]:
    """Parse ``<trace_id>-<span_id>``; ``None`` on anything malformed.

    Tolerant on purpose: a worker started with a corrupt variable runs
    un-parented rather than refusing to run.
    """
    if not text:
        return None
    parts = text.strip().split("-")
    if len(parts) != 2 or not all(parts):
        return None
    return parts[0], parts[1]


class TraceContext:
    """The process-wide trace identity: trace id, adopted root parent,
    and the monotonically increasing span sequence counter."""

    __slots__ = ("trace_id", "root_parent_id", "seq")

    def __init__(
        self,
        trace_id: Optional[str] = None,
        root_parent_id: Optional[str] = None,
    ):
        self.trace_id = trace_id
        self.root_parent_id = root_parent_id
        self.seq = 0

    @classmethod
    def from_environment(cls) -> "TraceContext":
        parsed = parse_traceparent(os.environ.get(TRACEPARENT_ENV))
        if parsed is None:
            return cls()
        return cls(trace_id=parsed[0], root_parent_id=parsed[1])

    def allocate(self, name: str, parent_id: Optional[str]) -> str:
        """Mint the next span id; the first span names an unnamed trace."""
        span_id = derive_span_id(name, self.seq, self.trace_id, parent_id)
        self.seq += 1
        if self.trace_id is None:
            self.trace_id = span_id
        return span_id


_context: Optional[TraceContext] = None


def trace_context() -> TraceContext:
    """The process trace context, created from the environment on first
    use (so importing this module never reads ``os.environ``)."""
    global _context
    if _context is None:
        _context = TraceContext.from_environment()
    return _context


def reset_trace_context() -> None:
    """Drop the process trace context (tests; re-reads the environment
    on the next span)."""
    global _context
    _context = None


class Span:
    """One timed phase.  Use via the :func:`span` factory."""

    __slots__ = (
        "name", "fields", "registry", "seconds", "_start",
        "span_id", "parent_id", "trace_id",
    )

    def __init__(
        self,
        name: str,
        registry: Optional[_metrics.MetricsRegistry] = None,
        **fields: Any,
    ):
        self.name = name
        self.fields: Dict[str, Any] = fields
        self.registry = registry
        self.seconds: Optional[float] = None
        self._start: Optional[float] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None

    def __enter__(self) -> "Span":
        context = trace_context()
        self.parent_id = (
            _stack[-1].span_id if _stack else context.root_parent_id
        )
        self.span_id = context.allocate(self.name, self.parent_id)
        self.trace_id = context.trace_id
        self._start = time.perf_counter()
        _stack.append(self)
        if _events.is_enabled():
            _events.emit(
                "span_start",
                span=self.name,
                depth=len(_stack) - 1,
                span_id=self.span_id,
                parent_id=self.parent_id,
                trace_id=self.trace_id,
                **self.fields,
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is None:
            # Exited without entering (a misuse an `assert` would catch
            # only until `python -O` strips it): report, don't corrupt.
            _events.emit(
                "span_error",
                span=self.name,
                reason="exited without entering",
            )
            return
        self.seconds = time.perf_counter() - self._start
        if _stack and _stack[-1] is self:
            _stack.pop()
        else:  # tolerate out-of-order exits rather than corrupting the stack
            try:
                _stack.remove(self)
            except ValueError:
                pass
        registry = self.registry if self.registry is not None else _metrics.get_registry()
        # A bus-installed registry receives the span_end event below and
        # observes phase_seconds there; observing here too would double
        # count and make live metrics disagree with a trace replay.
        if not registry.is_installed():
            registry.histogram("phase_seconds", span=self.name).observe(self.seconds)
        if _events.is_enabled():
            _events.emit(
                "span_end",
                span=self.name,
                seconds=self.seconds,
                depth=len(_stack),
                error=exc_type.__name__ if exc_type is not None else None,
                span_id=self.span_id,
                parent_id=self.parent_id,
                trace_id=self.trace_id,
                **self.fields,
            )


def span(
    name: str, registry: Optional[_metrics.MetricsRegistry] = None, **fields: Any
) -> Span:
    """Create a span context manager: ``with span("phase", key=value): ...``."""
    return Span(name, registry=registry, **fields)


def current_span() -> Optional[Span]:
    """The innermost open span, or ``None`` outside any span."""
    return _stack[-1] if _stack else None
