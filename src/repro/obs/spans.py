"""Spans: nesting context managers that time a phase of work.

A span reports twice — to the event bus (``span_start`` / ``span_end``
events, guarded by :func:`repro.obs.events.is_enabled`) and directly into
the default metrics registry's ``phase_seconds{span}`` histogram.  Spans
are coarse-grained (per experiment, per exploration, per CLI command), so
the unconditional histogram write is negligible next to the work being
timed.

Usage::

    with span("explore", n=2, k=1):
        for execution in explorer.executions():
            ...

Spans nest; :func:`current_span` exposes the innermost open span, and
each ``span_*`` event carries its nesting ``depth``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs import events as _events
from repro.obs import metrics as _metrics

_stack: List["Span"] = []


class Span:
    """One timed phase.  Use via the :func:`span` factory."""

    __slots__ = ("name", "fields", "registry", "seconds", "_start")

    def __init__(
        self,
        name: str,
        registry: Optional[_metrics.MetricsRegistry] = None,
        **fields: Any,
    ):
        self.name = name
        self.fields: Dict[str, Any] = fields
        self.registry = registry
        self.seconds: Optional[float] = None
        self._start: Optional[float] = None

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        _stack.append(self)
        if _events.is_enabled():
            _events.emit(
                "span_start", span=self.name, depth=len(_stack) - 1, **self.fields
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None, "span exited without entering"
        self.seconds = time.perf_counter() - self._start
        if _stack and _stack[-1] is self:
            _stack.pop()
        else:  # tolerate out-of-order exits rather than corrupting the stack
            try:
                _stack.remove(self)
            except ValueError:
                pass
        registry = self.registry if self.registry is not None else _metrics.get_registry()
        # A bus-installed registry receives the span_end event below and
        # observes phase_seconds there; observing here too would double
        # count and make live metrics disagree with a trace replay.
        if not registry.is_installed():
            registry.histogram("phase_seconds", span=self.name).observe(self.seconds)
        if _events.is_enabled():
            _events.emit(
                "span_end",
                span=self.name,
                seconds=self.seconds,
                depth=len(_stack),
                error=exc_type.__name__ if exc_type is not None else None,
                **self.fields,
            )


def span(
    name: str, registry: Optional[_metrics.MetricsRegistry] = None, **fields: Any
) -> Span:
    """Create a span context manager: ``with span("phase", key=value): ...``."""
    return Span(name, registry=registry, **fields)


def current_span() -> Optional[Span]:
    """The innermost open span, or ``None`` outside any span."""
    return _stack[-1] if _stack else None
