"""Self-contained HTML run reports from a metrics registry + profiler.

``render_html`` turns the digest data (a :class:`MetricsRegistry` and a
:class:`~repro.obs.profile.Profiler`, both fed from the same event
stream) into one dependency-free HTML file: inline CSS, no scripts, no
external fetches — safe to attach to a CI run or mail around.  Exposed
on the CLI as ``repro stats TRACE --html out.html``.

Sections: verdict summary, exploration coverage, state-audit headroom
(when the trace carries an ``audit_summary`` event), span waterfall,
top-N step tables, bucketed distributions (schedule depth, run steps,
frontier branching), and the replay-overhead account.
:func:`render_audit_html` additionally renders the standalone
``repro audit --html`` report straight from a
:class:`~repro.obs.audit.StateAuditor`.

The waterfall has no wall-clock timestamps to draw from (events are
deliberately unstamped so identical runs produce identical traces);
spans are placed at *reconstructed* offsets — each child starts where
its previous sibling ended, at the parent's start for the first child.
Gaps (parent self-time) therefore accumulate at the right edge of each
parent bar; durations are exact, offsets are the deterministic
approximation.
"""

from __future__ import annotations

from html import escape
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import BUCKET_BOUNDS, Histogram, MetricsRegistry
from repro.obs.profile import Profiler, SpanNode

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { text-align: left; padding: .2rem .8rem .2rem 0;
         font-variant-numeric: tabular-nums; }
th { border-bottom: 1px solid #bbb; font-weight: 600; }
td.num, th.num { text-align: right; }
.muted { color: #777; font-size: .85rem; }
.wf { position: relative; height: 1.25rem; margin: 1px 0; }
.wf .bar { position: absolute; top: 0; bottom: 0; background: #4c72b0;
           border-radius: 2px; opacity: .85; }
.wf .lbl { position: absolute; left: .3rem; top: 0; line-height: 1.25rem;
           font-size: .75rem; color: #fff; white-space: nowrap;
           text-shadow: 0 0 2px rgba(0,0,0,.5); }
.hist .row { display: flex; align-items: center; gap: .5rem;
             font-size: .8rem; }
.hist .bound { width: 7rem; text-align: right;
               font-variant-numeric: tabular-nums; }
.hist .bar { background: #55a868; height: .7rem; border-radius: 2px; }
.hist .n { color: #777; }
.ok { color: #2e7d32; } .bad { color: #c62828; font-weight: 600; }
"""

#: The report stylesheet, exported for other HTML surfaces (the
#: ``repro serve`` dashboard) so every page in the toolchain shares one
#: visual language.
BASE_CSS = _CSS


def _fmt(value: float) -> str:
    return format(value, ".6g")


# ----------------------------------------------------------------------
# Section builders (each returns a list of HTML lines)
# ----------------------------------------------------------------------
def _summary_section(registry: MetricsRegistry, profiler: Profiler) -> List[str]:
    if registry.is_empty() and not profiler.steps_total:
        return []
    rows: List[Tuple[str, str, str]] = []  # (label, value, css class)
    steps = registry.counter_total("steps_total")
    rows.append(("simulator steps", f"{steps:,}", ""))
    if profiler.steps_replayed:
        rows.append(
            (
                "replay overhead",
                f"{profiler.steps_replayed:,} replayed / "
                f"{profiler.steps_on_path:,} on-path "
                f"({profiler.replay_overhead():.2f}x)",
                "",
            )
        )
    for name in ("decisions_total", "schedules_explored", "schedules_truncated",
                 "states_visited", "valency_executions", "faults_injected",
                 "checkpoints_written_total", "explorations_interrupted"):
        total = registry.counter_total(name)
        if total:
            rows.append((name.replace("_", " "), f"{total:,}", ""))
    for verdict, count in sorted(
        registry.sum_by_label("runs_by_verdict", "verdict").items()
    ):
        css = "ok" if str(verdict) == "ok" else "bad"
        rows.append((f"runs with verdict “{verdict}”", f"{count:,}", css))
    for kind, count in sorted(
        registry.sum_by_label("budget_exhausted_total", "kind").items()
    ):
        rows.append((f"budget exhausted ({kind})", f"{count:,}", "bad"))
    out = ["<h2>Run summary</h2>", "<table>"]
    for label, value, css in rows:
        cls = f' class="{css}"' if css else ""
        out.append(
            f"<tr><td>{escape(label)}</td>"
            f"<td class=\"num\"><span{cls}>{escape(value)}</span></td></tr>"
        )
    out.append("</table>")
    return out


def _coverage_section(registry: MetricsRegistry) -> List[str]:
    """Exploration coverage/ETA as last seen by ``explore_heartbeat``.

    Replayed traces reconstruct the same gauges the live run served, so
    the report of an interrupted run shows how far it believed it was.
    """
    gauges = registry.snapshot()["gauges"]
    if "explore_executions" not in gauges:
        return []
    rows: List[Tuple[str, str]] = [
        ("executions enumerated", f"{gauges['explore_executions']:,}"),
        ("pending frontier prefixes", f"{gauges.get('explore_frontier', 0):,}"),
    ]
    if "explore_rate" in gauges:
        rows.append(("execution rate (EWMA)", f"{gauges['explore_rate']:,.1f}/s"))
    if "explore_remaining_estimate" in gauges:
        rows.append(
            ("estimated remaining", f"{gauges['explore_remaining_estimate']:,.0f}")
        )
    if "explore_coverage" in gauges:
        rows.append(("estimated coverage", f"{gauges['explore_coverage']:.1%}"))
    if "explore_eta_seconds" in gauges:
        rows.append(("ETA at last heartbeat", f"{gauges['explore_eta_seconds']:,.1f}s"))
    out = ["<h2>Exploration coverage</h2>", "<table>"]
    for label, value in rows:
        out.append(
            f"<tr><td>{escape(label)}</td>"
            f'<td class="num">{escape(value)}</td></tr>'
        )
    out.append("</table>")
    out.append(
        '<p class="muted">frontier-weighted estimates from the last '
        "explore_heartbeat — heuristic, not a bound.</p>"
    )
    return out


def _audit_section(registry: MetricsRegistry) -> List[str]:
    """State-space audit headroom as carried by ``audit_*`` gauges.

    Present in replayed traces whenever the run emitted an
    ``audit_summary`` event (``repro audit``, or any exploration with an
    attached :class:`~repro.obs.audit.StateAuditor`).
    """
    gauges = registry.snapshot()["gauges"]
    if "audit_configurations" not in gauges:
        return []
    rows: List[Tuple[str, str]] = [
        ("configurations visited", f"{gauges['audit_configurations']:,}"),
        ("distinct states", f"{gauges.get('audit_distinct_states', 0):,}"),
        (
            "revisit ratio (state-cache headroom)",
            f"{gauges.get('audit_revisit_ratio', 0.0):.1%}",
        ),
        ("distinct orbits", f"{gauges.get('audit_distinct_orbits', 0):,}"),
        (
            "orbit savings (symmetry headroom)",
            f"{gauges.get('audit_orbit_savings', 0.0):.1%}",
        ),
        ("adjacent pairs classified", f"{gauges.get('audit_pairs_checked', 0):,}"),
        (
            "commuting fraction (DPOR headroom)",
            f"{gauges.get('audit_commuting_fraction', 0.0):.1%}",
        ),
    ]
    out = ["<h2>State-space audit</h2>", "<table>"]
    for label, value in rows:
        out.append(
            f"<tr><td>{escape(label)}</td>"
            f'<td class="num">{escape(value)}</td></tr>'
        )
    out.append("</table>")
    out.append(
        '<p class="muted">redundancy a state cache / DPOR / pid-symmetry '
        "quotient would eliminate — estimators, not sound reductions "
        "(see docs/OBSERVABILITY.md, “State-space audit”).</p>"
    )
    return out


def render_audit_html(auditor: Any, title: str = "repro state-space audit") -> str:
    """Standalone audit report (``repro audit --html``): the headroom
    table plus the per-depth revisit histogram, deterministic bytes."""
    summary = auditor.summary()
    body: List[str] = [f"<h1>{escape(title)}</h1>"]
    rows: List[Tuple[str, str]] = [
        ("executions", f"{summary['executions']:,}"),
        ("configurations visited", f"{summary['configurations']:,}"),
        ("distinct states", f"{summary['distinct_states']:,}"),
        ("revisit ratio (state-cache headroom)", f"{summary['revisit_ratio']:.1%}"),
        ("distinct orbits", f"{summary['distinct_orbits']:,}"),
        ("orbit savings (symmetry headroom)", f"{summary['orbit_savings']:.1%}"),
        (
            "adjacent pairs classified",
            f"{summary['pairs_checked']:,}"
            + (" (sampling capped)" if summary.get("pairs_truncated") else ""),
        ),
        (
            "commuting fraction (DPOR headroom)",
            f"{summary['commuting_fraction']:.1%}",
        ),
    ]
    body.append("<h2>Reduction headroom</h2>")
    body.append("<table>")
    for label, value in rows:
        body.append(
            f"<tr><td>{escape(label)}</td>"
            f'<td class="num">{escape(value)}</td></tr>'
        )
    body.append("</table>")
    depth_rows = auditor.depth_rows()
    if depth_rows:
        body.append("<h2>Revisit ratio by depth</h2>")
        body.append("<table>")
        body.append(
            '<tr><th class="num">depth</th><th class="num">visits</th>'
            '<th class="num">revisits</th><th class="num">ratio</th></tr>'
        )
        for depth, visits, revisits, ratio in depth_rows:
            body.append(
                f'<tr><td class="num">{depth}</td>'
                f'<td class="num">{visits:,}</td>'
                f'<td class="num">{revisits:,}</td>'
                f'<td class="num">{ratio:.1%}</td></tr>'
            )
        body.append("</table>")
    body.append(
        '<p class="muted">estimators for the ROADMAP hot-loop reductions '
        "(state cache / DPOR / pid symmetry) — see docs/OBSERVABILITY.md, "
        "“State-space audit”.</p>"
    )
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{escape(title)}</title>"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


def _waterfall_section(profiler: Profiler, max_rows: int = 60) -> List[str]:
    intervals: List[Tuple[str, int, float, float]] = []  # name, depth, start, dur

    def walk(node: SpanNode, start: float, depth: int) -> None:
        for child in node.children:
            seconds = child.seconds or 0.0
            intervals.append((child.name, depth, start, seconds))
            walk(child, start, depth + 1)
            start += seconds

    walk(profiler.root, 0.0, 0)
    if not intervals:
        return []
    total = sum(seconds for _, depth, _, seconds in intervals if depth == 0)
    out = ["<h2>Span waterfall</h2>"]
    if len(intervals) > max_rows:
        out.append(
            f'<p class="muted">showing the {max_rows} longest of '
            f"{len(intervals)} spans</p>"
        )
        intervals = sorted(intervals, key=lambda iv: -iv[3])[:max_rows]
        intervals.sort(key=lambda iv: (iv[2], iv[1]))
    for name, depth, start, seconds in intervals:
        left = 100.0 * start / total if total else 0.0
        width = max(0.3, 100.0 * seconds / total if total else 0.0)
        label = escape(f"{name} — {_fmt(seconds)}s")
        indent = depth * 0.6
        out.append(
            f'<div class="wf" style="margin-left:{indent:.1f}rem">'
            f'<div class="bar" style="left:{left:.2f}%;width:{width:.2f}%"></div>'
            f'<div class="lbl" style="left:calc({left:.2f}% + .3rem)">{label}</div>'
            f"</div>"
        )
    out.append(
        '<p class="muted">durations are measured; horizontal offsets are '
        "reconstructed (spans carry no wall-clock timestamps so identical "
        "runs stay byte-identical).</p>"
    )
    return out


def _steps_tables_section(registry: MetricsRegistry, top_n: int = 20) -> List[str]:
    by_call: Dict[Tuple[str, str], int] = {}
    for labels, value in registry.counters_named("steps_total").items():
        label_map = dict(labels)
        key = (str(label_map.get("object")), str(label_map.get("method")))
        by_call[key] = by_call.get(key, 0) + value
    if not by_call:
        return []
    total = sum(by_call.values())
    out = [f"<h2>Top {min(top_n, len(by_call))} step sites</h2>", "<table>",
           '<tr><th>object.method</th><th class="num">steps</th>'
           '<th class="num">share</th></tr>']
    ranked = sorted(by_call.items(), key=lambda item: (-item[1], item[0]))[:top_n]
    for (obj, method), count in ranked:
        share = 100.0 * count / total if total else 0.0
        out.append(
            f"<tr><td>{escape(obj)}.{escape(method)}</td>"
            f'<td class="num">{count:,}</td>'
            f'<td class="num">{share:.1f}%</td></tr>'
        )
    out.append("</table>")
    by_pid = registry.sum_by_label("steps_total", "pid")
    if by_pid:
        out.append("<table>")
        out.append('<tr><th>process</th><th class="num">steps</th></tr>')
        for pid, count in sorted(by_pid.items(), key=lambda item: str(item[0])):
            out.append(
                f"<tr><td>p{escape(str(pid))}</td>"
                f'<td class="num">{count:,}</td></tr>'
            )
        out.append("</table>")
    return out


def _histogram_rows(histogram: Histogram) -> List[str]:
    populated = [
        (index, count) for index, count in enumerate(histogram.buckets) if count
    ]
    if not populated:
        return []
    biggest = max(count for _, count in populated)
    out = ['<div class="hist">']
    for index, count in populated:
        bound = (
            f"≤ {_fmt(BUCKET_BOUNDS[index])}"
            if index < len(BUCKET_BOUNDS)
            else f"> {_fmt(BUCKET_BOUNDS[-1])}"
        )
        width = max(2.0, 60.0 * count / biggest)
        out.append(
            f'<div class="row"><span class="bound">{bound}</span>'
            f'<span class="bar" style="width:{width:.1f}%"></span>'
            f'<span class="n">{count:,}</span></div>'
        )
    out.append("</div>")
    out.append(
        f'<p class="muted">n={histogram.count:,}, min {_fmt(histogram.minimum or 0)}, '
        f"p50 {_fmt(histogram.p50)}, p90 {_fmt(histogram.p90)}, "
        f"p99 {_fmt(histogram.p99)}, max {_fmt(histogram.maximum or 0)}</p>"
    )
    return out


def _distributions_section(registry: MetricsRegistry) -> List[str]:
    out: List[str] = []
    for name, title in (
        ("schedule_depth", "Schedule depth"),
        ("run_steps", "Steps per run"),
        ("frontier_branches", "Frontier branching factor"),
        ("witness_shrink_steps", "Witness shrink (decisions removed)"),
        ("witness_min_length", "Shrunk witness length"),
    ):
        histogram = registry.get_histogram(name)
        if histogram is None or not histogram.count:
            continue
        out.append(f"<h2>{escape(title)}</h2>")
        out.extend(_histogram_rows(histogram))
    return out


def _witness_section(witnesses: List[Dict[str, Any]]) -> List[str]:
    """Captured witness bundles, with embedded lane views where the
    bundle is still readable on this machine.

    ``witnesses`` entries are ``witness_captured`` event fields (path/
    kind/source/steps).  The lane table is rebuilt from each bundle's
    archived step table — no replay, so the section renders even when
    the spec that produced the witness is unavailable.
    """
    if not witnesses:
        return []
    out = ["<h2>Witnesses</h2>", "<table>",
           '<tr><th>bundle</th><th>kind</th><th>source</th>'
           '<th class="num">steps</th></tr>']
    for entry in witnesses:
        path = str(entry.get("path", "?"))
        out.append(
            f"<tr><td>{escape(path)}</td>"
            f"<td>{escape(str(entry.get('kind', '?')))}</td>"
            f"<td>{escape(str(entry.get('source', '?')))}</td>"
            f'<td class="num">{escape(str(entry.get("steps", "?")))}</td></tr>'
        )
    out.append("</table>")
    out.append(
        '<p class="muted">replay, shrink, and narrate any bundle with '
        "<code>repro explain &lt;bundle&gt;</code>.</p>"
    )
    from repro.obs import explain as _explain
    from repro.obs import witness as _witness

    for entry in witnesses:
        path = str(entry.get("path", ""))
        try:
            records, _skipped = _witness.read_witness(path)
        except OSError:
            continue
        for record in records:
            view = _explain.view_from_record(record)
            label = record.get("label") or record.get("kind", "witness")
            out.append(f"<h3>{escape(str(label))}</h3>")
            out.append(_explain.lanes_html(view))
    return out


def render_html(
    registry: MetricsRegistry,
    profiler: Profiler,
    title: str = "repro run report",
    sources: Optional[List[str]] = None,
    events: int = 0,
    skipped: int = 0,
    witnesses: Optional[List[Dict[str, Any]]] = None,
) -> str:
    """Render the full report; returns a complete HTML document.

    ``witnesses`` — ``witness_captured`` event fields collected from the
    trace (the CLI's ``stats`` command gathers them during replay); each
    gets a row in the witness table and, when its bundle file is still
    readable, an embedded HTML lane view.
    """
    body: List[str] = [f"<h1>{escape(title)}</h1>"]
    meta_bits: List[str] = []
    if sources:
        meta_bits.append("trace: " + ", ".join(sources))
    if events:
        meta_bits.append(f"{events:,} events")
    if skipped:
        meta_bits.append(f"{skipped:,} corrupt lines skipped")
    if meta_bits:
        body.append(f'<p class="muted">{escape(" · ".join(meta_bits))}</p>')
    body.extend(_summary_section(registry, profiler))
    body.extend(_coverage_section(registry))
    body.extend(_audit_section(registry))
    body.extend(_waterfall_section(profiler))
    body.extend(_steps_tables_section(registry))
    body.extend(_distributions_section(registry))
    body.extend(_witness_section(list(witnesses or [])))
    css = _CSS
    if witnesses:
        # Lane-view styling ships with the explainer; pulled in lazily so
        # importing this module never drags in the runtime layer.
        from repro.obs.explain import LANES_CSS

        css = _CSS + LANES_CSS
    if len(body) <= 2:
        body.append("<p>(no metrics recorded)</p>")
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{escape(title)}</title>"
        f"<style>{css}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )
