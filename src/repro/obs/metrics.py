"""Metrics: counters, gauges, and timing histograms with labels.

A :class:`MetricsRegistry` holds named instruments, each keyed by a label
set (Prometheus-style: ``steps_total{pid=0,object='r',method='read'}``).
Two usage modes share the same digest code:

* **live** — spans observe directly into :func:`get_registry`, and a
  registry can be attached to the event bus with :meth:`MetricsRegistry.
  install` to derive step/schedule/state counters as a run executes;
* **replay** — ``python -m repro stats run.jsonl`` feeds an archived JSONL
  event stream through :meth:`MetricsRegistry.consume_event` and prints
  the identical digest, so a trace file is a complete account of a run.

Well-known metric names (see docs/OBSERVABILITY.md):

========================  ==========  ==========================================
name                      kind        meaning
========================  ==========  ==========================================
``steps_total``           counter     simulator steps, by pid/object/method
``steps_replayed_total``  counter     steps re-executed by ``Explorer._replay``
``decisions_total``       counter     scheduler decisions, by pid
``schedules_explored``    counter     maximal executions enumerated
``schedules_truncated``   counter     executions cut off by the depth bound
``states_visited``        counter     object states visited by analyses
``runs_by_verdict``       counter     solvability-checked runs, by verdict
``faults_injected``       counter     crash-stops applied (``crash`` events)
``recoveries_total``      counter     crashed processes revived (``recover``)
``budget_exhausted_total``  counter   budget trips, by kind (deadline/steps)
``checkpoints_written_total``  counter  explorer checkpoints flushed
``explorations_interrupted``  counter  walks cut short by a budget
``witnesses_captured_total``  counter  witness bundles archived, by kind
``schedule_depth``        histogram   length of explored executions
``run_steps``             histogram   steps per completed ``System.run``
``witness_shrink_steps``  histogram   decisions removed per ddmin shrink
``witness_min_length``    histogram   decisions left after ddmin
``frontier_branches``     histogram   branching factor at explorer frontiers
``phase_seconds``         histogram   wall time per span, by span name
``explore_executions``    gauge       executions done (latest heartbeat)
``explore_frontier``      gauge       pending DFS prefixes (latest heartbeat)
``explore_rate``          gauge       EWMA executions/second
``explore_eta_seconds``   gauge       estimated seconds to completion
``explore_coverage``      gauge       estimated fraction of the tree done
``suite_experiments_completed``  gauge  experiments finished so far
``audit_configurations``  gauge       configurations visited by the state audit
``audit_distinct_states``  gauge      distinct configuration fingerprints
``audit_revisit_ratio``   gauge       state-cache headroom (``repro audit``)
``audit_distinct_orbits``  gauge      distinct pid-symmetry orbit estimates
``audit_orbit_savings``   gauge       symmetry-reduction headroom
``audit_pairs_checked``   gauge       adjacent pairs classified by the audit
``audit_commuting_fraction``  gauge   DPOR headroom (commuting pair fraction)
``execset_records``       gauge       execution-set records in this run's stream
``execset_total_records``  gauge      records incl. the resumed base (execset)
``execset_streams_written_total``  counter  execset digest streams flushed
========================  ==========  ==========================================

Histograms use the fixed exponential bucket ladder :data:`BUCKET_BOUNDS`
(powers of two, 2^-13 … 2^20) and report p50/p90/p99 via interpolation;
:meth:`MetricsRegistry.render_prometheus` writes the standard text
exposition format for all instruments.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as _events

LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]

#: Fixed exponential bucket boundaries shared by every histogram: powers of
#: two from 2^-13 (~0.12 ms, below any span worth timing) to 2^20 (~1M, above
#: any schedule depth the explorer can enumerate).  One fixed ladder keeps
#: histograms mergeable across runs and traces — a bucket means the same
#: thing in every BENCH/stats file ever written.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-13, 21))


def _num(value: Any, default: float = 0.0) -> float:
    """Coerce an event field to a float, tolerating corrupt traces."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return default
    return float(value)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-observed value (e.g. frontier size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value


class Histogram:
    """Bucketed distribution of observed samples.

    Samples land in fixed exponential buckets (:data:`BUCKET_BOUNDS`), so
    the digest can report real percentiles (p50/p90/p99) instead of just
    min/mean/max, at a constant ~35 ints of storage per instrument.
    ``buckets[i]`` counts samples ``<= BUCKET_BOUNDS[i]``; the final slot
    is the overflow bucket.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def saturated(self) -> bool:
        """True when any sample landed in the overflow bucket
        (``> BUCKET_BOUNDS[-1]``).

        A saturated histogram's interpolated percentiles are lower
        bounds, not estimates: the overflow bucket has no upper edge, so
        interpolation inside it is clamped to the last finite bound (and
        to the observed max).  Surfaced in :meth:`MetricsRegistry.
        digest`, :meth:`MetricsRegistry.snapshot`, and as a
        ``<name>_saturated`` gauge in the Prometheus exposition so
        dashboards can see the caveat instead of trusting a fabricated
        p99.
        """
        return self.buckets[-1] > 0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the landing bucket, clamped to the
        exact observed min/max — so single-sample and constant streams
        report the exact value, and estimates never leave the observed
        range.  A quantile landing in the overflow bucket does not
        interpolate (the bucket is unbounded): it reports the last
        finite bound, lifted to the observed min/max clamp — check
        :attr:`saturated` before trusting the tail.
        """
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                # The overflow bucket has no upper edge; interpolating
                # against the observed max would fabricate precision, so
                # clamp to the last finite bound and let the min/max
                # clamp below lift single-valued streams to exactness.
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else BUCKET_BOUNDS[-1]
                )
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.minimum or 0.0), self.maximum or estimate)
            cumulative += bucket_count
        return self.maximum if self.maximum is not None else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


def _key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return name, tuple(sorted(labels.items()))


def _label_str(labels: Tuple[Tuple[str, Any], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class MetricsRegistry:
    """A family of named, labelled instruments created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, Counter] = {}
        self._gauges: Dict[LabelKey, Gauge] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}
        self._installed = False

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def get_histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        """Read-only lookup: the histogram if it exists, else ``None``
        (unlike :meth:`histogram`, never creates the instrument)."""
        return self._histograms.get(_key(name, labels))

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def counters_named(self, name: str) -> Dict[Tuple[Tuple[str, Any], ...], int]:
        """All label sets (and values) of one counter family."""
        return {
            labels: counter.value
            for (n, labels), counter in self._counters.items()
            if n == name
        }

    def counter_total(self, name: str) -> int:
        """Sum of a counter family over all label sets."""
        return sum(self.counters_named(name).values())

    def sum_by_label(self, name: str, label: str) -> Dict[Any, int]:
        """Aggregate a counter family by one label dimension
        (e.g. ``steps_total`` by ``pid``)."""
        totals: Dict[Any, int] = {}
        for labels, value in self.counters_named(name).items():
            key = dict(labels).get(label)
            if key is None:
                continue
            totals[key] = totals.get(key, 0) + value
        return totals

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict form of everything, keyed ``name{labels}`` — the
        serializable interchange format for tests and tooling."""
        out: Dict[str, Dict[str, Any]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), counter in sorted(
            self._counters.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            out["counters"][name + _label_str(labels)] = counter.value
        for (name, labels), gauge in sorted(
            self._gauges.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            out["gauges"][name + _label_str(labels)] = gauge.value
        for (name, labels), histogram in sorted(
            self._histograms.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            out["histograms"][name + _label_str(labels)] = {
                "count": histogram.count,
                "total": histogram.total,
                "min": histogram.minimum,
                "max": histogram.maximum,
                "mean": histogram.mean,
                "p50": histogram.p50,
                "p90": histogram.p90,
                "p99": histogram.p99,
                "saturated": histogram.saturated,
            }
        return out

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    # ------------------------------------------------------------------
    # Event-driven collection (live subscription or JSONL replay)
    # ------------------------------------------------------------------
    def consume_event(self, name: str, fields: Dict[str, Any]) -> None:
        """Translate a well-known bus event into metric updates.

        Unknown event names are ignored, so the event schema can grow
        without breaking replay of old traces.
        """
        if name == "step":
            self.counter(
                "steps_total",
                pid=fields.get("pid"),
                object=fields.get("object"),
                method=fields.get("method"),
            ).inc()
            if fields.get("replay"):
                self.counter("steps_replayed_total").inc()
        elif name == "decision":
            self.counter("decisions_total", pid=fields.get("pid")).inc()
            self.gauge("enabled_processes").set(fields.get("enabled", 0))
        elif name == "schedule_explored":
            self.counter("schedules_explored").inc()
            self.histogram("schedule_depth").observe(_num(fields.get("depth")))
        elif name == "schedule_truncated":
            self.counter("schedules_truncated").inc()
        elif name == "frontier":
            self.gauge("frontier_branches").set(fields.get("branches", 0))
            self.histogram("frontier_branches").observe(_num(fields.get("branches")))
        elif name == "states_visited":
            self.counter(
                "states_visited", object=fields.get("object", "?")
            ).inc(int(_num(fields.get("states"))))
        elif name == "valency_subtree":
            self.counter("valency_executions").inc(int(_num(fields.get("executions"))))
        elif name == "run_verdict":
            self.counter(
                "runs_by_verdict", verdict=fields.get("verdict", "unknown")
            ).inc()
        elif name == "crash":
            self.counter("faults_injected").inc()
        elif name == "recover":
            self.counter("recoveries_total").inc()
        elif name == "budget_exhausted":
            self.counter(
                "budget_exhausted_total", kind=fields.get("kind", "unknown")
            ).inc()
        elif name == "checkpoint_written":
            self.counter("checkpoints_written_total").inc()
            self.gauge("checkpoint_frontier").set(fields.get("frontier", 0))
        elif name == "exploration_interrupted":
            self.counter("explorations_interrupted").inc()
        elif name == "explore_heartbeat":
            self.gauge("explore_executions").set(int(_num(fields.get("executions"))))
            self.gauge("explore_frontier").set(int(_num(fields.get("frontier"))))
            # Estimation fields are optional on the event (absent until the
            # estimator warms up); gauges appear only once they do.
            for field_name, gauge_name in (
                ("rate", "explore_rate"),
                ("eta_seconds", "explore_eta_seconds"),
                ("coverage", "explore_coverage"),
                ("remaining_estimate", "explore_remaining_estimate"),
            ):
                value = fields.get(field_name)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    self.gauge(gauge_name).set(float(value))
        elif name == "suite_progress":
            self.gauge("suite_experiments_total").set(int(_num(fields.get("total"))))
            self.gauge("suite_experiments_completed").set(
                int(_num(fields.get("completed")))
            )
        elif name == "run_end":
            self.histogram("run_steps").observe(_num(fields.get("steps")))
        elif name == "span_end":
            self.histogram(
                "phase_seconds", span=fields.get("span", "?")
            ).observe(_num(fields.get("seconds")))
        elif name == "witness_captured":
            self.counter(
                "witnesses_captured_total", kind=fields.get("kind", "unknown")
            ).inc()
        elif name == "audit_summary":
            for field_name, gauge_name in (
                ("configurations", "audit_configurations"),
                ("distinct_states", "audit_distinct_states"),
                ("revisit_ratio", "audit_revisit_ratio"),
                ("distinct_orbits", "audit_distinct_orbits"),
                ("orbit_savings", "audit_orbit_savings"),
                ("pairs_checked", "audit_pairs_checked"),
                ("commuting_fraction", "audit_commuting_fraction"),
                ("executions", "audit_executions"),
            ):
                value = fields.get(field_name)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    self.gauge(gauge_name).set(value)
        elif name == "execset_digest":
            for field_name, gauge_name in (
                ("records", "execset_records"),
                ("total_records", "execset_total_records"),
            ):
                value = fields.get(field_name)
                if isinstance(value, int) and not isinstance(value, bool):
                    self.gauge(gauge_name).set(value)
            self.counter("execset_streams_written_total").inc()
        elif name == "witness_shrunk":
            self.histogram("witness_shrink_steps").observe(
                _num(fields.get("removed"))
            )
            self.histogram("witness_min_length").observe(
                _num(fields.get("min_length"))
            )

    def install(self) -> "MetricsRegistry":
        """Attach this registry to the event bus (live collection).

        While installed, spans skip their direct ``phase_seconds``
        observation into this registry — the ``span_end`` event arriving
        through the bus carries the same sample, and double counting
        would make a live registry disagree with a trace replay.
        """
        _events.subscribe(self.consume_event)
        self._installed = True
        return self

    def uninstall(self) -> None:
        _events.unsubscribe(self.consume_event)
        self._installed = False

    def is_installed(self) -> bool:
        """True while subscribed to the event bus via :meth:`install`."""
        return self._installed

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Human-readable metrics summary (the ``stats`` command body)."""
        lines = []
        steps_by_pid = self.sum_by_label("steps_total", "pid")
        steps_by_object = self.sum_by_label("steps_total", "object")
        steps_by_method = self.sum_by_label("steps_total", "method")
        if steps_by_pid:
            total_steps = self.counter_total("steps_total")
            replayed = self.counter_total("steps_replayed_total")
            suffix = ""
            if replayed:
                on_path = total_steps - replayed
                overhead = replayed / on_path if on_path else float("inf")
                suffix = (
                    f"  ({replayed} replayed + {on_path} on-path, "
                    f"{overhead:.1f}x replay overhead)"
                )
            lines.append(f"steps_total: {total_steps}{suffix}")
            lines.append(
                "  by process: "
                + ", ".join(
                    f"p{pid}={count}" for pid, count in sorted(steps_by_pid.items())
                )
            )
            top_objects = sorted(
                steps_by_object.items(), key=lambda item: -item[1]
            )[:12]
            lines.append(
                "  by object:  "
                + ", ".join(f"{obj}={count}" for obj, count in top_objects)
                + (" …" if len(steps_by_object) > 12 else "")
            )
            lines.append(
                "  by method:  "
                + ", ".join(
                    f"{m}={count}"
                    for m, count in sorted(steps_by_method.items(), key=lambda i: -i[1])
                )
            )
        for name in ("decisions_total", "schedules_explored", "schedules_truncated",
                     "states_visited", "valency_executions", "faults_injected",
                     "recoveries_total", "checkpoints_written_total",
                     "explorations_interrupted"):
            total = self.counter_total(name)
            if total:
                lines.append(f"{name}: {total}")
        witnesses = self.sum_by_label("witnesses_captured_total", "kind")
        if witnesses:
            lines.append(
                "witnesses_captured_total: "
                + ", ".join(f"{k}={c}" for k, c in sorted(witnesses.items()))
            )
        verdicts = self.sum_by_label("runs_by_verdict", "verdict")
        if verdicts:
            lines.append(
                "runs_by_verdict: "
                + ", ".join(f"{v}={c}" for v, c in sorted(verdicts.items()))
            )
        exhaustions = self.sum_by_label("budget_exhausted_total", "kind")
        if exhaustions:
            lines.append(
                "budget_exhausted_total: "
                + ", ".join(f"{k}={c}" for k, c in sorted(exhaustions.items()))
            )
        for histogram_name, unit in (
            ("schedule_depth", "schedules"),
            ("run_steps", "runs"),
            ("frontier_branches", "frontiers"),
            ("witness_shrink_steps", "shrinks"),
            ("witness_min_length", "witnesses"),
        ):
            histogram = self._histograms.get(_key(histogram_name, {}))
            if histogram is not None and histogram.count:
                caveat = (
                    " [saturated: percentiles are lower bounds]"
                    if histogram.saturated
                    else ""
                )
                lines.append(
                    f"{histogram_name}: min {histogram.minimum:g}, "
                    f"p50 {histogram.p50:.1f}, p90 {histogram.p90:.1f}, "
                    f"p99 {histogram.p99:.1f}, max {histogram.maximum:g} "
                    f"over {histogram.count} {unit}{caveat}"
                )
        gauges = sorted(
            (name + _label_str(labels), gauge.value)
            for (name, labels), gauge in self._gauges.items()
        )
        if gauges:
            lines.append(
                "gauges (last): "
                + ", ".join(f"{name}={value}" for name, value in gauges)
            )
        phases = [
            (dict(labels).get("span", "?"), histogram)
            for (name, labels), histogram in self._histograms.items()
            if name == "phase_seconds"
        ]
        if phases:
            lines.append("phase timings:")
            width = max(len(str(span)) for span, _ in phases)
            for span_name, histogram in sorted(
                phases, key=lambda item: -item[1].total
            ):
                lines.append(
                    f"  {str(span_name):<{width}}  {histogram.total:8.3f}s"
                    f"  ({histogram.count} call"
                    f"{'s' if histogram.count != 1 else ''})"
                )
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every instrument.

        Counters and gauges render as single samples, histograms as the
        standard ``_bucket{le=...}`` cumulative series plus ``_sum`` and
        ``_count``.  Leading all-zero buckets are omitted (an omitted
        series is implicitly zero); the ``+Inf`` bucket is always present.
        A gauge whose name collides with a histogram family is exposed
        with a ``_current`` suffix so each family keeps a single type.
        """
        def fmt_value(value: Any) -> str:
            if isinstance(value, float):
                return format(value, ".12g")
            return str(value)

        def fmt_labels(labels: Tuple[Tuple[str, Any], ...], extra: str = "") -> str:
            pairs = [
                "{}=\"{}\"".format(
                    k,
                    str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"),
                )
                for k, v in labels
            ]
            if extra:
                pairs.append(extra)
            return "{" + ",".join(pairs) + "}" if pairs else ""

        def families(instruments: Dict[LabelKey, Any]) -> Dict[str, List]:
            grouped: Dict[str, List] = {}
            for (name, labels), instrument in instruments.items():
                grouped.setdefault(name, []).append((labels, instrument))
            return {
                name: sorted(entries, key=lambda e: repr(e[0]))
                for name, entries in sorted(grouped.items())
            }

        histogram_names = {name for name, _labels in self._histograms}
        lines: List[str] = []
        for name, entries in families(self._counters).items():
            lines.append(f"# TYPE {name} counter")
            for labels, counter in entries:
                lines.append(f"{name}{fmt_labels(labels)} {fmt_value(counter.value)}")
        for name, entries in families(self._gauges).items():
            exposed = name + "_current" if name in histogram_names else name
            lines.append(f"# TYPE {exposed} gauge")
            for labels, gauge in entries:
                lines.append(f"{exposed}{fmt_labels(labels)} {fmt_value(gauge.value)}")
        for name, entries in families(self._histograms).items():
            lines.append(f"# TYPE {name} histogram")
            for labels, histogram in entries:
                cumulative = 0
                started = False
                for index, bucket_count in enumerate(histogram.buckets[:-1]):
                    cumulative += bucket_count
                    if not started and cumulative == 0:
                        continue
                    started = True
                    le = fmt_labels(
                        labels, extra=f'le="{format(BUCKET_BOUNDS[index], ".12g")}"'
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                    if cumulative == histogram.count:
                        break  # remaining buckets are flat; +Inf closes the series
                inf = fmt_labels(labels, extra='le="+Inf"')
                lines.append(f"{name}_bucket{inf} {histogram.count}")
                lines.append(f"{name}_sum{fmt_labels(labels)} {fmt_value(histogram.total)}")
                lines.append(f"{name}_count{fmt_labels(labels)} {histogram.count}")
            # Overflow-saturation caveat, emitted only for families where
            # it bites so existing scrape outputs stay byte-identical.
            flagged = [
                (labels, histogram)
                for labels, histogram in entries
                if histogram.saturated
            ]
            if flagged:
                lines.append(f"# TYPE {name}_saturated gauge")
                for labels, _histogram in flagged:
                    lines.append(f"{name}_saturated{fmt_labels(labels)} 1")
        return "\n".join(lines) + ("\n" if lines else "")


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (spans observe into it)."""
    return _registry


def reset_registry() -> MetricsRegistry:
    """Clear the default registry (used by CLI entry points and tests)."""
    _registry.reset()
    return _registry
