"""Metrics: counters, gauges, and timing histograms with labels.

A :class:`MetricsRegistry` holds named instruments, each keyed by a label
set (Prometheus-style: ``steps_total{pid=0,object='r',method='read'}``).
Two usage modes share the same digest code:

* **live** — spans observe directly into :func:`get_registry`, and a
  registry can be attached to the event bus with :meth:`MetricsRegistry.
  install` to derive step/schedule/state counters as a run executes;
* **replay** — ``python -m repro stats run.jsonl`` feeds an archived JSONL
  event stream through :meth:`MetricsRegistry.consume_event` and prints
  the identical digest, so a trace file is a complete account of a run.

Well-known metric names (see docs/OBSERVABILITY.md):

========================  ==========  ==========================================
name                      kind        meaning
========================  ==========  ==========================================
``steps_total``           counter     simulator steps, by pid/object/method
``decisions_total``       counter     scheduler decisions, by pid
``schedules_explored``    counter     maximal executions enumerated
``schedules_truncated``   counter     executions cut off by the depth bound
``states_visited``        counter     object states visited by analyses
``runs_by_verdict``       counter     solvability-checked runs, by verdict
``schedule_depth``        histogram   length of explored executions
``run_steps``             histogram   steps per completed ``System.run``
``phase_seconds``         histogram   wall time per span, by span name
========================  ==========  ==========================================
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.obs import events as _events

LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-observed value (e.g. frontier size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value


class Histogram:
    """Summary statistics of observed samples (count/sum/min/max/mean).

    Full distributions are overkill for this codebase's needs; the digest
    tables want totals and worst cases, which these four numbers carry
    without per-sample storage.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def _key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return name, tuple(sorted(labels.items()))


def _label_str(labels: Tuple[Tuple[str, Any], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class MetricsRegistry:
    """A family of named, labelled instruments created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, Counter] = {}
        self._gauges: Dict[LabelKey, Gauge] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def counters_named(self, name: str) -> Dict[Tuple[Tuple[str, Any], ...], int]:
        """All label sets (and values) of one counter family."""
        return {
            labels: counter.value
            for (n, labels), counter in self._counters.items()
            if n == name
        }

    def counter_total(self, name: str) -> int:
        """Sum of a counter family over all label sets."""
        return sum(self.counters_named(name).values())

    def sum_by_label(self, name: str, label: str) -> Dict[Any, int]:
        """Aggregate a counter family by one label dimension
        (e.g. ``steps_total`` by ``pid``)."""
        totals: Dict[Any, int] = {}
        for labels, value in self.counters_named(name).items():
            key = dict(labels).get(label)
            if key is None:
                continue
            totals[key] = totals.get(key, 0) + value
        return totals

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict form of everything, keyed ``name{labels}`` — the
        serializable interchange format for tests and tooling."""
        out: Dict[str, Dict[str, Any]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), counter in sorted(
            self._counters.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            out["counters"][name + _label_str(labels)] = counter.value
        for (name, labels), gauge in sorted(
            self._gauges.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            out["gauges"][name + _label_str(labels)] = gauge.value
        for (name, labels), histogram in sorted(
            self._histograms.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            out["histograms"][name + _label_str(labels)] = {
                "count": histogram.count,
                "total": histogram.total,
                "min": histogram.minimum,
                "max": histogram.maximum,
                "mean": histogram.mean,
            }
        return out

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    # ------------------------------------------------------------------
    # Event-driven collection (live subscription or JSONL replay)
    # ------------------------------------------------------------------
    def consume_event(self, name: str, fields: Dict[str, Any]) -> None:
        """Translate a well-known bus event into metric updates.

        Unknown event names are ignored, so the event schema can grow
        without breaking replay of old traces.
        """
        if name == "step":
            self.counter(
                "steps_total",
                pid=fields.get("pid"),
                object=fields.get("object"),
                method=fields.get("method"),
            ).inc()
        elif name == "decision":
            self.counter("decisions_total", pid=fields.get("pid")).inc()
            self.gauge("enabled_processes").set(fields.get("enabled", 0))
        elif name == "schedule_explored":
            self.counter("schedules_explored").inc()
            self.histogram("schedule_depth").observe(fields.get("depth", 0))
        elif name == "schedule_truncated":
            self.counter("schedules_truncated").inc()
        elif name == "frontier":
            self.gauge("frontier_branches").set(fields.get("branches", 0))
        elif name == "states_visited":
            self.counter(
                "states_visited", object=fields.get("object", "?")
            ).inc(fields.get("states", 0))
        elif name == "valency_subtree":
            self.counter("valency_executions").inc(fields.get("executions", 0))
        elif name == "run_verdict":
            self.counter(
                "runs_by_verdict", verdict=fields.get("verdict", "unknown")
            ).inc()
        elif name == "run_end":
            self.histogram("run_steps").observe(fields.get("steps", 0))
        elif name == "span_end":
            self.histogram(
                "phase_seconds", span=fields.get("span", "?")
            ).observe(fields.get("seconds", 0.0))

    def install(self) -> "MetricsRegistry":
        """Attach this registry to the event bus (live collection)."""
        _events.subscribe(self.consume_event)
        return self

    def uninstall(self) -> None:
        _events.unsubscribe(self.consume_event)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Human-readable metrics summary (the ``stats`` command body)."""
        lines = []
        steps_by_pid = self.sum_by_label("steps_total", "pid")
        steps_by_object = self.sum_by_label("steps_total", "object")
        steps_by_method = self.sum_by_label("steps_total", "method")
        if steps_by_pid:
            lines.append(f"steps_total: {self.counter_total('steps_total')}")
            lines.append(
                "  by process: "
                + ", ".join(
                    f"p{pid}={count}" for pid, count in sorted(steps_by_pid.items())
                )
            )
            top_objects = sorted(
                steps_by_object.items(), key=lambda item: -item[1]
            )[:12]
            lines.append(
                "  by object:  "
                + ", ".join(f"{obj}={count}" for obj, count in top_objects)
                + (" …" if len(steps_by_object) > 12 else "")
            )
            lines.append(
                "  by method:  "
                + ", ".join(
                    f"{m}={count}"
                    for m, count in sorted(steps_by_method.items(), key=lambda i: -i[1])
                )
            )
        for name in ("decisions_total", "schedules_explored", "schedules_truncated",
                     "states_visited", "valency_executions"):
            total = self.counter_total(name)
            if total:
                lines.append(f"{name}: {total}")
        verdicts = self.sum_by_label("runs_by_verdict", "verdict")
        if verdicts:
            lines.append(
                "runs_by_verdict: "
                + ", ".join(f"{v}={c}" for v, c in sorted(verdicts.items()))
            )
        depth = self._histograms.get(_key("schedule_depth", {}))
        if depth is not None and depth.count:
            lines.append(
                f"schedule_depth: min {depth.minimum:g}, mean {depth.mean:.1f}, "
                f"max {depth.maximum:g} over {depth.count} schedules"
            )
        run_steps = self._histograms.get(_key("run_steps", {}))
        if run_steps is not None and run_steps.count:
            lines.append(
                f"run_steps: {run_steps.count} runs, mean {run_steps.mean:.1f}, "
                f"max {run_steps.maximum:g}"
            )
        phases = [
            (dict(labels).get("span", "?"), histogram)
            for (name, labels), histogram in self._histograms.items()
            if name == "phase_seconds"
        ]
        if phases:
            lines.append("phase timings:")
            width = max(len(str(span)) for span, _ in phases)
            for span_name, histogram in sorted(
                phases, key=lambda item: -item[1].total
            ):
                lines.append(
                    f"  {str(span_name):<{width}}  {histogram.total:8.3f}s"
                    f"  ({histogram.count} call"
                    f"{'s' if histogram.count != 1 else ''})"
                )
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (spans observe into it)."""
    return _registry


def reset_registry() -> MetricsRegistry:
    """Clear the default registry (used by CLI entry points and tests)."""
    _registry.reset()
    return _registry
