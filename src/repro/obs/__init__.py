"""Observability: structured events, metrics, spans, and progress.

The runtime quantifies over adversarial schedules, so a single report run
silently executes millions of simulation steps.  This package is the
measurement substrate for all of it:

* :mod:`repro.obs.events` — a structured event bus with pluggable sinks
  (null / in-memory ring buffer / JSONL file).  Disabled by default: the
  hot paths guard every emission behind :func:`events.is_enabled`, so an
  uninstrumented run pays only one flag check per step.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and timing
  histograms (``steps_total{pid,object,method}``, ``schedules_explored``,
  ``states_visited``, ``runs_by_verdict``, ``phase_seconds{span}``), with
  an event-consumer that rebuilds the same metrics from an archived JSONL
  stream (``python -m repro stats run.jsonl``).
* :mod:`repro.obs.spans` — nesting context-manager spans
  (``with span("explore", n=n, k=k): ...``) that time a phase, report to
  the event bus, and observe into the metrics registry.
* :mod:`repro.obs.progress` — rate-limited stderr progress reporting for
  long explorer/suite runs (``python -m repro check 3 1 --progress``).
* :mod:`repro.obs.profile` — deterministic profiler folding the event
  stream into a span call tree with per-``object.method`` step counts,
  replay-overhead accounting, and collapsed-stack (flamegraph) export
  (``repro stats TRACE --flame out.folded``).
* :mod:`repro.obs.report` — self-contained HTML run reports
  (``repro stats TRACE --html out.html``).
* :mod:`repro.obs.bench` — the BENCH_runtime.json bench-trajectory schema,
  the ``python -m repro bench-compare`` regression gate, and the committed
  BENCH_history.jsonl trend.
* :mod:`repro.obs.fingerprint` — content-addressed hashing shared by
  witness ids and configuration fingerprints (stable JSON, truncated
  sha256, pid-permutation canonicalization).
* :mod:`repro.obs.audit` — the opt-in state-space redundancy profiler
  (``python -m repro audit``): revisit ratio, commuting-pair fraction,
  and symmetry-orbit savings for an exhaustive walk.

Quickstart::

    from repro.obs import JsonlSink, set_sink, span

    set_sink(JsonlSink("run.jsonl"))
    with span("explore", n=2, k=1):
        ...                       # instrumented runtime emits step events
    set_sink(None)                # back to the zero-overhead NullSink

See docs/OBSERVABILITY.md for the event schema and metric names.
"""

from repro.obs.audit import StateAuditor, run_audit
from repro.obs.events import (
    NULL_SINK,
    JsonlReadStats,
    JsonlSink,
    NullSink,
    RingBufferSink,
    Sink,
    emit,
    get_sink,
    is_enabled,
    read_jsonl,
    set_sink,
    subscribe,
    unsubscribe,
    use_sink,
)
from repro.obs.fingerprint import (
    canonical_fingerprint,
    configuration_fingerprint,
    content_id,
    stable_json,
)
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.profile import Profiler, SpanNode
from repro.obs.progress import ProgressReporter
from repro.obs.report import render_html
from repro.obs.spans import Span, current_span, span

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlReadStats",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_SINK",
    "NullSink",
    "Profiler",
    "ProgressReporter",
    "RingBufferSink",
    "Sink",
    "Span",
    "SpanNode",
    "StateAuditor",
    "canonical_fingerprint",
    "configuration_fingerprint",
    "content_id",
    "current_span",
    "emit",
    "get_registry",
    "get_sink",
    "is_enabled",
    "read_jsonl",
    "render_html",
    "reset_registry",
    "run_audit",
    "set_sink",
    "span",
    "stable_json",
    "subscribe",
    "unsubscribe",
    "use_sink",
]
