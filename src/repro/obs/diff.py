"""``repro diff``: compare two explorations as *sets of executions*.

Two runs that report the same verdict and the same execution count can
still have visited different executions — exactly the failure mode that
frontier sharding and DPOR/symmetry reductions must be audited against
(ROADMAP items 1 and 2).  This module compares two runs on execution-set
*identity*: the content-addressed digests and per-execution records of
:mod:`repro.obs.execset`.

Targets are resolved flexibly: an existing file path is read as a
``repro-execset/1`` stream; anything else is treated as a (possibly
abbreviated) run-ledger id, resolved through
:func:`repro.obs.ledger.resume_chain` so a resumed multi-session
exploration compares as one merged set.

The report covers:

* **set digest** — equal digests mean the same set of executions,
  whatever order they were visited in (and across shard/resume splits);
* **set difference** — executions only one run visited, with example
  ids and depths;
* **verdicts** — from the ledger (file targets compare as ``n/a``);
* **per-depth visit histograms**, **audit summaries**, and
  **wall-clock/throughput**;
* **divergence explanation** — a minimal missing execution is replayed
  via ``SystemSpec.replay`` and rendered as an :mod:`repro.obs.explain`
  lane diagram, with the first decision where the two runs' trees
  diverge pinpointed.

Exit codes (also under ``exit_code`` in ``--json`` output):

====  ============================================================
0     same execution set, same verdict
1     same verdict but different (or undeterminable) execution set
      — legitimate for *sound* reductions, which must change the
      set without changing the verdict
2     verdict divergence — the alarm the gate exists for
3     usage error (unknown run id, unreadable file, cyclic ledger)
====  ============================================================

All three renderings (table, ``--json``, ``--html``) are deterministic
functions of the two targets — no wall-clock, sorted iteration — so CI
can ``cmp`` repeated invocations byte-for-byte.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from html import escape
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import execset as _execset
from repro.obs import ledger as _ledger

FORMAT = "repro-diff/1"

EXIT_SAME = 0
EXIT_SET_DIFFERS = 1
EXIT_VERDICT_DIVERGES = 2
EXIT_USAGE = 3

#: Example executions listed per side in the table/HTML report (the
#: JSON report lists up to 10x this; the counts are always exact).
EXAMPLE_LIMIT = 5


# ----------------------------------------------------------------------
# Target resolution
# ----------------------------------------------------------------------
@dataclass
class RunSet:
    """One side of a diff: a run's execution set plus ledger context."""

    label: str
    #: ``id -> record`` over every execset file backing this target.
    records: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Whole-exploration merged digest (``None`` = not recorded).
    digest: Optional[str] = None
    #: True when :attr:`records` provably covers :attr:`digest` (fresh
    #: single-file run, or a resume chain with every shard file found).
    complete: bool = False
    verdict: Optional[str] = None
    duration: Optional[float] = None
    executions: Optional[int] = None
    audit: Optional[Dict[str, Any]] = None
    #: Spec provenance from the execset header (task/n/k), for replay.
    spec: Dict[str, Any] = field(default_factory=dict)
    run_ids: List[str] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "digest": self.digest,
            "records": len(self.records),
            "complete": self.complete,
            "verdict": self.verdict,
            "duration_seconds": self.duration,
            "executions": self.executions,
            "run_ids": self.run_ids,
            "sources": self.sources,
            "spec": self.spec,
            "notes": self.notes,
        }


def _absorb_file(target: RunSet, path: str) -> None:
    parsed = _execset.read_execset(path)
    target.sources.append(path)
    for record_id, record in parsed.records.items():
        target.records.setdefault(record_id, record)
    if not target.spec and parsed.spec:
        target.spec = parsed.spec
    if parsed.skipped:
        target.notes.append(f"{path}: {parsed.skipped} corrupt line(s) skipped")
    if not parsed.consistent:
        target.notes.append(
            f"{path}: footer digest does not match its records "
            "(file corrupt or truncated)"
        )


def load_file_target(path: str) -> RunSet:
    """A diff side backed directly by one ``repro-execset/1`` file."""
    target = RunSet(label=path)
    _absorb_file(target, path)
    parsed = _execset.read_execset(path)
    target.digest = parsed.merged_digest
    target.executions = parsed.footer.get("total_records", len(target.records))
    if parsed.partial:
        # A resumed run's file whose parent shards are elsewhere: the
        # digest covers the whole exploration, the records do not.
        target.complete = False
        target.notes.append(
            f"{path}: covers {len(parsed.records)} of "
            f"{parsed.footer.get('total_records', '?')} executions "
            f"(resumed run; {parsed.base_records} inherited) — set "
            "difference reflects only the records present"
        )
    else:
        target.complete = parsed.consistent
    return target


def load_ledger_target(
    target_id: str, ledger_path: str
) -> RunSet:
    """A diff side named by a run id: the whole resume chain, merged.

    Raises ``ValueError`` for unknown/ambiguous ids and cyclic ledgers
    (the caller maps that to exit 3).
    """
    records, _skipped = _ledger.read_ledger(ledger_path)
    chain = _ledger.resume_chain(records, target_id)
    target = RunSet(label=target_id)
    target.run_ids = [str(r.get("run_id")) for r in chain]
    if len(target.run_ids) == 1:
        target.label = target.run_ids[0]
    else:
        target.label = f"{target.run_ids[0]} .. {target.run_ids[-1]}"
    last = chain[-1]
    target.verdict = last.get("verdict")
    target.executions = last.get("executions")
    durations = [
        r.get("duration_seconds")
        for r in chain
        if isinstance(r.get("duration_seconds"), (int, float))
    ]
    if durations:
        target.duration = round(sum(durations), 3)
    for record in reversed(chain):
        if isinstance(record.get("audit"), dict):
            target.audit = record["audit"]
            break
    claimed: Optional[str] = None
    expected_records: Optional[int] = None
    missing_files = 0
    for record in chain:
        execset_info = record.get("execset")
        if not isinstance(execset_info, dict):
            continue
        digest = execset_info.get("digest")
        if digest:  # the newest chain link's digest covers the union
            claimed = str(digest)
        if isinstance(execset_info.get("records"), int):
            expected_records = execset_info["records"]
        path = execset_info.get("path")
        if isinstance(path, str) and path and os.path.exists(path):
            _absorb_file(target, path)
        elif path:
            missing_files += 1
            target.notes.append(f"execset file not found: {path}")
    target.digest = claimed
    if claimed is None:
        target.notes.append(
            "no execution-set digest recorded for this run "
            "(predates digests or ran with --no-execset)"
        )
    if missing_files == 0 and target.records:
        computed = _execset.set_digest(target.records)
        if claimed is None:
            target.digest = computed
            target.complete = True
        elif computed == claimed:
            target.complete = True
        else:
            target.notes.append(
                "merged records do not reproduce the recorded digest "
                f"({_execset.short_digest(computed)} vs "
                f"{_execset.short_digest(claimed)}) — shard files "
                "incomplete or modified; set difference reflects only "
                "the records present"
            )
    if expected_records is not None and len(target.records) not in (
        0,
        expected_records,
    ):
        target.notes.append(
            f"ledger records {expected_records} executions, "
            f"{len(target.records)} found on disk"
        )
    return target


def load_target(target: str, ledger_path: str) -> RunSet:
    """Resolve one ``repro diff`` operand: file path, else run id."""
    if os.path.exists(target):
        return load_file_target(target)
    return load_ledger_target(target, ledger_path)


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _depth_histogram(records: Dict[str, Dict[str, Any]]) -> Dict[int, int]:
    histogram: Dict[int, int] = {}
    for record in records.values():
        depth = record.get("depth")
        if isinstance(depth, int):
            histogram[depth] = histogram.get(depth, 0) + 1
    return histogram


def _examples(
    records: Dict[str, Dict[str, Any]], ids: List[str], limit: int
) -> List[Dict[str, Any]]:
    ordered = sorted(
        ids, key=lambda i: (records[i].get("depth", 0), i)
    )
    return [
        {"id": record_id, "depth": records[record_id].get("depth")}
        for record_id in ordered[:limit]
    ]


def _pick_minimal(
    records: Dict[str, Dict[str, Any]], ids: List[str]
) -> Optional[Dict[str, Any]]:
    """The shallowest missing execution (ties broken by id) — the one
    worth replaying as the divergence exhibit."""
    if not ids:
        return None
    best = min(ids, key=lambda i: (records[i].get("depth", 0), i))
    return records[best]


def _first_divergence(
    missing: Dict[str, Any], other: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Where the other run's tree stops covering ``missing``.

    Finds the longest prefix of the missing execution's decisions shared
    with *any* execution the other run visited: the next decision is the
    exact branch the other run never took — the first point where the
    two exploration trees diverge.
    """
    decisions = [tuple(d) for d in missing.get("decisions") or []]
    best = 0
    sharers = 0
    for record in other.values():
        theirs = [tuple(d) for d in record.get("decisions") or []]
        common = 0
        for mine, their in zip(decisions, theirs):
            if mine != their:
                break
            common += 1
        if common > best:
            best, sharers = common, 1
        elif common == best:
            sharers += 1
    result: Dict[str, Any] = {"index": best, "shared_by_other": sharers}
    if best < len(decisions):
        pid, choice = decisions[best]
        result["decision"] = [pid, choice]
    return result


def _render_lanes(
    missing: Dict[str, Any], spec_meta: Dict[str, Any]
) -> Tuple[Optional[str], Optional[str], Optional[str]]:
    """Replay a missing execution: ``(lane_text, lane_html, error)``.

    Spec provenance comes from the execset header and resolves through
    the witness builder registry; when it cannot (library-driven specs),
    the diff still reports the divergence — just without the picture.
    """
    from repro.obs import explain as _explain
    from repro.obs import witness as _witness

    if not spec_meta:
        return None, None, "no spec provenance in the execset header"
    try:
        spec = _witness.resolve_spec({"spec": dict(spec_meta)})
        decisions = [
            (int(pid), int(choice))
            for pid, choice in (missing.get("decisions") or [])
        ]
        execution = spec.replay(decisions).finalize()
        view = _explain.view_from_execution(execution)
        return (
            _explain.lane_diagram(view),
            _explain.lanes_html(
                view, caption=f"missing execution {missing.get('id')}"
            ),
            None,
        )
    except Exception as error:  # noqa: BLE001 — a broken exhibit must
        # not take down the diff report it illustrates
        return None, None, f"replay failed: {error}"


def compare(a: RunSet, b: RunSet, explain: bool = True) -> Dict[str, Any]:
    """Compare two resolved targets into a JSON-ready report.

    Pure function of its inputs (no wall-clock): the same two targets
    always produce the same report, which is what lets CI byte-compare
    repeated renderings.
    """
    only_a = sorted(set(a.records) - set(b.records))
    only_b = sorted(set(b.records) - set(a.records))
    if a.digest and b.digest:
        digests_equal: Optional[bool] = a.digest == b.digest
    else:
        digests_equal = None
    if a.complete and b.complete:
        same_set: Optional[bool] = not only_a and not only_b
    else:
        same_set = digests_equal
    verdicts_known = a.verdict is not None and b.verdict is not None
    verdicts_equal = a.verdict == b.verdict if verdicts_known else None
    if verdicts_equal is False:
        exit_code = EXIT_VERDICT_DIVERGES
    elif same_set:
        exit_code = EXIT_SAME
    else:
        exit_code = EXIT_SET_DIFFERS

    depths_a = _depth_histogram(a.records)
    depths_b = _depth_histogram(b.records)
    histogram = {
        str(depth): [depths_a.get(depth, 0), depths_b.get(depth, 0)]
        for depth in sorted(set(depths_a) | set(depths_b))
    }

    def throughput(side: RunSet) -> Optional[float]:
        if (
            isinstance(side.executions, int)
            and isinstance(side.duration, (int, float))
            and side.duration > 0
        ):
            return round(side.executions / side.duration, 1)
        return None

    report: Dict[str, Any] = {
        "format": FORMAT,
        "a": a.summary(),
        "b": b.summary(),
        "digest": {
            "a": a.digest,
            "b": b.digest,
            "equal": digests_equal,
        },
        "same_set": same_set,
        "only_in_a": {
            "count": len(only_a),
            "examples": _examples(a.records, only_a, EXAMPLE_LIMIT * 10),
        },
        "only_in_b": {
            "count": len(only_b),
            "examples": _examples(b.records, only_b, EXAMPLE_LIMIT * 10),
        },
        "depth_histogram": histogram,
        "verdict": {
            "a": a.verdict,
            "b": b.verdict,
            "equal": verdicts_equal,
        },
        "audit": {"a": a.audit, "b": b.audit},
        "timing": {
            "duration_seconds": [a.duration, b.duration],
            "executions": [a.executions, b.executions],
            "rate": [throughput(a), throughput(b)],
        },
        "exit_code": exit_code,
    }
    if a.spec and b.spec and a.spec != b.spec:
        report.setdefault("notes", []).append(
            "spec provenance differs: "
            f"A {json.dumps(a.spec, sort_keys=True)} vs "
            f"B {json.dumps(b.spec, sort_keys=True)}"
        )

    if explain and (only_a or only_b):
        if only_a:
            side, other = "A", b.records
            missing = _pick_minimal(a.records, only_a)
        else:
            side, other = "B", a.records
            missing = _pick_minimal(b.records, only_b)
        assert missing is not None
        divergence: Dict[str, Any] = {
            "side": side,
            "id": missing.get("id"),
            "depth": missing.get("depth"),
            "decisions": missing.get("decisions"),
            "first_divergence": _first_divergence(missing, other),
        }
        lane_text, lane_html, error = _render_lanes(
            missing, a.spec if side == "A" else b.spec or a.spec
        )
        if lane_text:
            divergence["lanes"] = lane_text
        if lane_html:
            divergence["lanes_html"] = lane_html
        if error:
            divergence["render_error"] = error
        report["divergence"] = divergence
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _marker(equal: Optional[bool], same: str = "SAME") -> str:
    if equal is None:
        return "n/a"
    return same if equal else "DIFFERS"


def render_table(report: Dict[str, Any]) -> str:
    """The stdout rendering: aligned, deterministic, greppable."""
    a, b = report["a"], report["b"]
    lines: List[str] = []
    lines.append(f"A: {a['label']}")
    lines.append(f"B: {b['label']}")
    digest = report["digest"]
    lines.append(
        "set digest: "
        f"{_execset.short_digest(digest['a'])} vs "
        f"{_execset.short_digest(digest['b'])} "
        f"({_marker(digest['equal'], 'SAME SET')})"
    )
    lines.append(f"records: {a['records']} vs {b['records']}")
    for side, key in (("A", "only_in_a"), ("B", "only_in_b")):
        entry = report[key]
        if not entry["count"]:
            continue
        examples = ", ".join(
            f"{e['id']} (depth {e['depth']})"
            for e in entry["examples"][:EXAMPLE_LIMIT]
        )
        suffix = ", ..." if entry["count"] > EXAMPLE_LIMIT else ""
        lines.append(
            f"only in {side}: {entry['count']} execution(s): "
            f"{examples}{suffix}"
        )
    verdict = report["verdict"]
    lines.append(
        f"verdict: {verdict['a'] or 'n/a'} vs {verdict['b'] or 'n/a'} "
        f"({_marker(verdict['equal'], '=')})"
    )
    histogram = report["depth_histogram"]
    if histogram:
        lines.append("per-depth visits:")
        lines.append("  depth      A      B")
        for depth, (count_a, count_b) in histogram.items():
            flag = "" if count_a == count_b else "  <-"
            lines.append(f"  {depth:>5} {count_a:>6} {count_b:>6}{flag}")
    audit_lines = _ledger._compare_audit(
        report["audit"]["a"], report["audit"]["b"]
    )
    lines.extend(audit_lines)
    timing = report["timing"]
    dur_a, dur_b = timing["duration_seconds"]
    if dur_a is not None or dur_b is not None:
        lines.append(
            "duration: "
            f"{_ledger._fmt_duration(dur_a)} vs {_ledger._fmt_duration(dur_b)}"
        )
    rate_a, rate_b = timing["rate"]
    if rate_a is not None or rate_b is not None:
        lines.append(
            "throughput: "
            f"{rate_a if rate_a is not None else '?'} vs "
            f"{rate_b if rate_b is not None else '?'} executions/s"
        )
    for side in (a, b):
        for note in side["notes"]:
            lines.append(f"note ({side['label']}): {note}")
    for note in report.get("notes", []):
        lines.append(f"note: {note}")
    divergence = report.get("divergence")
    if divergence:
        first = divergence["first_divergence"]
        lines.append(
            f"divergence exhibit: execution {divergence['id']} "
            f"(depth {divergence['depth']}, only in {divergence['side']})"
        )
        decision = first.get("decision")
        decision_text = (
            f"decision [pid {decision[0]}, choice {decision[1]}]"
            if decision
            else "end of execution"
        )
        lines.append(
            f"first divergence: index {first['index']} — {decision_text} "
            f"(prefix shared by {first['shared_by_other']} execution(s) "
            "on the other side)"
        )
        if divergence.get("lanes"):
            lines.append(divergence["lanes"])
        elif divergence.get("render_error"):
            lines.append(f"(lane view unavailable: {divergence['render_error']})")
    meanings = {
        EXIT_SAME: "same execution set, same verdict",
        EXIT_SET_DIFFERS: "different execution set (verdicts agree)",
        EXIT_VERDICT_DIVERGES: "VERDICT DIVERGENCE",
    }
    code = report["exit_code"]
    lines.append(f"exit: {code} ({meanings.get(code, 'usage')})")
    return "\n".join(lines)


def render_json_report(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True, default=repr)


def _html_row(label: str, value_a: str, value_b: str, marker: str = "") -> str:
    return (
        f"<tr><th>{escape(label)}</th><td>{escape(value_a)}</td>"
        f"<td>{escape(value_b)}</td><td>{escape(marker)}</td></tr>"
    )


def render_html(report: Dict[str, Any], title: str = "repro diff") -> str:
    """Standalone HTML report (same determinism contract as the table)."""
    from repro.obs.explain import LANES_CSS
    from repro.obs.report import BASE_CSS

    a, b = report["a"], report["b"]
    digest = report["digest"]
    verdict = report["verdict"]
    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{BASE_CSS}{LANES_CSS}</style></head>",
        "<body>",
        f"<h1>{escape(title)}</h1>",
        f"<p>A: <code>{escape(str(a['label']))}</code><br>"
        f"B: <code>{escape(str(b['label']))}</code></p>",
        "<table>",
        "<tr><th></th><th>A</th><th>B</th><th></th></tr>",
        _html_row(
            "set digest",
            _execset.short_digest(digest["a"]),
            _execset.short_digest(digest["b"]),
            _marker(digest["equal"], "SAME SET"),
        ),
        _html_row("records", str(a["records"]), str(b["records"])),
        _html_row(
            "verdict",
            str(verdict["a"] or "n/a"),
            str(verdict["b"] or "n/a"),
            _marker(verdict["equal"], "="),
        ),
        _html_row(
            "only-in-side executions",
            str(report["only_in_a"]["count"]),
            str(report["only_in_b"]["count"]),
        ),
        "</table>",
    ]
    histogram = report["depth_histogram"]
    if histogram:
        out.append("<h2>Per-depth visits</h2>")
        out.append("<table><tr><th>depth</th><th>A</th><th>B</th></tr>")
        for depth, (count_a, count_b) in histogram.items():
            out.append(
                f"<tr><td>{escape(depth)}</td><td>{count_a}</td>"
                f"<td>{count_b}</td></tr>"
            )
        out.append("</table>")
    notes = [
        f"({side['label']}) {note}"
        for side in (a, b)
        for note in side["notes"]
    ] + list(report.get("notes", []))
    if notes:
        out.append("<h2>Notes</h2><ul>")
        out.extend(f"<li>{escape(str(note))}</li>" for note in notes)
        out.append("</ul>")
    divergence = report.get("divergence")
    if divergence:
        first = divergence["first_divergence"]
        out.append("<h2>Divergence exhibit</h2>")
        out.append(
            f"<p>Execution <code>{escape(str(divergence['id']))}</code> "
            f"(depth {divergence['depth']}) was visited only by "
            f"{escape(str(divergence['side']))}; the trees diverge at "
            f"decision index {first['index']}.</p>"
        )
        if divergence.get("lanes_html"):
            out.append(divergence["lanes_html"])
        elif divergence.get("render_error"):
            out.append(
                "<p>(lane view unavailable: "
                f"{escape(str(divergence['render_error']))})</p>"
            )
    meanings = {
        EXIT_SAME: "same execution set, same verdict",
        EXIT_SET_DIFFERS: "different execution set (verdicts agree)",
        EXIT_VERDICT_DIVERGES: "VERDICT DIVERGENCE",
    }
    code = report["exit_code"]
    out.append(
        f"<p>exit: <strong>{code}</strong> "
        f"({escape(meanings.get(code, 'usage'))})</p>"
    )
    out.append("</body></html>")
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# Entry point shared by the CLI
# ----------------------------------------------------------------------
def diff_targets(
    target_a: str,
    target_b: str,
    ledger_path: Optional[str] = None,
    explain: bool = True,
) -> Dict[str, Any]:
    """Resolve and compare two operands (the ``repro diff`` core).

    Raises ``ValueError`` for unresolvable targets — the CLI maps that
    to exit :data:`EXIT_USAGE`.
    """
    path = ledger_path or _ledger.default_ledger_path()
    a = load_target(target_a, path)
    b = load_target(target_b, path)
    return compare(a, b, explain=explain)
