"""Witness capture: persist the deciding execution behind every verdict.

A REFUTED verdict is only as good as the run that produced it, and a
PROVED-existence claim is only as good as its witness.  Both already
exist in memory — :meth:`~repro.runtime.explorer.Explorer.check` returns
the first counterexample, :meth:`~repro.runtime.explorer.Explorer.find`
the first satisfying execution, and
:class:`~repro.tasks.solvability.SolvabilityReport` carries a
``counterexample`` — but until now they were dropped on the floor the
moment the verdict was printed.  This module is the archive between the
check and the human: while a :class:`WitnessStore` is active, those call
sites funnel their deciding executions through :func:`capture`, which
writes each one as a ``repro-witness/1`` bundle and threads the path
into the event bus (``witness_captured``), the metrics registry
(``witnesses_captured_total``), and the run ledger (``witnesses``).

Bundle format (``repro-witness/1``): a JSONL file, one self-describing
JSON object per line.  Each record embeds the replayable trace payload
of :func:`repro.runtime.trace_io.trace_to_dict` (decisions, crash
timings, and the outcome fingerprint that makes silent spec drift
impossible) plus a compact self-describing step table, final outputs and
statuses, and two provenance dicts:

``spec``
    How to rebuild the :class:`~repro.runtime.system.SystemSpec`
    (``{"builder": "set-consensus", "n": 2, "k": 1}``), resolved by
    :func:`resolve_spec` against :data:`SPEC_BUILDERS`.
``predicate``
    What the witness decides (``{"name": "k-agreement-violated",
    "k": 2, "inputs": [...]}``), resolved by :func:`resolve_predicate`
    against :data:`PREDICATE_BUILDERS` — the property the ddmin shrinker
    in :mod:`repro.obs.explain` must preserve.

File names are content-addressed (``<kind>-<digest>.jsonl`` from the
decision sequence + fingerprint), so re-running a deterministic check
reuses the existing bundle instead of accumulating duplicates, and two
machines archiving the same refutation produce the same file.

Capture is process-global and off by default (the hook sites pay one
``None`` check); activate it with :func:`capture_witnesses`::

    with capture_witnesses(".repro/witnesses") as store:
        with witness_context(spec={"builder": "consensus", "n": 2, "k": 1},
                             predicate={"name": "k-agreement-violated",
                                        "k": 1, "inputs": ["a", "b"]}):
            report = check_task_all_schedules(spec, task, inputs)
    report.witness_path      # bundle of the counterexample, if REFUTED

On the CLI, ``--witness-dir`` activates a store for any run command, and
``repro explain <bundle | RUN_ID>`` replays, shrinks, and renders an
archived witness (see docs/EXPLAIN.md).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.fsutil import ensure_parent
from repro.obs import events as _events
from repro.obs import ledger as _ledger
from repro.obs.fingerprint import content_id
from repro.runtime.execution import Execution
from repro.runtime.system import SystemSpec
from repro.runtime.trace_io import replay_trace, trace_to_dict

FORMAT = "repro-witness/1"

#: Default bundle directory, next to the run ledger.
DEFAULT_DIR = os.path.join(".repro", "witnesses")

#: The two kinds of deciding execution.
KIND_COUNTEREXAMPLE = "counterexample"  # refutes a universal claim
KIND_EXISTENCE = "existence"  # proves an existential claim


# ----------------------------------------------------------------------
# Record construction and (de)serialization
# ----------------------------------------------------------------------
def witness_to_dict(
    execution: Execution,
    *,
    kind: str,
    source: str,
    label: str = "",
    reason: str = "",
    spec: Optional[Dict[str, Any]] = None,
    predicate: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The serializable witness record.

    The ``trace`` payload alone replays the run (fingerprint-verified);
    ``steps``/``outputs``/``statuses`` additionally make the bundle
    *renderable* without the spec — lane diagrams and narratives of an
    archived witness work even when the code that produced it is gone.
    Deliberately no wall-clock timestamp: identical witnesses serialize
    byte-identically.
    """
    record: Dict[str, Any] = {
        "format": FORMAT,
        "kind": kind,
        "source": source,
        "label": label,
        "reason": reason,
        "trace": trace_to_dict(execution, label=label),
        "steps": [
            [
                step.pid,
                step.operation.target,
                step.operation.method,
                [repr(a) for a in step.operation.args],
                repr(step.response),
            ]
            for step in execution.steps
        ],
        "outputs": {
            str(pid): repr(execution.outputs[pid])
            for pid in sorted(execution.outputs)
        },
        "statuses": {
            str(pid): execution.statuses[pid].value
            for pid in sorted(execution.statuses)
        },
    }
    if spec:
        record["spec"] = dict(spec)
    if predicate:
        record["predicate"] = dict(predicate)
    return record


def witness_id(record: Dict[str, Any]) -> str:
    """Content digest of a witness: decisions + faults + fingerprint.

    Two captures of the same deciding execution (same schedule, same
    outcome) share an id regardless of label/reason wording, so the
    store can deduplicate by file name.  Hashing goes through
    :func:`repro.obs.fingerprint.content_id` — the same convention the
    state audit uses — so bundle ids and audit state hashes cannot
    drift apart.  Recovery records participate only when present, so
    every pre-recovery bundle keeps its historical id.
    """
    trace = record.get("trace", {})
    material = [
        trace.get("decisions", []),
        trace.get("crashes", []),
        trace.get("fingerprint", ""),
    ]
    if trace.get("recoveries"):
        material.append(trace["recoveries"])
    return content_id(material)


def write_witness(path: str, records: List[Dict[str, Any]]) -> str:
    """Write a bundle: one JSON object per line, parents created."""
    ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(record, default=repr, separators=(",", ":")) + "\n"
            )
    return path


def read_witness(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read a bundle: ``(records, corrupt_lines_skipped)``.

    Same tolerance as the ledger and event traces: lines that fail to
    parse, or parse to something other than a ``repro-witness/1``
    object, are skipped and counted rather than aborting the read.
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict) or record.get("format") != FORMAT:
                skipped += 1
                continue
            records.append(record)
    return records, skipped


def replay_witness(record: Dict[str, Any], spec: SystemSpec) -> Execution:
    """Replay a witness record against ``spec``, fingerprint-verified."""
    return replay_trace(spec, record["trace"])


# ----------------------------------------------------------------------
# Spec and predicate provenance registries
# ----------------------------------------------------------------------
def _spec_set_consensus(n: int, k: int, **_ignored: Any) -> SystemSpec:
    from repro.algorithms.set_consensus_from_family import set_consensus_spec
    from repro.core.family import FamilyMember

    ports = FamilyMember(int(n), int(k)).ports
    return set_consensus_spec(int(n), int(k), [f"v{i}" for i in range(ports)])


def _spec_consensus(n: int, k: int, **_ignored: Any) -> SystemSpec:
    from repro.algorithms.set_consensus_from_family import consensus_spec

    return consensus_spec(int(n), int(k), [f"v{i}" for i in range(int(n))])


def _spec_partition_n_consensus(
    n: int, inputs: List[Any], **_ignored: Any
) -> SystemSpec:
    from repro.algorithms.consensus_from_n_consensus import (
        partition_set_consensus_spec,
    )

    return partition_set_consensus_spec(int(n), list(inputs))


def _spec_announce_election(
    n: int, variant: str = "tas", **_ignored: Any
) -> SystemSpec:
    from repro.algorithms.election import announce_election_spec

    return announce_election_spec(int(n), variant=str(variant))


#: Named spec builders witnesses can reference in their ``spec`` dict.
#: Keyed by the ``builder`` (or legacy ``task``) field; remaining fields
#: are passed as keyword arguments.  Extend with
#: :func:`register_spec_builder` for project-specific systems.
SPEC_BUILDERS: Dict[str, Callable[..., SystemSpec]] = {
    "set-consensus": _spec_set_consensus,
    "consensus": _spec_consensus,
    "n-consensus-partition": _spec_partition_n_consensus,
    "announce-election": _spec_announce_election,
}


def register_spec_builder(name: str, builder: Callable[..., SystemSpec]) -> None:
    """Register (or replace) a named spec builder."""
    SPEC_BUILDERS[name] = builder


def resolve_spec(record: Dict[str, Any]) -> SystemSpec:
    """Rebuild the witness's system from its ``spec`` provenance.

    Raises ``ValueError`` when the record carries no provenance or names
    an unknown builder — in which case the witness can still be
    *rendered* (from its ``steps``) but not replayed or shrunk.
    """
    meta = dict(record.get("spec") or {})
    name = meta.pop("builder", None) or meta.pop("task", None)
    if not name:
        raise ValueError("witness has no spec provenance (no 'spec' entry)")
    builder = SPEC_BUILDERS.get(str(name))
    if builder is None:
        raise ValueError(
            f"unknown spec builder {name!r}; known: {sorted(SPEC_BUILDERS)}"
        )
    return builder(**meta)


def _predicate_k_agreement_violated(
    k: int, inputs: List[Any], **_ignored: Any
) -> Callable[[Execution], bool]:
    from repro.tasks.set_consensus import KSetConsensusTask

    task = KSetConsensusTask(int(k))
    inputs_by_pid = {pid: value for pid, value in enumerate(inputs)}
    return lambda execution: not task.check(inputs_by_pid, execution.outputs)


def _predicate_distinct_outputs_at_least(
    count: int, **_ignored: Any
) -> Callable[[Execution], bool]:
    return lambda execution: len(execution.distinct_outputs()) >= int(count)


def _predicate_unique_leader_violated(**_ignored: Any) -> Callable[[Execution], bool]:
    def violated(execution: Execution) -> bool:
        if not execution.all_done():
            return False
        return list(execution.outputs.values()).count("L") != 1

    return violated


#: Named predicate builders witnesses can reference in their
#: ``predicate`` dict.  The returned callable is the property the
#: witness *decides* — the shrinker keeps it true while deleting
#: decisions.
PREDICATE_BUILDERS: Dict[str, Callable[..., Callable[[Execution], bool]]] = {
    # Outputs violate validity or k-agreement (the REFUTED case of a
    # (k-)set-consensus check; k=1 is consensus).
    "k-agreement-violated": _predicate_k_agreement_violated,
    # At least N distinct decisions (existence witnesses, e.g. the
    # 2-consensus partition baseline forced to 3 at the Common2 point).
    "distinct-outputs-at-least": _predicate_distinct_outputs_at_least,
    # All processes finished but the leader count is not exactly one —
    # the REFUTED case of announce-election under crash-recovery (E11).
    "unique-leader-violated": _predicate_unique_leader_violated,
}


def register_predicate_builder(
    name: str, builder: Callable[..., Callable[[Execution], bool]]
) -> None:
    """Register (or replace) a named predicate builder."""
    PREDICATE_BUILDERS[name] = builder


def resolve_predicate(record: Dict[str, Any]) -> Callable[[Execution], bool]:
    """Rebuild the decided property from the ``predicate`` provenance."""
    meta = dict(record.get("predicate") or {})
    name = meta.pop("name", None)
    if not name:
        raise ValueError("witness has no predicate provenance")
    builder = PREDICATE_BUILDERS.get(str(name))
    if builder is None:
        raise ValueError(
            f"unknown predicate {name!r}; known: {sorted(PREDICATE_BUILDERS)}"
        )
    return builder(**meta)


# ----------------------------------------------------------------------
# The store and the process-global capture hook
# ----------------------------------------------------------------------
class WitnessStore:
    """Writes witness bundles into one directory, deduplicated by id."""

    def __init__(self, directory: str = DEFAULT_DIR):
        self.directory = directory
        #: Bundle paths captured through this store, in first-capture order.
        self.captured: List[str] = []

    def save(
        self,
        execution: Execution,
        *,
        kind: str,
        source: str,
        label: str = "",
        reason: str = "",
        spec: Optional[Dict[str, Any]] = None,
        predicate: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Archive one deciding execution; returns the bundle path.

        Idempotent per content: the same execution captured twice (e.g.
        by ``check`` and again by ``check_verdict``) maps to the same
        file and is recorded once.
        """
        record = witness_to_dict(
            execution,
            kind=kind,
            source=source,
            label=label,
            reason=reason,
            spec=spec,
            predicate=predicate,
        )
        path = os.path.join(
            self.directory, f"{kind}-{witness_id(record)}.jsonl"
        )
        fresh = not os.path.exists(path)
        if fresh:
            write_witness(path, [record])
        if path not in self.captured:
            self.captured.append(path)
            _ledger.annotate(witnesses=list(self.captured))
            if _events.is_enabled():
                _events.emit(
                    "witness_captured",
                    path=path,
                    kind=kind,
                    source=source,
                    steps=len(execution.steps),
                    crashes=len(execution.crashes),
                    recoveries=len(execution.recoveries),
                    fingerprint=record["trace"].get("fingerprint", ""),
                    reason=reason,
                )
        return path


_active_store: Optional[WitnessStore] = None
_context: Dict[str, Any] = {}


def activate_store(store: WitnessStore) -> WitnessStore:
    """Install ``store`` as the process-global capture destination."""
    global _active_store
    _active_store = store
    return store


def deactivate_store() -> None:
    """Stop capturing (hook sites revert to their zero-cost no-op)."""
    global _active_store
    _active_store = None


def get_active_store() -> Optional[WitnessStore]:
    """The currently active store, or ``None`` when capture is off."""
    return _active_store


@contextmanager
def capture_witnesses(directory: str = DEFAULT_DIR) -> Iterator[WitnessStore]:
    """Activate a :class:`WitnessStore` for the duration of a block."""
    global _active_store
    previous = _active_store
    store = WitnessStore(directory)
    _active_store = store
    try:
        yield store
    finally:
        _active_store = previous


@contextmanager
def witness_context(**meta: Any) -> Iterator[None]:
    """Attach default provenance to captures made inside the block.

    Recognized keys: ``spec``, ``predicate``, ``label`` — merged into
    every :func:`capture` call that does not override them.  Nests:
    inner contexts shadow outer ones and restore them on exit.
    """
    global _context
    previous = _context
    _context = {**previous, **{k: v for k, v in meta.items() if v is not None}}
    try:
        yield
    finally:
        _context = previous


def capture(
    execution: Execution,
    *,
    kind: str,
    source: str,
    reason: str = "",
    label: Optional[str] = None,
    spec: Optional[Dict[str, Any]] = None,
    predicate: Optional[Dict[str, Any]] = None,
) -> Optional[str]:
    """Archive a deciding execution if a store is active.

    The one-line hook the explorer and the solvability checkers call on
    every verdict-deciding execution; returns the bundle path, or
    ``None`` when capture is off.  Explicit arguments win over the
    ambient :func:`witness_context`.
    """
    store = _active_store
    if store is None:
        return None
    return store.save(
        execution,
        kind=kind,
        source=source,
        reason=reason,
        label=label if label is not None else str(_context.get("label", "")),
        spec=spec if spec is not None else _context.get("spec"),
        predicate=predicate if predicate is not None else _context.get("predicate"),
    )
